//! The in-memory accumulating recorder and its `TELEMETRY.json` export.

use std::collections::BTreeMap;

use glacsweb_sim::{CivilDate, SimTime};

use crate::{Event, Origin, Recorder, Value};

/// Default cap on retained events; beyond it events are counted in
/// `events_dropped` instead of stored, bounding memory on long runs.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Upper bucket bounds (inclusive) of every histogram, in the unit of
/// the observed value (seconds for waits, counts for packets). One
/// overflow bucket catches everything above the last bound.
///
/// Fixed bounds keep bucket assignment a pure function of the value —
/// no adaptive resizing, so merged histograms are associative and the
/// JSON is byte-stable.
pub const BUCKET_BOUNDS: &[u64] = &[1, 2, 5, 15, 60, 300, 900, 3_600, 14_400];

/// A fixed-bucket histogram (bounds: [`BUCKET_BOUNDS`] + overflow).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Records one observation.
    fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_BOUNDS.len() + 1];
        }
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds every observation of `other` into `self`.
    fn merge(&mut self, other: &Histogram) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_BOUNDS.len() + 1];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts aligned with [`BUCKET_BOUNDS`], the final entry
    /// being the overflow bucket. Empty until the first observation.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A [`Recorder`] that accumulates everything in ordered containers and
/// exports the lot as a hand-rolled `TELEMETRY.json`.
///
/// All storage is `Vec` / `BTreeMap`, so iteration — and therefore the
/// JSON byte stream — is a pure function of the recorded data.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRecorder {
    events: Vec<Event>,
    max_events: usize,
    events_dropped: u64,
    counters: BTreeMap<(Origin, &'static str), u64>,
    daily: BTreeMap<(CivilDate, Origin, &'static str), u64>,
    gauges: BTreeMap<(Origin, &'static str), (SimTime, f64)>,
    histograms: BTreeMap<(Origin, &'static str), Histogram>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        MemoryRecorder::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl MemoryRecorder {
    /// Creates a recorder retaining at most `max_events` events
    /// (`0` retains none; counters/gauges/histograms are unaffected).
    pub fn with_capacity(max_events: usize) -> Self {
        MemoryRecorder {
            events: Vec::new(),
            max_events,
            events_dropped: 0,
            counters: BTreeMap::new(),
            daily: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// The retained events, in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded once the retention cap was hit.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Current value of a counter, `0` if never written.
    pub fn counter_value(&self, origin: Origin, name: &'static str) -> u64 {
        self.counters.get(&(origin, name)).copied().unwrap_or(0)
    }

    /// Value of a counter restricted to one civil day, `0` if absent.
    pub fn daily_value(&self, date: CivilDate, origin: Origin, name: &'static str) -> u64 {
        self.daily.get(&(date, origin, name)).copied().unwrap_or(0)
    }

    /// Latest gauge write, if any.
    pub fn gauge_value(&self, origin: Origin, name: &'static str) -> Option<f64> {
        self.gauges.get(&(origin, name)).map(|&(_, v)| v)
    }

    /// The histogram under `(origin, name)`, if any value was observed.
    pub fn histogram(&self, origin: Origin, name: &'static str) -> Option<&Histogram> {
        self.histograms.get(&(origin, name))
    }

    /// All counters in key order: `(origin, name, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (Origin, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(o, n), &v)| (o, n, v))
    }

    /// All per-civil-day counter rollups in key order:
    /// `(date, origin, name, value)`.
    pub fn daily(&self) -> impl Iterator<Item = (CivilDate, Origin, &'static str, u64)> + '_ {
        self.daily.iter().map(|(&(d, o, n), &v)| (d, o, n, v))
    }

    /// All gauges in key order: `(origin, name, written_at, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (Origin, &'static str, SimTime, f64)> + '_ {
        self.gauges.iter().map(|(&(o, n), &(at, v))| (o, n, at, v))
    }

    /// All histograms in key order: `(origin, name, histogram)`.
    pub fn histograms(&self) -> impl Iterator<Item = (Origin, &'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&(o, n), h)| (o, n, h))
    }

    /// `true` if nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.events_dropped == 0
            && self.counters.is_empty()
            && self.daily.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Folds every record of `other` into `self`.
    ///
    /// Events append in `other`'s order (respecting `self`'s cap);
    /// counters, daily rollups, and histograms add; a gauge is replaced
    /// when `other`'s write is at the same instant or later. The fold is
    /// associative over disjoint origins and deterministic always, which
    /// is what lets `glacsweb-sweep` merge per-cell recorders in input
    /// order and get byte-identical JSON at any thread count.
    pub fn merge_from(&mut self, other: MemoryRecorder) {
        for event in other.events {
            self.push_event(event);
        }
        self.events_dropped += other.events_dropped;
        for ((origin, name), v) in other.counters {
            *self.counters.entry((origin, name)).or_insert(0) += v;
        }
        for (key, v) in other.daily {
            *self.daily.entry(key).or_insert(0) += v;
        }
        for (key, (at, v)) in other.gauges {
            match self.gauges.get(&key) {
                Some(&(existing_at, _)) if existing_at > at => {}
                _ => {
                    self.gauges.insert(key, (at, v));
                }
            }
        }
        for (key, hist) in other.histograms {
            self.histograms.entry(key).or_default().merge(&hist);
        }
    }

    /// [`MemoryRecorder::merge_from`] without taking ownership: folds
    /// every record of `other` into `self` by reference, with identical
    /// semantics (events append in order, counters/daily/histograms add,
    /// later-or-equal gauge writes win).
    ///
    /// This is the aggregation path for hot readers that fold many
    /// shard-local recorders into one accumulator per export: nothing of
    /// `other` is cloned except the retained events themselves, where
    /// `merge_from` would first require cloning the whole recorder.
    pub fn merge_ref(&mut self, other: &MemoryRecorder) {
        for event in &other.events {
            self.push_event(event.clone());
        }
        self.events_dropped += other.events_dropped;
        for (&(origin, name), &v) in &other.counters {
            *self.counters.entry((origin, name)).or_insert(0) += v;
        }
        for (&key, &v) in &other.daily {
            *self.daily.entry(key).or_insert(0) += v;
        }
        for (&key, &(at, v)) in &other.gauges {
            match self.gauges.get(&key) {
                Some(&(existing_at, _)) if existing_at > at => {}
                _ => {
                    self.gauges.insert(key, (at, v));
                }
            }
        }
        for (&key, hist) in &other.histograms {
            self.histograms.entry(key).or_default().merge(hist);
        }
    }

    fn push_event(&mut self, event: Event) {
        if self.events.len() < self.max_events {
            self.events.push(event);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Serialises everything as `TELEMETRY.json` (schema
    /// `glacsweb-obs/1`), hand-rolled in the same style as
    /// `glacsweb-analyze`'s `ANALYSIS.json` — key order fixed, map
    /// sections sorted by their `BTreeMap` keys, events in record order.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        o.push_str("  \"schema\": \"glacsweb-obs/1\",\n");
        o.push_str(&format!("  \"events_dropped\": {},\n", self.events_dropped));

        o.push_str("  \"counters\": [");
        push_block(&mut o, self.counters.iter(), |o, ((origin, name), v)| {
            o.push_str(&format!(
                "{{\"component\": {}, \"station\": {}, \"name\": {}, \"value\": {v}}}",
                json_str(origin.component),
                json_str(origin.station),
                json_str(name)
            ));
        });
        o.push_str("],\n");

        o.push_str("  \"daily\": [");
        push_block(&mut o, self.daily.iter(), |o, ((date, origin, name), v)| {
            o.push_str(&format!(
                "{{\"date\": \"{date}\", \"component\": {}, \"station\": {}, \
                     \"name\": {}, \"value\": {v}}}",
                json_str(origin.component),
                json_str(origin.station),
                json_str(name)
            ));
        });
        o.push_str("],\n");

        o.push_str("  \"gauges\": [");
        push_block(
            &mut o,
            self.gauges.iter(),
            |o, ((origin, name), (at, v))| {
                o.push_str(&format!(
                    "{{\"component\": {}, \"station\": {}, \"name\": {}, \
                     \"at\": \"{at}\", \"value\": {}}}",
                    json_str(origin.component),
                    json_str(origin.station),
                    json_str(name),
                    json_f64(*v)
                ));
            },
        );
        o.push_str("],\n");

        o.push_str("  \"histograms\": [");
        push_block(&mut o, self.histograms.iter(), |o, ((origin, name), h)| {
            o.push_str(&format!(
                "{{\"component\": {}, \"station\": {}, \"name\": {}, \
                 \"total\": {}, \"sum\": {}, \"buckets\": [",
                json_str(origin.component),
                json_str(origin.station),
                json_str(name),
                h.total(),
                h.sum()
            ));
            let mut first = true;
            for (count, bound) in h.counts().iter().zip(
                BUCKET_BOUNDS
                    .iter()
                    .map(|b| b.to_string())
                    .chain(std::iter::once("\"inf\"".to_string())),
            ) {
                if !first {
                    o.push_str(", ");
                }
                first = false;
                o.push_str(&format!("{{\"le\": {bound}, \"count\": {count}}}"));
            }
            o.push_str("]}");
        });
        o.push_str("],\n");

        o.push_str("  \"events\": [");
        push_block(&mut o, self.events.iter(), |o, event| {
            o.push_str(&format!(
                "{{\"at\": \"{}\", \"component\": {}, \"station\": {}, \"name\": {}, \"fields\": {{",
                event.at,
                json_str(event.origin.component),
                json_str(event.origin.station),
                json_str(event.name)
            ));
            let mut first = true;
            for (key, value) in &event.fields {
                if !first {
                    o.push_str(", ");
                }
                first = false;
                o.push_str(&format!("{}: {}", json_str(key), json_value(value)));
            }
            o.push_str("}}");
        });
        o.push_str("]\n");

        o.push_str("}\n");
        o
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, event: Event) {
        self.push_event(event);
    }

    fn counter(&mut self, at: SimTime, origin: Origin, name: &'static str, delta: u64) {
        *self.counters.entry((origin, name)).or_insert(0) += delta;
        *self.daily.entry((at.date(), origin, name)).or_insert(0) += delta;
    }

    fn gauge(&mut self, at: SimTime, origin: Origin, name: &'static str, value: f64) {
        match self.gauges.get(&(origin, name)) {
            Some(&(existing_at, _)) if existing_at > at => {}
            _ => {
                self.gauges.insert((origin, name), (at, value));
            }
        }
    }

    fn observe(&mut self, origin: Origin, name: &'static str, value: u64) {
        self.histograms
            .entry((origin, name))
            .or_default()
            .record(value);
    }

    fn take_memory(&mut self) -> Option<MemoryRecorder> {
        Some(std::mem::take(self))
    }

    fn memory(&self) -> Option<&MemoryRecorder> {
        Some(self)
    }
}

// Hand-written (de)serialization: every map in the recorder is keyed by
// `&'static str` labels, which restore routes through [`crate::intern`].
// Each map section flattens to a sequence of `[key parts..., value]`
// rows in `BTreeMap` order, so the wire form is as deterministic as the
// JSON export.
impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("counts".to_string()),
                self.counts.to_value(),
            ),
            (
                serde::Value::Str("total".to_string()),
                self.total.to_value(),
            ),
            (serde::Value::Str("sum".to_string()), self.sum.to_value()),
        ])
    }
}

impl serde::Deserialize for Histogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let counts: Vec<u64> = serde::de::field(v, "counts")?;
        if !counts.is_empty() && counts.len() != BUCKET_BOUNDS.len() + 1 {
            return Err(serde::de::Error::custom(format!(
                "histogram has {} buckets, expected {} or none",
                counts.len(),
                BUCKET_BOUNDS.len() + 1
            )));
        }
        let total: u64 = serde::de::field(v, "total")?;
        if counts.iter().sum::<u64>() != total {
            return Err(serde::de::Error::custom(
                "histogram bucket counts do not sum to its total",
            ));
        }
        Ok(Histogram {
            counts,
            total,
            sum: serde::de::field(v, "sum")?,
        })
    }
}

impl serde::Serialize for MemoryRecorder {
    fn to_value(&self) -> serde::Value {
        let label = |s: &str| serde::Value::Str(s.to_string());
        let counters = self
            .counters
            .iter()
            .map(|((origin, name), v)| {
                serde::Value::Seq(vec![origin.to_value(), label(name), v.to_value()])
            })
            .collect();
        let daily = self
            .daily
            .iter()
            .map(|((date, origin, name), v)| {
                serde::Value::Seq(vec![
                    date.to_value(),
                    origin.to_value(),
                    label(name),
                    v.to_value(),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|((origin, name), (at, v))| {
                serde::Value::Seq(vec![
                    origin.to_value(),
                    label(name),
                    at.to_value(),
                    v.to_value(),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|((origin, name), h)| {
                serde::Value::Seq(vec![origin.to_value(), label(name), h.to_value()])
            })
            .collect();
        serde::Value::Map(vec![
            (label("events"), self.events.to_value()),
            (
                label("max_events"),
                serde::Value::U64(self.max_events as u64),
            ),
            (label("events_dropped"), self.events_dropped.to_value()),
            (label("counters"), serde::Value::Seq(counters)),
            (label("daily"), serde::Value::Seq(daily)),
            (label("gauges"), serde::Value::Seq(gauges)),
            (label("histograms"), serde::Value::Seq(histograms)),
        ])
    }
}

/// Reads section `name` as a sequence of fixed-arity rows.
fn rows<'v>(
    v: &'v serde::Value,
    name: &str,
    arity: usize,
) -> Result<Vec<&'v [serde::Value]>, serde::de::Error> {
    v.get(name)
        .and_then(serde::Value::as_seq)
        .ok_or_else(|| serde::de::Error::custom(format!("telemetry: missing `{name}` sequence")))?
        .iter()
        .map(|row| {
            row.as_seq().filter(|r| r.len() == arity).ok_or_else(|| {
                serde::de::Error::custom(format!(
                    "telemetry `{name}` row must have {arity} elements"
                ))
            })
        })
        .collect()
}

/// An interned label read from row position `idx`.
fn label_at(row: &[serde::Value], idx: usize) -> Result<&'static str, serde::de::Error> {
    row.get(idx)
        .and_then(serde::Value::as_str)
        .map(crate::intern)
        .ok_or_else(|| serde::de::Error::custom("telemetry row label must be a string"))
}

/// A typed value read from row position `idx`.
fn item_at<T: serde::Deserialize>(row: &[serde::Value], idx: usize) -> Result<T, serde::de::Error> {
    let v = row
        .get(idx)
        .ok_or_else(|| serde::de::Error::custom("telemetry row is too short"))?;
    T::from_value(v)
}

impl serde::Deserialize for MemoryRecorder {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let max_events: u64 = serde::de::field(v, "max_events")?;
        let max_events = usize::try_from(max_events)
            .map_err(|_| serde::de::Error::custom("telemetry max_events exceeds usize"))?;
        let events: Vec<Event> = serde::de::field(v, "events")?;
        if events.len() > max_events {
            return Err(serde::de::Error::custom(format!(
                "telemetry holds {} events over its cap of {max_events}",
                events.len()
            )));
        }
        let mut counters = BTreeMap::new();
        for row in rows(v, "counters", 3)? {
            let key = (item_at::<Origin>(row, 0)?, label_at(row, 1)?);
            if counters.insert(key, item_at::<u64>(row, 2)?).is_some() {
                return Err(serde::de::Error::custom("duplicate telemetry counter key"));
            }
        }
        let mut daily = BTreeMap::new();
        for row in rows(v, "daily", 4)? {
            let key = (
                item_at::<CivilDate>(row, 0)?,
                item_at::<Origin>(row, 1)?,
                label_at(row, 2)?,
            );
            if daily.insert(key, item_at::<u64>(row, 3)?).is_some() {
                return Err(serde::de::Error::custom("duplicate telemetry daily key"));
            }
        }
        let mut gauges = BTreeMap::new();
        for row in rows(v, "gauges", 4)? {
            let key = (item_at::<Origin>(row, 0)?, label_at(row, 1)?);
            let at = item_at::<SimTime>(row, 2)?;
            let value = item_at::<f64>(row, 3)?;
            if gauges.insert(key, (at, value)).is_some() {
                return Err(serde::de::Error::custom("duplicate telemetry gauge key"));
            }
        }
        let mut histograms = BTreeMap::new();
        for row in rows(v, "histograms", 3)? {
            let key = (item_at::<Origin>(row, 0)?, label_at(row, 1)?);
            if histograms
                .insert(key, item_at::<Histogram>(row, 2)?)
                .is_some()
            {
                return Err(serde::de::Error::custom(
                    "duplicate telemetry histogram key",
                ));
            }
        }
        Ok(MemoryRecorder {
            events,
            max_events,
            events_dropped: serde::de::field(v, "events_dropped")?,
            counters,
            daily,
            gauges,
            histograms,
        })
    }
}

/// Merges recorders in iteration order into one.
///
/// This is the reduction `glacsweb-sweep` applies to per-cell recorders:
/// because [`MemoryRecorder::merge_from`] is deterministic and the cells
/// arrive in input-index order, the result is independent of how many
/// worker threads produced them.
pub fn merge_all(recorders: impl IntoIterator<Item = MemoryRecorder>) -> MemoryRecorder {
    let mut merged = MemoryRecorder::default();
    for r in recorders {
        merged.merge_from(r);
    }
    merged
}

/// Writes `items` as a multi-line JSON array body with 4-space-indented
/// entries, leaving the surrounding brackets to the caller.
fn push_block<T>(
    o: &mut String,
    items: impl Iterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T),
) {
    let mut any = false;
    for item in items {
        if any {
            o.push(',');
        }
        any = true;
        o.push_str("\n    ");
        write_item(o, item);
    }
    if any {
        o.push_str("\n  ");
    }
}

/// JSON string literal with escaping, matching `glacsweb-analyze`'s
/// `ANALYSIS.json` writer.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises an `f64` so it round-trips as a JSON number; non-finite
/// values become `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Serialises an event field value.
pub(crate) fn json_value(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => json_f64(*x),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(day: u32, hour: u32) -> SimTime {
        SimTime::from_ymd_hms(2009, 6, day, hour, 0, 0)
    }

    fn orig() -> Origin {
        Origin::new("station", "base")
    }

    #[test]
    fn counters_accumulate_and_roll_up_per_day() {
        let mut r = MemoryRecorder::default();
        r.counter(at(1, 12), orig(), "windows_run", 1);
        r.counter(at(1, 13), orig(), "windows_run", 2);
        r.counter(at(2, 12), orig(), "windows_run", 5);
        assert_eq!(r.counter_value(orig(), "windows_run"), 8);
        assert_eq!(r.daily_value(at(1, 0).date(), orig(), "windows_run"), 3);
        assert_eq!(r.daily_value(at(2, 0).date(), orig(), "windows_run"), 5);
        assert_eq!(r.daily_value(at(3, 0).date(), orig(), "windows_run"), 0);
    }

    #[test]
    fn gauge_latest_write_wins_and_stale_write_is_ignored() {
        let mut r = MemoryRecorder::default();
        r.gauge(at(2, 12), orig(), "soc", 0.8);
        r.gauge(at(1, 12), orig(), "soc", 0.9); // stale: earlier instant
        assert_eq!(r.gauge_value(orig(), "soc"), Some(0.8));
        r.gauge(at(2, 12), orig(), "soc", 0.7); // same instant: later write wins
        assert_eq!(r.gauge_value(orig(), "soc"), Some(0.7));
    }

    #[test]
    fn histogram_buckets_are_deterministic() {
        let mut r = MemoryRecorder::default();
        for v in [0, 1, 2, 3, 15, 16, 100_000] {
            r.observe(orig(), "wait_secs", v);
        }
        let h = r.histogram(orig(), "wait_secs").cloned();
        let h = h.unwrap_or_default();
        assert_eq!(h.total(), 7);
        assert_eq!(h.sum(), 100_037);
        // bounds: 1, 2, 5, 15, 60, 300, 900, 3600, 14400, inf
        assert_eq!(h.counts(), [2, 1, 1, 1, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut r = MemoryRecorder::with_capacity(2);
        for i in 0..5u64 {
            r.event(Event::new(at(1, 12), orig(), "e").with("i", i));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events_dropped(), 3);
    }

    #[test]
    fn merge_is_order_deterministic_and_sums() {
        let mut a = MemoryRecorder::default();
        a.counter(at(1, 12), orig(), "c", 1);
        a.observe(orig(), "h", 10);
        a.event(Event::new(at(1, 12), orig(), "from_a"));
        let mut b = MemoryRecorder::default();
        b.counter(at(1, 13), orig(), "c", 2);
        b.observe(orig(), "h", 2000);
        b.event(Event::new(at(1, 13), orig(), "from_b"));

        let merged = merge_all([a.clone(), b.clone()]);
        assert_eq!(merged.counter_value(orig(), "c"), 3);
        assert_eq!(merged.histogram(orig(), "h").map(Histogram::total), Some(2));
        assert_eq!(merged.events().len(), 2);
        assert_eq!(merged.events().first().map(|e| e.name), Some("from_a"));

        // Same bytes regardless of how the fold is associated.
        let mut left = MemoryRecorder::default();
        left.merge_from(a);
        left.merge_from(b);
        assert_eq!(left.to_json(), merged.to_json());
    }

    #[test]
    fn merge_ref_matches_merge_from() {
        let mut a = MemoryRecorder::default();
        a.counter(at(1, 12), orig(), "c", 1);
        a.observe(orig(), "h", 10);
        a.gauge(at(1, 12), orig(), "g", 0.25);
        a.event(Event::new(at(1, 12), orig(), "from_a"));
        let mut b = MemoryRecorder::default();
        b.counter(at(2, 13), orig(), "c", 2);
        b.observe(orig(), "h", 2000);
        b.gauge(at(2, 13), orig(), "g", 0.75);
        b.event(Event::new(at(2, 13), orig(), "from_b"));

        let mut by_value = MemoryRecorder::default();
        by_value.merge_from(a.clone());
        by_value.merge_from(b.clone());
        let mut by_ref = MemoryRecorder::default();
        by_ref.merge_ref(&a);
        by_ref.merge_ref(&b);
        assert_eq!(by_ref, by_value);
        assert_eq!(by_ref.to_json(), by_value.to_json());
        assert!(!a.is_empty(), "merge_ref leaves the source untouched");
    }

    #[test]
    fn take_memory_drains_the_recorder() {
        let mut r = MemoryRecorder::default();
        r.counter(at(1, 12), orig(), "c", 4);
        let taken = r.take_memory().unwrap_or_default();
        assert_eq!(taken.counter_value(orig(), "c"), 4);
        assert!(r.is_empty(), "recorder left empty");
    }

    fn first(parsed: &serde::Value, section: &str) -> serde::Value {
        parsed
            .get(section)
            .and_then(serde::Value::as_seq)
            .and_then(<[serde::Value]>::first)
            .cloned()
            .expect("section has an entry")
    }

    #[test]
    fn json_is_valid_and_schema_first() {
        let mut r = MemoryRecorder::default();
        r.counter(at(1, 12), orig(), "packets", 7);
        r.gauge(at(1, 12), orig(), "soc", 0.5);
        r.observe(orig(), "wait", 30);
        r.event(
            Event::new(at(1, 12), orig(), "quote\"test")
                .with("s", "line\nbreak")
                .with("f", 1.25)
                .with("neg", -2i64)
                .with("flag", true),
        );
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"glacsweb-obs/1\""));
        let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(serde::Value::as_str),
            Some("glacsweb-obs/1")
        );
        let counter = first(&parsed, "counters");
        assert_eq!(counter.get("value").and_then(serde::Value::as_u64), Some(7));
        let event = first(&parsed, "events");
        let fields = event.get("fields").cloned().expect("fields object");
        assert_eq!(
            fields.get("s").and_then(serde::Value::as_str),
            Some("line\nbreak")
        );
        assert_eq!(fields.get("flag"), Some(&serde::Value::Bool(true)));
        assert_eq!(fields.get("neg").and_then(serde::Value::as_i64), Some(-2));
        let hist = first(&parsed, "histograms");
        assert_eq!(hist.get("total").and_then(serde::Value::as_u64), Some(1));
        let buckets = hist
            .get("buckets")
            .and_then(serde::Value::as_seq)
            .map(<[serde::Value]>::len);
        assert_eq!(buckets, Some(BUCKET_BOUNDS.len() + 1));
    }

    #[test]
    fn non_finite_gauges_serialise_as_null() {
        let mut r = MemoryRecorder::default();
        r.gauge(at(1, 12), orig(), "bad", f64::NAN);
        let parsed: serde::Value = serde_json::from_str(&r.to_json()).expect("valid JSON");
        let gauge = first(&parsed, "gauges");
        assert_eq!(gauge.get("value"), Some(&serde::Value::Null));
    }

    #[test]
    fn empty_recorder_exports_empty_sections() {
        let r = MemoryRecorder::default();
        let parsed: serde::Value = serde_json::from_str(&r.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("events_dropped").and_then(serde::Value::as_u64),
            Some(0)
        );
        for section in ["counters", "daily", "gauges", "histograms", "events"] {
            let len = parsed
                .get(section)
                .and_then(serde::Value::as_seq)
                .map(<[serde::Value]>::len);
            assert_eq!(len, Some(0), "section {section} empty");
        }
    }
}
