//! The Glacsweb station controller — the paper's primary contribution.
//!
//! A *station* (base station on the glacier, or dGPS reference station at
//! the café) is a Gumsense board: an always-on MSP430 that samples the
//! battery every thirty minutes, keeps the schedule and switches power
//! rails, plus a Gumstix ARM Linux computer powered only for the daily
//! midday-UTC communications window.
//!
//! This crate implements, faithfully to the paper:
//!
//! * **Table II** — the four-level adaptive power-state policy driven by
//!   the daily average battery voltage ([`PowerState`], [`PolicyTable`]);
//! * **Fig 4** — the daily-run flowchart: probe jobs → MSP readings →
//!   local power state → GPS files → package → upload state → upload data
//!   → fetch override → fetch/execute special ([`Station::on_window`]);
//! * the **2-hour watchdog** bounding every run (§VI), including the
//!   documented ordering bug where a backlogged upload starves the special
//!   command ([`ControllerConfig::special_before_upload`]);
//! * **§IV** — automatic schedule resetting after total power loss: RTC
//!   reset detection, GPS time re-sync with a sleep-a-day retry, optional
//!   NTP-over-GPRS fallback, restart in state 0 ([`recovery`]);
//! * **§VI** — remote code updates verified with an MD5 checksum
//!   (implemented from scratch in [`md5`]) and acknowledged immediately
//!   via HTTP GET, because the deployed `wget` had no POST support;
//! * server-mediated power-state synchronisation through the [`Uplink`]
//!   trait, with the local clamping rules (never above what the battery
//!   allows, never forced to state 0).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod data;
pub mod md5;
mod power_state;
pub mod recovery;
mod schedule;
mod station;
mod uplink;

pub use controller::{ControllerConfig, WindowReport};
pub use data::{DataStore, FileKind, FilePayload, PendingFile};
pub use power_state::{PolicyTable, PowerState};
pub use schedule::Schedule;
pub use station::{CommsPath, Station, StationConfig, StationRole, StationState, StationStatus};
pub use uplink::{CodeUpdate, SpecialCommand, SpecialResult, StationId, Uplink, UploadItem};
