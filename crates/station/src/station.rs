//! The station: Gumsense hardware assembly plus the daily-run controller.

use std::collections::BTreeMap;

use glacsweb_env::Environment;
use glacsweb_hw::{BaseSensors, CfCard, DGps, Gumstix, Msp430, Watchdog};
use glacsweb_link::{DataCostMeter, GprsConfig, GprsLink, RelayWanLink, WanLink, WanState};
use glacsweb_obs::{MemoryRecorder, NullRecorder, Origin, Recorder, Scope};
use glacsweb_power::{Charger, LeadAcidBattery, MainsCharger, PowerRail, SolarPanel, WindTurbine};
use glacsweb_probe::{FetchSession, ProbeFirmware, ProbeId};
use glacsweb_sim::{
    AmpHours, Bytes, ConfigError, SimDuration, SimRng, SimTime, TraceLevel, TraceLog, Volts, Watts,
};
use serde::{Deserialize, Serialize};

use crate::controller::{ControllerConfig, WindowReport};
use crate::data::{DataStore, FileKind, UploadReport};
use crate::md5::{md5, to_hex};
use crate::power_state::{PolicyTable, PowerState};
use crate::recovery::{RecoveryConfig, RecoveryOutcome};
use crate::schedule::Schedule;
use crate::uplink::{SpecialResult, StationId, Uplink, UploadItem};

/// What duties a station carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StationRole {
    /// On the glacier: subglacial probes, mobile dGPS, solar + wind.
    Base,
    /// At the café: fixed-location dGPS, solar + seasonal mains.
    Reference,
}

/// Static configuration of one station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationConfig {
    /// Identity on the server.
    pub id: StationId,
    /// Duties.
    pub role: StationRole,
    /// Battery bank capacity.
    pub battery: AmpHours,
    /// Initial state of charge.
    pub initial_soc: f64,
    /// Solar panel rating, if fitted.
    pub solar: Option<Watts>,
    /// Wind generator rating, if fitted.
    pub wind: Option<Watts>,
    /// Mains charger rating, if fitted (café power).
    pub mains: Option<Watts>,
    /// Table II thresholds.
    pub policy: PolicyTable,
    /// Daily-run controller settings.
    pub controller: ControllerConfig,
    /// §IV recovery settings.
    pub recovery: RecoveryConfig,
    /// GPRS network behaviour (used by the [`CommsPath::DualGprs`] path
    /// and by the reference station's onward hop).
    pub gprs: GprsConfig,
    /// Which wide-area path this station uses.
    pub comms: CommsPath,
    /// Data tariff, currency per MiB.
    pub tariff_per_mib: f64,
    /// Power state the schedule starts in.
    pub initial_state: PowerState,
}

impl StationConfig {
    /// The glacier base station as deployed: 36 Ah bank, 10 W solar, 50 W
    /// wind, probes, deployed-2008 controller.
    pub fn base_2008() -> Self {
        StationConfig {
            id: StationId::Base,
            role: StationRole::Base,
            battery: AmpHours(36.0),
            initial_soc: 1.0,
            solar: Some(Watts(10.0)),
            wind: Some(Watts(50.0)),
            mains: None,
            policy: PolicyTable::paper(),
            controller: ControllerConfig::deployed_2008(),
            recovery: RecoveryConfig::deployed_2008(),
            gprs: GprsConfig::field(),
            comms: CommsPath::DualGprs,
            tariff_per_mib: 4.0,
            initial_state: PowerState::S3,
        }
    }

    /// The Norway-style base station: same hardware, but its data rides
    /// the radio-modem relay through the reference station (§II baseline).
    pub fn base_norway_relay() -> Self {
        StationConfig {
            comms: CommsPath::RelayViaReference,
            ..StationConfig::base_2008()
        }
    }

    /// The café reference station: 36 Ah bank, 10 W solar, seasonal mains.
    pub fn reference_2008() -> Self {
        StationConfig {
            id: StationId::Reference,
            role: StationRole::Reference,
            wind: None,
            mains: Some(Watts(30.0)),
            ..StationConfig::base_2008()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.battery.value() <= 0.0 {
            return Err(ConfigError::new(
                "station",
                "battery",
                "battery capacity must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.initial_soc) {
            return Err(ConfigError::new(
                "station",
                "initial_soc",
                format!("initial soc {} out of range", self.initial_soc),
            ));
        }
        if self.tariff_per_mib < 0.0 {
            return Err(ConfigError::new(
                "station",
                "tariff_per_mib",
                "tariff must be non-negative",
            ));
        }
        self.controller.validate()?;
        self.recovery.validate()?;
        self.gprs.validate()
    }
}

/// Which wide-area path carries the station's data home (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommsPath {
    /// The deployed architecture: this station has its own GPRS modem.
    #[default]
    DualGprs,
    /// The abandoned Norway architecture: PPP over the long-range radio
    /// modem to the reference station, which forwards onward. Couples
    /// this station's communications to the partner's health.
    RelayViaReference,
}

/// A point-in-time housekeeping snapshot — the equivalent of the real
/// system's daily status record ("data collated from the base station can
/// provide useful insights into the condition of the system", §VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationStatus {
    /// Which station.
    pub id: StationId,
    /// Snapshot time.
    pub at: SimTime,
    /// Battery terminal voltage.
    pub voltage: Volts,
    /// Battery state of charge.
    pub soc: f64,
    /// Operating power state.
    pub state: PowerState,
    /// Upload backlog.
    pub backlog: Bytes,
    /// CF-card usage.
    pub card_used: Bytes,
    /// dGPS files waiting on the receiver's internal card.
    pub gps_pending: usize,
    /// Accumulated RTC error, seconds.
    pub clock_error_secs: f64,
    /// Lifetime GPRS cost.
    pub gprs_cost: f64,
    /// Windows run / cut / recoveries.
    pub windows: (u64, u64, u64),
}

/// Load rail names registered on the power rail.
mod loads {
    pub const MSP430: &str = "msp430";
    pub const GUMSTIX: &str = "gumstix";
    pub const GPS: &str = "gps";
    pub const GPRS: &str = "gprs";
    pub const RADIO_MODEM: &str = "radio_modem";
    pub const PROBE_RADIO: &str = "probe_radio";
}

/// Time modelled for one small control exchange (state upload, override
/// fetch…) over an established GPRS session.
const CONTROL_EXCHANGE: SimDuration = SimDuration::from_secs(10);

/// SoC at which a dead station's supply is considered restored.
const RESTART_SOC: f64 = 0.15;

/// Crystal drift of the MSP430 RTC, seconds per day. §II: "maintaining
/// good time accuracy on the two units is still needed" — each dGPS
/// recording doubles as a time fix, so the error only accumulates in
/// states without GPS.
const RTC_DRIFT_SECS_PER_DAY: f64 = 4.0;

/// One Gumsense station.
///
/// The simulation world drives it through four entry points, all of which
/// internally advance the environment and the power rail to their event
/// time:
///
/// * [`Station::advance`] — integrate power between events;
/// * [`Station::on_sample`] — the MSP430's half-hourly voltage sample;
/// * [`Station::on_gps_slot`] — an MSP430-triggered dGPS recording;
/// * [`Station::on_window`] — the daily midday communications window
///   (Fig 4).
#[derive(Debug)]
pub struct Station {
    config: StationConfig,
    rail: PowerRail,
    msp: Msp430<Schedule>,
    gumstix: Gumstix,
    dgps: DGps,
    wan: Box<dyn WanLink>,
    /// Which load-rail the WAN modem draws from.
    wan_load: &'static str,
    cost: DataCostMeter,
    sensors: BaseSensors,
    store: DataStore,
    /// The 4 GB compact-flash card mirroring the upload queue (§II/§VII).
    card: CfCard,
    log: TraceLog,
    rng: SimRng,
    /// Survives power loss (flash) — §IV's reset-detection anchor.
    last_run: Option<SimTime>,
    fetch_sessions: BTreeMap<ProbeId, FetchSession>,
    pending_special_results: Vec<SpecialResult>,
    sensor_batch: u64,
    /// §VII priority extension: armed when a conductivity jump is seen,
    /// cleared once the data has been uploaded.
    priority_event: bool,
    /// Per-probe conductivity baselines for the priority detector
    /// (probes have different offsets, so jumps are judged per probe).
    conductivity_baselines: BTreeMap<ProbeId, f64>,
    /// §V: the wired probe is the through-ice radio gateway to the
    /// wireless probes — and a single point of failure ("using several
    /// wired probes has been considered … ruled out because of the lack
    /// of serial ports"). When it is down, no probe can be queried.
    wired_probe_ok: bool,
    /// Fault-injected GPRS degradation multiplier on the weather factor
    /// (1.0 = healthy network).
    gprs_degradation: f64,
    /// Fault-injected §VI stuck-transfer hang: the next upload stalls
    /// until the watchdog cuts the window.
    stuck_transfer: bool,
    /// Accumulated RTC error, seconds (positive = clock fast). Drifts a
    /// few seconds per day; zeroed whenever a GPS time fix happens.
    clock_error_secs: f64,
    /// Drift direction/rate multiplier for this unit's crystal.
    drift_sign: f64,
    last_drift_update: SimTime,
    powered: bool,
    /// Telemetry sink — the zero-cost [`NullRecorder`] unless a
    /// deployment installs a [`MemoryRecorder`]. Recording never draws
    /// from `rng`, so installing one cannot change behaviour.
    obs: Box<dyn Recorder>,
    windows_run: u64,
    windows_cut: u64,
    recoveries: u64,
    file_seq: u64,
}

/// The complete serializable state of one [`Station`], produced by
/// [`Station::snapshot`] and consumed by [`Station::from_state`].
///
/// Two of the live station's fields are deliberately *not* stored:
/// `wan_load` (a `&'static str` fully determined by the WAN variant) and
/// the trait objects, which travel as their closed-world state types
/// ([`WanState`]; `Option<MemoryRecorder>` for the telemetry sink — a
/// `NullRecorder` round-trips as `None`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StationState {
    config: StationConfig,
    rail: PowerRail,
    msp: Msp430<Schedule>,
    gumstix: Gumstix,
    dgps: DGps,
    wan: WanState,
    cost: DataCostMeter,
    sensors: BaseSensors,
    store: DataStore,
    card: CfCard,
    log: TraceLog,
    rng: SimRng,
    last_run: Option<SimTime>,
    fetch_sessions: BTreeMap<ProbeId, FetchSession>,
    pending_special_results: Vec<SpecialResult>,
    sensor_batch: u64,
    priority_event: bool,
    conductivity_baselines: BTreeMap<ProbeId, f64>,
    wired_probe_ok: bool,
    gprs_degradation: f64,
    stuck_transfer: bool,
    clock_error_secs: f64,
    drift_sign: f64,
    last_drift_update: SimTime,
    powered: bool,
    obs: Option<MemoryRecorder>,
    windows_run: u64,
    windows_cut: u64,
    recoveries: u64,
    file_seq: u64,
}

impl Station {
    /// Builds a station at `start` simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; fallible callers should
    /// use [`Station::try_new`].
    pub fn new(config: StationConfig, start: SimTime, seed: u64) -> Self {
        match Station::try_new(config, start, seed) {
            Ok(station) => station,
            // glacsweb: allow(panic-freedom, reason = "construction-time wiring check kept for example/test ergonomics; the fallible path is try_new")
            Err(e) => panic!("invalid station config: {e}"),
        }
    }

    /// Builds a station at `start` simulated time, validating the
    /// configuration first.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid configuration field.
    pub fn try_new(config: StationConfig, start: SimTime, seed: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut rng = SimRng::seed_from(seed);
        let battery = LeadAcidBattery::with_state(config.battery, config.initial_soc);
        let mut rail = PowerRail::new(battery, start);
        if let Some(w) = config.solar {
            rail.add_charger(Charger::Solar(SolarPanel::new(w)));
        }
        if let Some(w) = config.wind {
            rail.add_charger(Charger::Wind(WindTurbine::new(w)));
        }
        if let Some(w) = config.mains {
            rail.add_charger(Charger::Mains(MainsCharger::new(w)));
        }
        let gumstix = Gumstix::new();
        {
            let l = rail.loads_mut();
            l.add(loads::MSP430, glacsweb_hw::table1::MSP430_POWER);
            l.add(loads::GUMSTIX, gumstix.power());
            l.add(loads::GPS, glacsweb_hw::table1::GPS_POWER);
            l.add(loads::GPRS, glacsweb_hw::table1::GPRS_POWER);
            l.add(loads::RADIO_MODEM, glacsweb_hw::table1::RADIO_MODEM_POWER);
            l.add(loads::PROBE_RADIO, Watts(0.5));
            l.set_on(loads::MSP430, true);
        }
        let mut msp = Msp430::new(start);
        msp.write_schedule(Schedule::standard(config.initial_state));
        let mut log = TraceLog::with_capacity(8192);
        log.set_min_level(config.controller.log_min_level);
        let (wan, wan_load): (Box<dyn WanLink>, &'static str) = match config.comms {
            CommsPath::DualGprs => (
                Box::new(GprsLink::try_new(config.gprs.clone())?),
                loads::GPRS,
            ),
            CommsPath::RelayViaReference => (Box::new(RelayWanLink::new()), loads::RADIO_MODEM),
        };
        let cost = DataCostMeter::per_megabyte(config.tariff_per_mib);
        let is_base = config.id == StationId::Base;
        Ok(Station {
            rng: rng.fork(u64::from(is_base)),
            config,
            rail,
            msp,
            gumstix,
            dgps: DGps::new(),
            wan,
            wan_load,
            cost,
            sensors: BaseSensors::new(),
            store: DataStore::new(),
            card: CfCard::new(Bytes::from_mib(4096)),
            log,
            last_run: Some(start),
            last_drift_update: start,
            fetch_sessions: BTreeMap::new(),
            pending_special_results: Vec::new(),
            sensor_batch: 0,
            priority_event: false,
            conductivity_baselines: BTreeMap::new(),
            wired_probe_ok: true,
            gprs_degradation: 1.0,
            stuck_transfer: false,
            clock_error_secs: 0.0,
            drift_sign: if is_base { 1.0 } else { -0.7 },
            powered: true,
            obs: Box::new(NullRecorder),
            windows_run: 0,
            windows_cut: 0,
            recoveries: 0,
            file_seq: 0,
        })
    }

    /// Captures the complete station state for a deployment snapshot.
    ///
    /// Everything that influences future behaviour is included: the power
    /// rail, the MSP430 (RTC offsets, RAM schedule, voltage log), the WAN
    /// link mid-session, partially-acked probe fetch sessions, retry and
    /// clock-drift progress, and the accumulated telemetry (if a memory
    /// recorder is installed). [`Station::from_state`] rebuilds a station
    /// that continues bit-identically.
    pub fn snapshot(&self) -> StationState {
        StationState {
            config: self.config.clone(),
            rail: self.rail.clone(),
            msp: self.msp.clone(),
            gumstix: self.gumstix.clone(),
            dgps: self.dgps.clone(),
            wan: self.wan.snapshot_state(),
            cost: self.cost,
            sensors: self.sensors.clone(),
            store: self.store.clone(),
            card: self.card.clone(),
            log: self.log.clone(),
            rng: self.rng.clone(),
            last_run: self.last_run,
            fetch_sessions: self.fetch_sessions.clone(),
            pending_special_results: self.pending_special_results.clone(),
            sensor_batch: self.sensor_batch,
            priority_event: self.priority_event,
            conductivity_baselines: self.conductivity_baselines.clone(),
            wired_probe_ok: self.wired_probe_ok,
            gprs_degradation: self.gprs_degradation,
            stuck_transfer: self.stuck_transfer,
            clock_error_secs: self.clock_error_secs,
            drift_sign: self.drift_sign,
            last_drift_update: self.last_drift_update,
            powered: self.powered,
            obs: self.obs.memory().cloned(),
            windows_run: self.windows_run,
            windows_cut: self.windows_cut,
            recoveries: self.recoveries,
            file_seq: self.file_seq,
        }
    }

    /// Rebuilds a station from a captured [`StationState`].
    ///
    /// # Errors
    ///
    /// Returns an error if the embedded configuration fails
    /// [`StationConfig::validate`] or the WAN link state does not match
    /// the configured [`CommsPath`].
    pub fn from_state(state: StationState) -> Result<Self, ConfigError> {
        state.config.validate()?;
        let wan_load = match (&state.config.comms, &state.wan) {
            (CommsPath::DualGprs, WanState::Gprs(_)) => loads::GPRS,
            (CommsPath::RelayViaReference, WanState::Relay(_)) => loads::RADIO_MODEM,
            (comms, wan) => {
                return Err(ConfigError::new(
                    "station",
                    "comms",
                    format!(
                        "comms path {comms:?} does not match WAN state {}",
                        wan.label()
                    ),
                ))
            }
        };
        let obs: Box<dyn Recorder> = match state.obs {
            Some(memory) => Box::new(memory),
            None => Box::new(NullRecorder),
        };
        Ok(Station {
            config: state.config,
            rail: state.rail,
            msp: state.msp,
            gumstix: state.gumstix,
            dgps: state.dgps,
            wan: state.wan.into_link(),
            wan_load,
            cost: state.cost,
            sensors: state.sensors,
            store: state.store,
            card: state.card,
            log: state.log,
            rng: state.rng,
            last_run: state.last_run,
            fetch_sessions: state.fetch_sessions,
            pending_special_results: state.pending_special_results,
            sensor_batch: state.sensor_batch,
            priority_event: state.priority_event,
            conductivity_baselines: state.conductivity_baselines,
            wired_probe_ok: state.wired_probe_ok,
            gprs_degradation: state.gprs_degradation,
            stuck_transfer: state.stuck_transfer,
            clock_error_secs: state.clock_error_secs,
            drift_sign: state.drift_sign,
            last_drift_update: state.last_drift_update,
            powered: state.powered,
            obs,
            windows_run: state.windows_run,
            windows_cut: state.windows_cut,
            recoveries: state.recoveries,
            file_seq: state.file_seq,
        })
    }

    /// The station configuration.
    pub fn config(&self) -> &StationConfig {
        &self.config
    }

    /// The station identity.
    pub fn id(&self) -> StationId {
        self.config.id
    }

    /// The power rail (battery, loads, harvest meters).
    pub fn rail(&self) -> &PowerRail {
        &self.rail
    }

    /// The upload queue / data store.
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// The GPRS cost meter.
    pub fn cost(&self) -> &DataCostMeter {
        &self.cost
    }

    /// The station logfile.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// The dGPS receiver.
    pub fn dgps(&self) -> &DGps {
        &self.dgps
    }

    /// Lifetime (windows run, windows cut by the watchdog, recoveries).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.windows_run, self.windows_cut, self.recoveries)
    }

    /// Total MSP430 power losses (battery exhaustions).
    pub fn power_losses(&self) -> u64 {
        self.msp.power_losses()
    }

    /// Installs a telemetry recorder. The default is the zero-cost
    /// [`NullRecorder`]; recording never consumes simulation randomness,
    /// so swapping recorders cannot change what the station does.
    pub fn set_recorder(&mut self, obs: Box<dyn Recorder>) {
        self.obs = obs;
    }

    /// Takes the accumulated in-memory telemetry (if the installed
    /// recorder keeps any), leaving an empty recorder of the same kind
    /// behind.
    pub fn take_telemetry(&mut self) -> Option<MemoryRecorder> {
        self.obs.take_memory()
    }

    /// Telemetry station label for [`Origin`] scoping.
    fn station_label(&self) -> &'static str {
        match self.config.id {
            StationId::Base => "base",
            StationId::Reference => "reference",
        }
    }

    /// The station-component telemetry origin.
    fn origin(&self) -> Origin {
        Origin::new("station", self.station_label())
    }

    /// `true` while the supply can run the MSP430.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// The schedule the MSP430 will act on: RAM contents, or the ROM
    /// fallback (midday wake, state 0, used only to run recovery) if RAM
    /// was lost.
    pub fn effective_schedule(&self) -> Schedule {
        self.msp
            .schedule()
            .copied()
            .unwrap_or_else(Schedule::recovery_default)
    }

    /// The battery terminal voltage the MSP430's ADC would read now.
    pub fn measured_voltage(&self, env: &Environment) -> Volts {
        self.rail.measured_voltage(env)
    }

    /// Current operating power state (from the schedule).
    pub fn current_state(&self) -> PowerState {
        self.effective_schedule().state
    }

    /// When the station last completed (or started) a daily run.
    pub fn last_run(&self) -> Option<SimTime> {
        self.last_run
    }

    /// Current RTC error in seconds (positive = this unit's clock runs
    /// fast). Zeroed by every GPS time fix.
    pub fn clock_error_secs(&self) -> f64 {
        self.clock_error_secs
    }

    /// A housekeeping snapshot of the station's condition.
    pub fn status(&self, env: &Environment) -> StationStatus {
        StationStatus {
            id: self.config.id,
            at: self.rail.now(),
            voltage: self.rail.measured_voltage(env),
            soc: self.rail.battery().state_of_charge(),
            state: self.current_state(),
            backlog: self.store.backlog_bytes(),
            card_used: self.card.used(),
            gps_pending: self.dgps.pending_files().len(),
            clock_error_secs: self.clock_error_secs,
            gprs_cost: self.cost.total_cost(),
            windows: (self.windows_run, self.windows_cut, self.recoveries),
        }
    }

    /// Integrates power up to `to`, handling total exhaustion and
    /// subsequent supply restoration.
    pub fn advance(&mut self, env: &mut Environment, to: SimTime) {
        env.advance_to(to);
        self.rail.advance(env, to);
        if to > self.last_drift_update {
            let days = to.saturating_since(self.last_drift_update).as_days_f64();
            self.clock_error_secs += self.drift_sign * RTC_DRIFT_SECS_PER_DAY * days;
            self.last_drift_update = to;
        }
        if self.powered && self.rail.is_exhausted() {
            // Total power loss: RTC resets, RAM schedule and samples gone.
            self.msp.power_loss();
            self.rail.loads_mut().all_off();
            self.gumstix.power_off(to);
            if self.wan.is_connected() {
                self.wan.disconnect();
            }
            self.powered = false;
            let mut scope = Scope::new(to, self.origin(), self.obs.as_mut());
            scope.counter("power_losses", 1);
            if scope.enabled() {
                let event = scope.make("power_loss");
                scope.emit(event);
            }
        } else if !self.powered && self.rail.battery().state_of_charge() >= RESTART_SOC {
            // External charging revived the supply (§IV).
            self.msp.power_restored(to);
            self.rail.loads_mut().set_on(loads::MSP430, true);
            self.powered = true;
            let mut scope = Scope::new(to, self.origin(), self.obs.as_mut());
            scope.counter("power_restores", 1);
            if scope.enabled() {
                let event = scope.make("power_restored");
                scope.emit(event);
            }
        }
    }

    /// The MSP430's half-hourly battery sample (§III), plus hourly surface
    /// sensor readings.
    ///
    /// Returns the voltage the ADC read, or `None` if the station is
    /// unpowered — callers that want the sample (the deployment loop
    /// records it) reuse it instead of re-running the taper solve.
    pub fn on_sample(&mut self, env: &mut Environment, t: SimTime) -> Option<Volts> {
        self.advance(env, t);
        if !self.powered {
            return None;
        }
        let v = self.rail.measured_voltage(env);
        self.msp.record_voltage(t, v);
        if t.seconds_of_day().is_multiple_of(3600) {
            let _ = self.sensors.sample(env, t, &mut self.rng);
            self.sensor_batch += 1;
        }
        Some(v)
    }

    /// An MSP430-scheduled dGPS recording slot.
    ///
    /// §II: "the dGPS is activated by the microcontroller … by setting the
    /// dGPS to automatically start taking a reading whenever it is turned
    /// on."
    pub fn on_gps_slot(&mut self, env: &mut Environment, t: SimTime) -> Option<(SimTime, Volts)> {
        self.advance(env, t);
        if !self.powered || self.effective_schedule().state.gps_readings_per_day() == 0 {
            return None;
        }
        let session = self.dgps.session_duration();
        self.rail.loads_mut().set_on(loads::GPS, true);
        // Sample the sagged voltage mid-session — these are the regular
        // dips Fig 5 shows at two-hour intervals in state 3.
        let mid = t + SimDuration::from_secs(session.as_secs() / 2);
        self.advance(env, mid);
        let dip = (mid, self.rail.measured_voltage(env));
        self.advance(env, t + session);
        self.rail.loads_mut().set_on(loads::GPS, false);
        if !self.powered {
            return None; // died mid-reading
        }
        let true_position = match self.config.role {
            StationRole::Base => env.glacier_displacement_m(),
            StationRole::Reference => 0.0,
        };
        // The MSP430 triggers the session by its own (drifting) clock, so
        // the recording actually happens offset from the nominal slot —
        // the §II synchronisation concern. The dGPS then hands back GPS
        // time, which doubles as a free RTC fix.
        let skew = SimDuration::from_secs_f64(self.clock_error_secs.abs());
        // A fast clock fires the slot early; a slow one fires late.
        let actual = if self.clock_error_secs >= 0.0 {
            t - skew
        } else {
            t + skew
        };
        let file = self.dgps.take_reading(actual, true_position, &mut self.rng);
        self.clock_error_secs = 0.0;
        self.msp.set_rtc(t, t);
        self.log.record(
            t,
            TraceLevel::Debug,
            "dgps",
            format!(
                "reading {} ({} sats, {})",
                file.taken_at, file.satellites, file.size
            ),
        );
        Some(dip)
    }

    /// Runs the daily communications window (Fig 4). Returns `None` when
    /// the station is unpowered.
    pub fn on_window(
        &mut self,
        env: &mut Environment,
        t: SimTime,
        probes: &mut [ProbeFirmware],
        uplink: &mut dyn Uplink,
    ) -> Option<WindowReport> {
        self.advance(env, t);
        if !self.powered {
            return None;
        }
        self.windows_run += 1;
        self.obs.counter(t, self.origin(), "windows_run", 1);
        self.wan.advance_clock(t);
        let wd = Watchdog::start(t, self.config.controller.watchdog_limit);
        let mut report = self.blank_report(t);

        // Boot Linux.
        let mut now = t;
        self.rail.loads_mut().set_on(loads::GUMSTIX, true);
        let ready = self.gumstix.power_on(now);
        self.advance(env, ready);
        now = ready;
        if !self.still_alive(&mut report, now) {
            return Some(self.finalize(env, report, now, false));
        }
        self.gumstix.boot_complete(now);

        // §IV: wake-time clock/schedule sanity check.
        let outcome = self.maybe_recover(env, &mut now);
        report.recovered = outcome.recovered();
        if outcome == RecoveryOutcome::SleepAndRetry {
            // "the system will sleep for a day and try again"
            return Some(self.finalize(env, report, now, false));
        }
        if outcome.recovered() {
            // §IV: "the system will set the schedule to state 0 … and will
            // then proceed as normal" — normal operation resumes from the
            // next window; today's run ends with the recovery itself.
            report.local_state = PowerState::S0;
            report.applied_state = PowerState::S0;
            return Some(self.finalize(env, report, now, false));
        }

        self.last_run = Some(now);

        // §VII: a corrupted CF card is detected at mount time; run the
        // (lossy) recovery before any new files are written.
        if self.card.is_corrupted() {
            let (kept, lost) = self.card.recover();
            report.card_recovered = Some((kept, lost));
            self.log.record(
                now,
                TraceLevel::Error,
                "cf",
                format!("filesystem corrupted; recovered {kept} files, lost {lost}"),
            );
        }

        let mut cut = false;

        'window: {
            // 1. Probe jobs — always attempted (Table II).
            if self.config.role == StationRole::Base {
                report.steps.push("probe_jobs".into());
                cut = self.step_probe_jobs(env, &mut now, &wd, probes, &mut report);
                if cut || !self.still_alive(&mut report, now) {
                    break 'window;
                }
            }

            // 2. Readings from the MSP430 → daily average → local state.
            // The samples cross the Fig 2 inter-processor bus as framed,
            // checksummed messages (an on-board transfer is still a
            // transfer — §VI's verification lesson applies here too).
            report.steps.push("msp_readings".into());
            let raw = self.msp.drain_voltage_log();
            let wire = glacsweb_hw::bus::BusResponse::from_voltage_samples(&raw).encode();
            let samples: Vec<(SimTime, Volts)> = match glacsweb_hw::bus::BusResponse::decode(&wire)
            {
                Ok(glacsweb_hw::bus::BusResponse::VoltageLog(log)) => log
                    .into_iter()
                    .map(|(t, mv)| (SimTime::from_unix(t), Volts(f64::from(mv) / 1000.0)))
                    .collect(),
                _ => {
                    self.log.record(
                        now,
                        TraceLevel::Error,
                        "bus",
                        "voltage log transfer failed checksum; using live reading",
                    );
                    Vec::new()
                }
            };
            let daily_avg = if samples.is_empty() {
                self.rail.measured_voltage(env)
            } else {
                Volts(samples.iter().map(|(_, v)| v.value()).sum::<f64>() / samples.len() as f64)
            };
            report.steps.push("calculate_power_state".into());
            report.local_state = self.config.policy.state_for(daily_avg);
            self.log.record(
                now,
                TraceLevel::Info,
                "power",
                format!("daily average {daily_avg} -> {}", report.local_state),
            );

            // Power state 0: stop (Fig 4's first decision diamond) —
            // unless the §VII priority extension is armed and the data
            // warrants forcing a minimal communication.
            if report.local_state == PowerState::S0 {
                if self.config.controller.priority_data && self.priority_event {
                    report.priority_forced = true;
                    self.log.record(
                        now,
                        TraceLevel::Warn,
                        "priority",
                        "state 0 but priority data pending; forcing minimal upload",
                    );
                    self.step_package(now, samples.len() as u64);
                    report.gprs_connected = self.step_connect(env, &mut now, &wd);
                    if report.gprs_connected {
                        self.advance(env, now + CONTROL_EXCHANGE);
                        now += CONTROL_EXCHANGE;
                        uplink.upload_power_state(self.config.id, now.date(), report.local_state);
                        report.state_uploaded = true;
                        cut = self.step_upload(env, &mut now, &wd, uplink, &mut report);
                        self.reconcile_card(now);
                        if report.upload.drained {
                            self.priority_event = false;
                            self.conductivity_baselines.clear();
                        }
                    }
                }
                report.applied_state = PowerState::S0;
                self.write_schedule(PowerState::S0, now);
                break 'window;
            }

            // 3. GPS files (only above state 1).
            if report.local_state > PowerState::S1 {
                report.steps.push("get_gps_files".into());
                cut = self.step_gps_files(env, &mut now, &wd, &mut report);
                if cut || !self.still_alive(&mut report, now) {
                    break 'window;
                }
            }

            // 4. Package data to be sent.
            report.steps.push("package_data".into());
            self.step_package(now, samples.len() as u64);

            // 5. GPRS: bring the session up.
            report.steps.push("connect_gprs".into());
            report.gprs_connected = self.step_connect(env, &mut now, &wd);
            if wd.expired(now) {
                cut = true;
                break 'window;
            }

            if report.gprs_connected {
                // Proposed-fix ordering: special first (§VI suggestion).
                if self.config.controller.special_before_upload {
                    report.steps.push("get_special".into());
                    cut = self.step_special(env, &mut now, &wd, uplink, &mut report);
                    if cut || !self.still_alive(&mut report, now) {
                        break 'window;
                    }
                }

                // 6. Upload power state.
                if self.wan.is_connected() {
                    report.steps.push("upload_power_state".into());
                    self.advance(env, now + CONTROL_EXCHANGE);
                    now += CONTROL_EXCHANGE;
                    uplink.upload_power_state(self.config.id, now.date(), report.local_state);
                    report.state_uploaded = true;
                }

                // 7. Upload data (file by file; resumes tomorrow on cuts).
                report.steps.push("upload_data".into());
                cut = self.step_upload(env, &mut now, &wd, uplink, &mut report);
                self.reconcile_card(now);
                if report.upload.drained && self.priority_event {
                    // The priority event has been reported; re-arm the
                    // baselines at current levels.
                    self.priority_event = false;
                    self.conductivity_baselines.clear();
                }
                if cut || !self.still_alive(&mut report, now) {
                    break 'window;
                }

                // 8. Fetch override state.
                report.steps.push("get_override_state".into());
                if self.ensure_connected(env, &mut now, &wd)
                    && self.server_fetch_ready(env, &mut now, &wd, &*uplink)
                {
                    self.advance(env, now + CONTROL_EXCHANGE);
                    now += CONTROL_EXCHANGE;
                    let server_origin = Origin::new("server", self.station_label());
                    let mut scope = Scope::new(now, server_origin, self.obs.as_mut());
                    report.override_state =
                        uplink.fetch_override_observed(self.config.id, &mut scope);
                }

                // 9. Deployed ordering: special last (the §VI lesson).
                if !self.config.controller.special_before_upload {
                    report.steps.push("get_special".into());
                    cut = self.step_special(env, &mut now, &wd, uplink, &mut report);
                    if cut || !self.still_alive(&mut report, now) {
                        break 'window;
                    }
                }

                // 10. Code updates (checksum-verified, §VI).
                report.steps.push("check_updates".into());
                cut = self.step_update(env, &mut now, &wd, uplink, &mut report);
                if cut || !self.still_alive(&mut report, now) {
                    break 'window;
                }
            }

            // 11. Decide tomorrow's state and write the schedule.
            report.steps.push("write_schedule".into());
            report.applied_state = self
                .config
                .policy
                .apply_override(report.local_state, report.override_state);
            self.write_schedule(report.applied_state, now);
        }

        if wd.expired(now) {
            cut = true;
        }
        Some(self.finalize(env, report, now, cut))
    }

    /// Injects the §VI intermittent RS-232 cable fault.
    pub fn inject_rs232_fault(&mut self, fault: bool) {
        self.dgps.set_rs232_fault(fault);
    }

    /// Injects the §VII CF-card filesystem corruption fault.
    pub fn inject_card_corruption(&mut self) {
        self.card.inject_corruption(&mut self.rng);
    }

    /// Scales GPRS attach failures beyond the weather — the fault
    /// injector's knob for network degradation. `1.0` is a healthy
    /// network; large severities saturate at the 95 % failure cap, which
    /// approximates a total blackout.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is not a finite value ≥ 1.
    pub fn set_gprs_degradation(&mut self, severity: f64) {
        assert!(
            severity.is_finite() && severity >= 1.0,
            "degradation severity must be >= 1"
        );
        self.gprs_degradation = severity;
    }

    /// The current fault-injected GPRS degradation multiplier.
    pub fn gprs_degradation(&self) -> f64 {
        self.gprs_degradation
    }

    /// Arms (or clears) the §VI stuck-transfer hang: while armed, the
    /// upload step stalls until the watchdog cuts the window — "a
    /// watchdog was added … to reboot the system if the software hangs".
    pub fn inject_stuck_transfer(&mut self, stuck: bool) {
        self.stuck_transfer = stuck;
    }

    /// `true` while a stuck-transfer fault is armed.
    pub fn stuck_transfer(&self) -> bool {
        self.stuck_transfer
    }

    /// Forces total battery exhaustion at `t` — the §IV power-failure
    /// fault. The exhaustion is processed immediately: the MSP430 loses
    /// its RTC and RAM schedule, and the station stays dark until
    /// external charging lifts the battery back over the restart
    /// threshold.
    pub fn force_power_failure(&mut self, env: &mut Environment, t: SimTime) {
        self.advance(env, t);
        self.rail.battery_mut().drain_empty();
        self.advance(env, t);
    }

    /// Fails or repairs the wired probe — the §V single point of failure
    /// between the base station and every wireless probe under the ice.
    pub fn set_wired_probe_ok(&mut self, ok: bool) {
        self.wired_probe_ok = ok;
    }

    /// `true` while the wired-probe gateway is functional.
    pub fn wired_probe_ok(&self) -> bool {
        self.wired_probe_ok
    }

    /// Informs a relay-architecture station whether its partner (the
    /// reference station) is alive; a no-op for dual-GPRS stations.
    pub fn set_wan_partner_up(&mut self, up: bool) {
        self.wan.set_partner_up(up);
    }

    /// The station's CF card.
    pub fn card(&self) -> &CfCard {
        &self.card
    }

    /// Mirrors a queued file onto the CF card, logging (but tolerating)
    /// card failures — the queue itself is the source of truth.
    fn persist(&mut self, name: &str, size: Bytes, now: SimTime) {
        if let Err(e) = self.card.write(name, size, now) {
            self.log
                .record(now, TraceLevel::Warn, "cf", format!("write {name}: {e}"));
        }
    }

    /// Frees card copies of files that finished uploading.
    fn reconcile_card(&mut self, now: SimTime) {
        for name in self.store.drain_completed() {
            if let Err(e) = self.card.delete(&name) {
                self.log
                    .record(now, TraceLevel::Warn, "cf", format!("delete {name}: {e}"));
            }
        }
    }

    // ------------------------------------------------------------------
    // window steps
    // ------------------------------------------------------------------

    fn blank_report(&self, t: SimTime) -> WindowReport {
        WindowReport {
            station: self.config.id,
            opened: t,
            closed: t,
            cut_by_watchdog: false,
            died_mid_window: false,
            local_state: self.current_state(),
            override_state: None,
            applied_state: self.current_state(),
            probes_contacted: 0,
            probe_readings: 0,
            probe_fetch_aborted: false,
            gps_files_fetched: 0,
            gps_file_stuck: false,
            gprs_connected: false,
            state_uploaded: false,
            upload: UploadReport::default(),
            special_executed: None,
            update_applied: None,
            update_rejected: None,
            recovered: false,
            priority_forced: false,
            card_recovered: None,
            steps: Vec::new(),
        }
    }

    fn still_alive(&mut self, report: &mut WindowReport, _now: SimTime) -> bool {
        if self.rail.is_exhausted() {
            report.died_mid_window = true;
            false
        } else {
            true
        }
    }

    fn maybe_recover(&mut self, env: &mut Environment, now: &mut SimTime) -> RecoveryOutcome {
        let suspect = self
            .last_run
            .map(|lr| self.msp.rtc_is_suspect(*now, lr))
            .unwrap_or(false)
            || self.msp.schedule().is_none();
        if !suspect {
            return RecoveryOutcome::NotNeeded;
        }
        let rc = self.config.recovery;
        // GPS time fix attempt.
        self.rail.loads_mut().set_on(loads::GPS, true);
        self.advance(env, *now + rc.gps_fix_duration);
        *now += rc.gps_fix_duration;
        self.rail.loads_mut().set_on(loads::GPS, false);
        if self.rng.bernoulli(rc.gps_fix_success_p) {
            self.msp.set_rtc(*now, *now);
            self.msp.write_schedule(Schedule::recovery_default());
            self.last_run = Some(*now);
            self.recoveries += 1;
            self.log.record(
                *now,
                TraceLevel::Warn,
                "recovery",
                "RTC reset detected; re-synced from GPS; schedule -> state 0",
            );
            self.record_recovery(*now, "gps");
            return RecoveryOutcome::RecoveredViaGps;
        }
        if rc.ntp_fallback {
            // NTP over GPRS (the paper's proposed extension).
            if self.wan.connect_weathered(1.0, &mut self.rng).is_ok() {
                self.rail.loads_mut().set_on(self.wan_load, true);
                self.advance(env, *now + CONTROL_EXCHANGE);
                *now += CONTROL_EXCHANGE;
                self.rail.loads_mut().set_on(self.wan_load, false);
                self.wan.disconnect();
                if self.rng.bernoulli(rc.ntp_success_p) {
                    self.msp.set_rtc(*now, *now);
                    self.msp.write_schedule(Schedule::recovery_default());
                    self.last_run = Some(*now);
                    self.recoveries += 1;
                    self.log.record(
                        *now,
                        TraceLevel::Warn,
                        "recovery",
                        "re-synced via NTP fallback",
                    );
                    self.record_recovery(*now, "ntp");
                    return RecoveryOutcome::RecoveredViaNtp;
                }
            }
        }
        self.log.record(
            *now,
            TraceLevel::Error,
            "recovery",
            "no time fix; sleeping a day",
        );
        let mut scope = Scope::new(*now, self.origin(), self.obs.as_mut());
        scope.counter("recovery_failures", 1);
        if scope.enabled() {
            let event = scope.make("recovery_failed");
            scope.emit(event);
        }
        RecoveryOutcome::SleepAndRetry
    }

    /// Records a successful §IV RTC-reset recovery through the telemetry.
    fn record_recovery(&mut self, at: SimTime, via: &'static str) {
        let mut scope = Scope::new(at, self.origin(), self.obs.as_mut());
        scope.counter("recoveries", 1);
        if scope.enabled() {
            let event = scope.make("recovery").with("via", via);
            scope.emit(event);
        }
    }

    fn step_probe_jobs(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        probes: &mut [ProbeFirmware],
        report: &mut WindowReport,
    ) -> bool {
        if !self.wired_probe_ok {
            // §V: with the wired gateway dead, every probe is unreachable;
            // their readings keep accumulating under the ice.
            self.log.record(
                *now,
                TraceLevel::Error,
                "probe",
                "wired probe dead; no sub-glacial communications",
            );
            return false;
        }
        let loss = env.probe_packet_loss();
        let link = glacsweb_link::ProbeRadioLink::new();
        let protocol_origin = Origin::new("protocol", self.station_label());
        for probe in probes.iter_mut() {
            if wd.expired(*now) {
                return true;
            }
            let budget = wd.cap(*now, self.config.controller.probe_budget);
            let protocol = self.config.controller.protocol;
            let session = self
                .fetch_sessions
                .entry(probe.id())
                .or_insert_with(|| FetchSession::new(probe.id(), protocol));
            self.rail.loads_mut().set_on(loads::PROBE_RADIO, true);
            let mut scope = Scope::new(*now, protocol_origin, self.obs.as_mut());
            let out = session.run_observed(probe, &link, loss, budget, &mut self.rng, &mut scope);
            let delivered = session.drain_delivered();
            self.advance(env, *now + out.elapsed);
            *now += out.elapsed;
            self.rail.loads_mut().set_on(loads::PROBE_RADIO, false);

            if !out.no_contact {
                report.probes_contacted += 1;
            }
            report.probe_readings += out.new_readings;
            report.probe_fetch_aborted |= out.aborted;

            if out.aborted {
                self.log.record(
                    *now,
                    TraceLevel::Error,
                    "probe",
                    format!(
                        "probe {}: individual fetch of {} readings failed",
                        probe.id(),
                        out.missing_after
                    ),
                );
            }
            if out.new_readings > 0 {
                // §VII priority extension: watch the delivered batches for
                // a conductivity rise above a running baseline (melt water
                // reaching the bed). The baseline only moves down, so a
                // gradual multi-day rise still triggers once it has grown
                // by the configured jump.
                let mean_cond = delivered.iter().map(|r| r.conductivity_us).sum::<f64>()
                    / delivered.len().max(1) as f64;
                let baseline = *self
                    .conductivity_baselines
                    .entry(probe.id())
                    .or_insert(mean_cond);
                if mean_cond < baseline {
                    self.conductivity_baselines.insert(probe.id(), mean_cond);
                } else if mean_cond - baseline
                    >= self.config.controller.priority_conductivity_jump_us
                    && !self.priority_event
                {
                    self.priority_event = true;
                    self.log.record(
                        *now,
                        TraceLevel::Warn,
                        "priority",
                        format!(
                            "probe {}: conductivity rise {baseline:.2} -> {mean_cond:.2} uS",
                            probe.id()
                        ),
                    );
                }
                // §VI lesson: a probe reappearing after months produces
                // over a megabyte of debug output.
                self.log.record(
                    *now,
                    TraceLevel::Debug,
                    "probe",
                    "x".repeat(out.new_readings * 300),
                );
                self.log.record(
                    *now,
                    TraceLevel::Info,
                    "probe",
                    format!("probe {}: {} new readings", probe.id(), out.new_readings),
                );
                let size = Bytes(delivered.len() as u64 * 32);
                let name = self.next_file_name("probes", "dat");
                self.persist(&name, size, *now);
                self.store.queue(
                    name,
                    FileKind::Probe,
                    size,
                    UploadItem::ProbeData(delivered),
                    *now,
                );
            }
        }
        false
    }

    fn step_gps_files(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        report: &mut WindowReport,
    ) -> bool {
        report.gps_file_stuck = self.dgps.stuck_file(wd.limit());
        let budget = wd.remaining(*now);
        // The dGPS unit is powered while its card is read over RS-232.
        self.rail.loads_mut().set_on(loads::GPS, true);
        let (files, spent) = self.dgps.transfer_files(budget);
        self.advance(env, *now + spent);
        *now += spent;
        self.rail.loads_mut().set_on(loads::GPS, false);
        report.gps_files_fetched = files.len();
        for f in files {
            let name = self.next_file_name("gps", "obs");
            self.persist(&name, f.size, *now);
            self.store.queue(
                name,
                FileKind::Gps,
                f.size,
                UploadItem::GpsFile {
                    taken_at: f.taken_at,
                    observed_position_m: f.observed_position_m,
                    size: f.size,
                },
                *now,
            );
        }
        wd.expired(*now)
    }

    fn step_package(&mut self, now: SimTime, voltage_samples: u64) {
        // Sensor/housekeeping bundle.
        if self.sensor_batch > 0 || voltage_samples > 0 {
            let samples = self.sensor_batch + voltage_samples;
            let size = Bytes(samples * 24);
            let name = self.next_file_name("sensors", "dat");
            self.persist(&name, size, now);
            self.store.queue(
                name,
                FileKind::Sensor,
                size,
                UploadItem::SensorData { samples, size },
                now,
            );
            self.sensor_batch = 0;
        }
        // Daily log (carries yesterday's special-command output — the §VI
        // 24-hour delay is structural).
        let size = self.log.rotate();
        let results = std::mem::take(&mut self.pending_special_results);
        let name = self.next_file_name("log", "log");
        self.persist(&name, size.max(Bytes(256)), now);
        self.store.queue(
            name,
            FileKind::Log,
            size.max(Bytes(256)),
            UploadItem::SystemLog {
                size,
                special_results: results,
            },
            now,
        );
    }

    fn step_connect(&mut self, env: &mut Environment, now: &mut SimTime, wd: &Watchdog) -> bool {
        // §I: the wetter the summer environment, the flakier the GPRS —
        // and a fault-injected degradation multiplies on top.
        let weather = (1.0 + env.melt_index()) * self.gprs_degradation;
        let policy = self.config.controller.attach_retry;
        let retry_origin = Origin::new("retry", self.station_label());
        let wan_origin = Origin::new("gprs", self.station_label());
        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                // Back off (modem powered down) before retrying, never
                // past the watchdog deadline.
                let chosen = policy.backoff_jittered_observed(
                    attempt,
                    &mut self.rng,
                    *now,
                    retry_origin,
                    "gprs_attach",
                    self.obs.as_mut(),
                );
                let wait = wd.cap(*now, chosen);
                if wait > SimDuration::ZERO {
                    self.advance(env, *now + wait);
                    *now += wait;
                }
            }
            if wd.expired(*now) {
                return false;
            }
            self.rail.loads_mut().set_on(self.wan_load, true);
            match self.wan.connect_observed(
                weather,
                &mut self.rng,
                *now,
                wan_origin,
                self.obs.as_mut(),
            ) {
                Ok(setup) => {
                    self.advance(env, *now + setup);
                    *now += setup;
                    return true;
                }
                Err(wasted) => {
                    self.advance(env, *now + wasted);
                    *now += wasted;
                    self.rail.loads_mut().set_on(self.wan_load, false);
                    self.log
                        .record(*now, TraceLevel::Warn, self.wan.label(), "attach failed");
                }
            }
        }
        false
    }

    /// Re-attaches if a drop killed the session; returns whether connected.
    fn ensure_connected(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
    ) -> bool {
        if self.wan.is_connected() {
            return true;
        }
        self.step_connect(env, now, wd)
    }

    /// Probes the server end-to-end before a control fetch, backing off
    /// and retrying while it is unreachable (a fault-injected outage).
    /// Waits are capped by the watchdog; a reachable server costs no
    /// time and no randomness. Returns `true` once the server answers.
    fn server_fetch_ready(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        uplink: &dyn Uplink,
    ) -> bool {
        let policy = self.config.controller.fetch_retry;
        let retry_origin = Origin::new("retry", self.station_label());
        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                let chosen = policy.backoff_jittered_observed(
                    attempt,
                    &mut self.rng,
                    *now,
                    retry_origin,
                    "server_fetch",
                    self.obs.as_mut(),
                );
                let wait = wd.cap(*now, chosen);
                if wait > SimDuration::ZERO {
                    self.advance(env, *now + wait);
                    *now += wait;
                }
            }
            if wd.expired(*now) {
                return false;
            }
            if uplink.is_reachable() {
                return true;
            }
            self.log.record(
                *now,
                TraceLevel::Warn,
                "server",
                "server unreachable; backing off",
            );
        }
        false
    }

    fn step_upload(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        uplink: &mut dyn Uplink,
        report: &mut WindowReport,
    ) -> bool {
        if self.stuck_transfer {
            // §VI: the transfer hangs and never completes; only the
            // watchdog's forced power-off ends the window.
            let stall = wd.remaining(*now);
            self.advance(env, *now + stall);
            *now += stall;
            self.log.record(
                *now,
                TraceLevel::Error,
                "upload",
                "transfer hung; waiting on watchdog",
            );
            return true;
        }
        loop {
            if wd.expired(*now) {
                return true;
            }
            if !self.ensure_connected(env, now, wd) {
                return wd.expired(*now);
            }
            let budget = wd.remaining(*now);
            let r = self.store.upload(
                self.config.id,
                self.wan.as_mut(),
                uplink,
                &mut self.cost,
                budget,
                &mut self.rng,
            );
            self.advance(env, *now + r.elapsed);
            *now += r.elapsed;
            let wan_origin = Origin::new("gprs", self.station_label());
            let mut scope = Scope::new(*now, wan_origin, self.obs.as_mut());
            scope.counter("upload_files", r.files_completed as u64);
            scope.counter("upload_bytes", r.bytes_sent.value());
            scope.counter("upload_session_drops", u64::from(r.session_drops));
            report.upload.files_completed += r.files_completed;
            report.upload.bytes_sent += r.bytes_sent;
            report.upload.elapsed += r.elapsed;
            report.upload.session_drops += r.session_drops;
            report.upload.drained = r.drained;
            if r.drained {
                return false;
            }
            if r.session_drops == 0 {
                // Budget exhausted (watchdog will catch it next loop).
                return wd.expired(*now);
            }
            // Session dropped: §II — stay powered briefly and retry.
        }
    }

    fn step_special(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        uplink: &mut dyn Uplink,
        report: &mut WindowReport,
    ) -> bool {
        if !self.ensure_connected(env, now, wd) {
            return wd.expired(*now);
        }
        self.advance(env, *now + CONTROL_EXCHANGE);
        *now += CONTROL_EXCHANGE;
        let Some(cmd) = uplink.fetch_special(self.config.id) else {
            return wd.expired(*now);
        };
        // Download the script.
        let dl = self.wan.rate().transfer_time(cmd.size);
        if wd.cap(*now, dl) < dl {
            return true; // watchdog starves the special (the §VI hazard)
        }
        self.advance(env, *now + dl);
        *now += dl;
        // Execute it (bounded by the watchdog).
        let run = wd.cap(*now, cmd.runtime);
        self.advance(env, *now + run);
        *now += run;
        if run < cmd.runtime {
            self.log.record(
                *now,
                TraceLevel::Error,
                "special",
                "watchdog cut special execution",
            );
            return true;
        }
        // Output goes into the normal log (§VI) → ships tomorrow.
        self.log.record(
            *now,
            TraceLevel::Info,
            "special",
            "y".repeat(usize::try_from(cmd.output_size.value()).unwrap_or(usize::MAX)),
        );
        self.pending_special_results.push(SpecialResult {
            id: cmd.id,
            executed_at: *now,
            output_size: cmd.output_size,
        });
        report.special_executed = Some(cmd.id);
        wd.expired(*now)
    }

    fn step_update(
        &mut self,
        env: &mut Environment,
        now: &mut SimTime,
        wd: &Watchdog,
        uplink: &mut dyn Uplink,
        report: &mut WindowReport,
    ) -> bool {
        if !self.ensure_connected(env, now, wd) {
            return wd.expired(*now);
        }
        if !self.server_fetch_ready(env, now, wd, &*uplink) {
            return wd.expired(*now);
        }
        self.advance(env, *now + CONTROL_EXCHANGE);
        *now += CONTROL_EXCHANGE;
        let Some(update) = uplink.fetch_update(self.config.id) else {
            return wd.expired(*now);
        };
        let dl = self
            .wan
            .rate()
            .transfer_time(Bytes(update.payload.len() as u64));
        if wd.cap(*now, dl) < dl {
            return true;
        }
        self.advance(env, *now + dl);
        *now += dl;
        // In-flight corruption occasionally garbles the payload.
        let mut received = update.payload.clone();
        if !received.is_empty() && self.rng.bernoulli(0.03) {
            let idx = usize::try_from(self.rng.below(received.len() as u64)).unwrap_or(0);
            if let Some(byte) = received.get_mut(idx) {
                *byte ^= 0xFF;
            }
        }
        let digest = md5(&received);
        let hex = to_hex(&digest);
        // Report the computed checksum immediately by HTTP GET (§VI).
        uplink.report_checksum(self.config.id, &update.name, &hex);
        if digest == update.expected_md5 {
            report.update_applied = Some(update.name.clone());
            self.log.record(
                *now,
                TraceLevel::Info,
                "update",
                format!("{} verified and installed", update.name),
            );
        } else {
            report.update_rejected = Some(update.name.clone());
            self.log.record(
                *now,
                TraceLevel::Error,
                "update",
                format!("{} checksum mismatch; keeping old version", update.name),
            );
        }
        wd.expired(*now)
    }

    fn write_schedule(&mut self, state: PowerState, now: SimTime) {
        let prev = self.current_state();
        self.msp.write_schedule(Schedule::standard(state));
        let mut scope = Scope::new(now, self.origin(), self.obs.as_mut());
        scope.counter("schedule_writes", 1);
        if scope.enabled() && prev != state {
            let event = scope
                .make("state_transition")
                .with("from", u64::from(prev.level()))
                .with("to", u64::from(state.level()));
            scope.emit(event);
        }
    }

    fn next_file_name(&mut self, dir: &str, ext: &str) -> String {
        self.file_seq += 1;
        format!("{dir}/{:06}.{ext}", self.file_seq)
    }

    fn finalize(
        &mut self,
        env: &mut Environment,
        mut report: WindowReport,
        now: SimTime,
        cut: bool,
    ) -> WindowReport {
        report.cut_by_watchdog = cut;
        if cut {
            self.windows_cut += 1;
            let mut scope = Scope::new(now, self.origin(), self.obs.as_mut());
            scope.counter("watchdog_cuts", 1);
            if scope.enabled() {
                let event = scope.make("watchdog_cut");
                scope.emit(event);
            }
            self.log.record(
                now,
                TraceLevel::Error,
                "watchdog",
                "2-hour limit reached; forcing power-off",
            );
        }
        report.closed = now;
        if self.wan.is_connected() {
            self.wan.disconnect();
        }
        // The MSP430 cuts every peripheral rail.
        let loads = self.rail.loads_mut();
        loads.set_on(loads::GUMSTIX, false);
        loads.set_on(loads::GPS, false);
        loads.set_on(loads::GPRS, false);
        loads.set_on(loads::RADIO_MODEM, false);
        loads.set_on(loads::PROBE_RADIO, false);
        self.gumstix.power_off(now);
        let _ = env;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_env::EnvConfig;
    use glacsweb_sim::CivilDate;

    use crate::uplink::{CodeUpdate, SpecialCommand};

    /// A scriptable in-memory server for station tests.
    #[derive(Default)]
    struct FakeServer {
        states: Vec<(StationId, CivilDate, PowerState)>,
        items: Vec<UploadItem>,
        override_state: Option<PowerState>,
        special: Option<SpecialCommand>,
        update: Option<CodeUpdate>,
        checksums: Vec<(String, String)>,
    }

    impl Uplink for FakeServer {
        fn upload_power_state(&mut self, from: StationId, date: CivilDate, state: PowerState) {
            self.states.push((from, date, state));
        }
        fn upload_item(&mut self, _from: StationId, item: UploadItem) {
            self.items.push(item);
        }
        fn fetch_override(&mut self, _for: StationId) -> Option<PowerState> {
            self.override_state
        }
        fn fetch_special(&mut self, _for: StationId) -> Option<SpecialCommand> {
            self.special.take()
        }
        fn fetch_update(&mut self, _for: StationId) -> Option<CodeUpdate> {
            self.update.take()
        }
        fn report_checksum(&mut self, _from: StationId, file: &str, md5_hex: &str) {
            self.checksums.push((file.to_string(), md5_hex.to_string()));
        }
    }

    fn lab_station(start: SimTime) -> (Environment, Station) {
        let env = Environment::new(EnvConfig::lab(), 17);
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig::ideal();
        config.controller = ControllerConfig::lessons_learnt();
        let station = Station::new(config, start, 4242);
        (env, station)
    }

    fn run_day(
        env: &mut Environment,
        station: &mut Station,
        probes: &mut [ProbeFirmware],
        server: &mut FakeServer,
        day_start: SimTime,
    ) -> Option<WindowReport> {
        // Half-hourly samples up to the midday window.
        let mut t = day_start;
        for _ in 0..24 {
            t += SimDuration::from_mins(30);
            station.on_sample(env, t);
        }
        let report =
            station.on_window(env, day_start + SimDuration::from_hours(12), probes, server);
        // Rest of the day's samples.
        let mut t = day_start + SimDuration::from_hours(12) + SimDuration::from_mins(30);
        while t < day_start + SimDuration::from_days(1) {
            station.on_sample(env, t);
            t += SimDuration::from_mins(30);
        }
        report
    }

    #[test]
    fn healthy_day_runs_the_full_flowchart() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut server = FakeServer::default();
        let report = run_day(&mut env, &mut station, &mut [], &mut server, start)
            .expect("powered station runs");
        assert!(!report.cut_by_watchdog);
        assert!(!report.died_mid_window);
        assert_eq!(report.local_state, PowerState::S3, "full battery in June");
        assert!(report.gprs_connected);
        assert!(report.state_uploaded);
        assert!(report.upload.drained, "small first-day payload fits");
        assert_eq!(report.applied_state, PowerState::S3);
        assert_eq!(server.states.len(), 1);
        assert!(!server.items.is_empty(), "sensor + log files arrived");
        assert_eq!(station.stats().0, 1);
    }

    #[test]
    fn recording_telemetry_does_not_change_behaviour() {
        let start = SimTime::from_ymd_hms(2009, 2, 1, 0, 0, 0);
        let mut rng = SimRng::seed_from(5);
        let mut probe_plain = ProbeFirmware::deploy(21, start, &mut rng);
        let mut probe_obs = probe_plain.clone();
        let (mut env_plain, mut plain) = lab_station(start);
        let (mut env_obs, mut observed) = lab_station(start);
        observed.set_recorder(Box::new(glacsweb_obs::MemoryRecorder::default()));
        let mut t = start;
        for _ in 0..200 {
            t += SimDuration::from_hours(1);
            env_plain.advance_to(t);
            env_obs.advance_to(t);
            let mut sample_rng = SimRng::seed_from(99);
            probe_plain.sample(&env_plain, t, &mut sample_rng);
            let mut sample_rng = SimRng::seed_from(99);
            probe_obs.sample(&env_obs, t, &mut sample_rng);
        }
        let window_at = t.next_time_of_day(12, 0, 0);
        let mut server_plain = FakeServer::default();
        let mut server_obs = FakeServer::default();
        let report_plain = plain
            .on_window(
                &mut env_plain,
                window_at,
                std::slice::from_mut(&mut probe_plain),
                &mut server_plain,
            )
            .expect("runs");
        let report_obs = observed
            .on_window(
                &mut env_obs,
                window_at,
                std::slice::from_mut(&mut probe_obs),
                &mut server_obs,
            )
            .expect("runs");
        assert_eq!(
            report_plain, report_obs,
            "telemetry must not consume randomness or change control flow"
        );
        assert!(
            plain.take_telemetry().is_none(),
            "null recorder keeps nothing"
        );
        let telemetry = observed.take_telemetry().expect("memory recorder");
        let station_origin = Origin::new("station", "base");
        assert_eq!(telemetry.counter_value(station_origin, "windows_run"), 1);
        assert_eq!(
            telemetry.counter_value(station_origin, "schedule_writes"),
            1
        );
        assert_eq!(
            telemetry.counter_value(Origin::new("protocol", "base"), "fetch_sessions"),
            1
        );
        assert!(
            telemetry.counter_value(Origin::new("gprs", "base"), "attach_attempts") >= 1,
            "the window attached at least once"
        );
    }

    #[test]
    fn gps_slots_record_readings_in_state3() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        // Fire the twelve state-3 slots for one day.
        let sched = station.effective_schedule();
        let mut t = start;
        let mut slots = 0;
        while let Some(next) = sched.next_gps_reading(t) {
            if !next.same_day(start) {
                break;
            }
            station.on_gps_slot(&mut env, next);
            slots += 1;
            t = next;
        }
        assert_eq!(slots, 12);
        assert_eq!(station.dgps().readings_taken(), 12);
        assert_eq!(station.dgps().pending_files().len(), 12);
        // The window then drains them over RS-232.
        let mut server = FakeServer::default();
        let report = station
            .on_window(
                &mut env,
                start.next_time_of_day(12, 0, 0),
                &mut [],
                &mut server,
            )
            .expect("runs");
        assert_eq!(report.gps_files_fetched, 12);
    }

    #[test]
    fn probe_data_flows_to_the_server() {
        let start = SimTime::from_ymd_hms(2009, 2, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut rng = SimRng::seed_from(5);
        let mut probe = ProbeFirmware::deploy(21, start, &mut rng);
        let mut t = start;
        for _ in 0..200 {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            probe.sample(&env, t, &mut rng);
        }
        let mut server = FakeServer::default();
        let window_at = t.next_time_of_day(12, 0, 0);
        let report = station
            .on_window(
                &mut env,
                window_at,
                std::slice::from_mut(&mut probe),
                &mut server,
            )
            .expect("runs");
        assert_eq!(report.probes_contacted, 1);
        assert_eq!(report.probe_readings, 200);
        let probe_items: usize = server
            .items
            .iter()
            .filter(|i| matches!(i, UploadItem::ProbeData(_)))
            .count();
        assert_eq!(probe_items, 1);
        assert_eq!(probe.stored_readings(), 0, "confirmed and freed");
    }

    #[test]
    fn override_holds_the_station_down() {
        // Fig 5: battery good for state 3 but held in state 2 by the
        // remote override.
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut server = FakeServer {
            override_state: Some(PowerState::S2),
            ..FakeServer::default()
        };
        let report = run_day(&mut env, &mut station, &mut [], &mut server, start).expect("runs");
        assert_eq!(report.local_state, PowerState::S3);
        assert_eq!(report.override_state, Some(PowerState::S2));
        assert_eq!(report.applied_state, PowerState::S2);
        assert_eq!(
            station.current_state(),
            PowerState::S2,
            "schedule rewritten"
        );
    }

    #[test]
    fn update_with_good_checksum_is_applied_and_reported() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let payload = b"print('new control code')".to_vec();
        let digest = md5(&payload);
        let mut server = FakeServer {
            update: Some(CodeUpdate {
                name: "control.py".into(),
                payload,
                expected_md5: digest,
            }),
            ..FakeServer::default()
        };
        // Try a few days: the 3 % in-flight corruption may hit once.
        let mut applied = false;
        for d in 0..5 {
            let day = start + SimDuration::from_days(d);
            if server.update.is_none() && !applied {
                server.update = Some(CodeUpdate {
                    name: "control.py".into(),
                    payload: b"print('new control code')".to_vec(),
                    expected_md5: digest,
                });
            }
            let report = run_day(&mut env, &mut station, &mut [], &mut server, day).expect("runs");
            if report.update_applied.is_some() {
                applied = true;
                break;
            }
        }
        assert!(applied, "update applies within a few days");
        assert!(!server.checksums.is_empty(), "checksum reported via GET");
        assert_eq!(server.checksums[0].1, crate::md5::to_hex(&digest));
    }

    #[test]
    fn corrupted_update_is_rejected() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let payload = b"good code".to_vec();
        let mut server = FakeServer {
            update: Some(CodeUpdate {
                name: "control.py".into(),
                payload,
                // Server advertises a hash that cannot match.
                expected_md5: [0u8; 16],
            }),
            ..FakeServer::default()
        };
        let report = run_day(&mut env, &mut station, &mut [], &mut server, start).expect("runs");
        assert_eq!(report.update_rejected.as_deref(), Some("control.py"));
        assert_eq!(report.update_applied, None);
        assert!(!server.checksums.is_empty(), "mismatch still reported");
    }

    #[test]
    fn special_command_runs_and_results_ship_next_day() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut server = FakeServer {
            special: Some(SpecialCommand {
                id: 7,
                size: Bytes::from_kib(2),
                runtime: SimDuration::from_mins(1),
                output_size: Bytes(500),
            }),
            ..FakeServer::default()
        };
        let day1 = run_day(&mut env, &mut station, &mut [], &mut server, start).expect("runs");
        assert_eq!(day1.special_executed, Some(7));
        // The §VI lesson: the output only reaches Southampton in the NEXT
        // day's log upload.
        let results_day1: usize = server
            .items
            .iter()
            .filter_map(|i| match i {
                UploadItem::SystemLog {
                    special_results, ..
                } => Some(special_results.len()),
                _ => None,
            })
            .sum();
        assert_eq!(results_day1, 0, "no results on day one");
        run_day(
            &mut env,
            &mut station,
            &mut [],
            &mut server,
            start + SimDuration::from_days(1),
        )
        .expect("runs");
        let results_total: usize = server
            .items
            .iter()
            .filter_map(|i| match i {
                UploadItem::SystemLog {
                    special_results, ..
                } => Some(special_results.len()),
                _ => None,
            })
            .sum();
        assert_eq!(results_total, 1, "results arrive with day two's log");
    }

    #[test]
    fn dead_battery_triggers_power_loss_and_recovery() {
        let start = SimTime::from_ymd_hms(2009, 1, 1, 0, 0, 0);
        let env_cfg = EnvConfig::lab();
        let mut env = Environment::new(env_cfg, 17);
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig::ideal();
        // Tiny, nearly flat battery and no chargers: dies quickly…
        config.battery = AmpHours(1.0);
        config.initial_soc = 0.2;
        config.solar = None;
        config.wind = None;
        let mut station = Station::new(config, start, 9);
        // Leave the Gumstix-scale GPS load on via gps slots: simply advance
        // with the MSP on; self-discharge plus load kills a 0.2-SoC 1-Ah
        // bank within days.
        station.rail.loads_mut().set_on(loads::GPS, true);
        let mut t = start;
        while station.is_powered() && t < start + SimDuration::from_days(10) {
            t += SimDuration::from_hours(1);
            station.advance(&mut env, t);
        }
        assert!(!station.is_powered(), "battery exhausted");
        assert_eq!(station.power_losses(), 1);
        assert_eq!(station.msp.schedule(), None, "RAM schedule lost");

        // Re-fit chargers by swapping in a fresh rail? No — model external
        // recovery directly: the real systems recover because chargers
        // refill the bank. Force-feed the battery through the rail by
        // attaching a mains charger via a new station is overkill; instead
        // verify the recovery path at the next window after the supply
        // returns.
        station.rail.loads_mut().set_on(loads::GPS, false);
        // Manually recharge (scenario hook).
        station.rail = {
            let mut rail = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.9), t);
            {
                let l = rail.loads_mut();
                l.add(loads::MSP430, glacsweb_hw::table1::MSP430_POWER);
                l.add(loads::GUMSTIX, glacsweb_hw::table1::GUMSTIX_POWER);
                l.add(loads::GPS, glacsweb_hw::table1::GPS_POWER);
                l.add(loads::GPRS, glacsweb_hw::table1::GPRS_POWER);
                l.add(loads::RADIO_MODEM, glacsweb_hw::table1::RADIO_MODEM_POWER);
                l.add(loads::PROBE_RADIO, Watts(0.5));
            }
            rail
        };
        let wake = t + SimDuration::from_hours(2);
        station.advance(&mut env, wake);
        assert!(station.is_powered(), "supply restored");
        // The RTC now reads a 1970-epoch time: suspect.
        let mut server = FakeServer::default();
        let report = station
            .on_window(&mut env, wake, &mut [], &mut server)
            .expect("powered again");
        assert!(report.recovered, "GPS time fix re-synced the clock");
        assert_eq!(
            station.current_state(),
            PowerState::S0,
            "schedule rebuilt in state 0 (§IV)"
        );
        assert_eq!(station.stats().2, 1, "one recovery recorded");
    }

    #[test]
    fn watchdog_cuts_a_backlogged_window() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        // 25 days of state-3 dGPS backlog (> the ≈21-day bound).
        let mut rng = SimRng::seed_from(31);
        for d in 0..25u64 {
            for r in 0..12u64 {
                let t = start + SimDuration::from_days(d) + SimDuration::from_hours(2 * r);
                station.dgps.take_reading(t, 0.0, &mut rng);
            }
        }
        let mut server = FakeServer::default();
        let window_at = start + SimDuration::from_days(25) + SimDuration::from_hours(12);
        let report = station
            .on_window(&mut env, window_at, &mut [], &mut server)
            .expect("runs");
        // RS-232 transfer of ~300 files plus the upload cannot fit: the
        // watchdog fires.
        assert!(report.cut_by_watchdog);
        assert!(report.gps_files_fetched > 0, "partial progress");
        assert!(
            station.dgps().pending_files().len() < 300,
            "file-by-file progress was made"
        );
        assert_eq!(station.stats().1, 1, "cut counted");
        let d = report.duration();
        assert!(
            d >= SimDuration::from_hours(2)
                && d < SimDuration::from_hours(2) + SimDuration::from_mins(5),
            "window bounded at ~2 h: {d}"
        );
    }

    #[test]
    fn state_zero_day_skips_comms() {
        let start = SimTime::from_ymd_hms(2009, 1, 1, 0, 0, 0);
        let mut env = Environment::new(EnvConfig::lab(), 17);
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig::ideal();
        config.initial_soc = 0.02; // deeply discharged → S0 daily average
        config.solar = None;
        config.wind = None;
        let mut station = Station::new(config, start, 4242);
        let mut server = FakeServer::default();
        let report = run_day(&mut env, &mut station, &mut [], &mut server, start)
            .expect("still powered, barely");
        assert_eq!(report.local_state, PowerState::S0);
        assert!(!report.gprs_connected, "state 0 does no GPRS");
        assert!(!report.state_uploaded);
        assert!(server.states.is_empty());
        assert_eq!(station.current_state(), PowerState::S0);
    }

    #[test]
    fn reference_station_takes_fixed_position_readings() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut env = Environment::new(EnvConfig::vatnajokull(), 17);
        let mut config = StationConfig::reference_2008();
        config.gprs = GprsConfig::ideal();
        let mut station = Station::new(config, start, 7);
        let slot = start + SimDuration::from_mins(30);
        station.on_gps_slot(&mut env, slot);
        let file = &station.dgps().pending_files()[0];
        assert!(
            file.observed_position_m.abs() < 10.0,
            "reference sits still: {}",
            file.observed_position_m
        );
    }

    #[test]
    fn cf_card_mirrors_the_upload_queue() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, _) = lab_station(start);
        // Break the uplink so nothing uploads: files must pile up on the
        // card exactly as in the queue.
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig {
            setup_failure_p: 1.0,
            ..GprsConfig::field()
        };
        let mut station = Station::new(config, start, 4242);
        let mut server = FakeServer::default();
        for d in 0..3 {
            run_day(
                &mut env,
                &mut station,
                &mut [],
                &mut server,
                start + SimDuration::from_days(d),
            );
        }
        assert_eq!(
            station.card().list().len(),
            station.store().backlog_files(),
            "card and queue agree"
        );
        assert!(station.card().used().value() > 0);
        let _ = station;
    }

    #[test]
    fn cf_card_frees_files_after_upload() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut server = FakeServer::default();
        let report = run_day(&mut env, &mut station, &mut [], &mut server, start).expect("runs");
        assert!(report.upload.drained);
        assert_eq!(
            station.card().list().len(),
            0,
            "everything uploaded and freed"
        );
    }

    #[test]
    fn card_corruption_is_recovered_at_the_next_window() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, _) = lab_station(start);
        // Break the uplink so the card carries files.
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig {
            setup_failure_p: 1.0,
            ..GprsConfig::field()
        };
        config.controller = ControllerConfig::lessons_learnt();
        let mut station = Station::new(config, start, 4242);
        let mut server = FakeServer::default();
        for d in 0..4 {
            run_day(
                &mut env,
                &mut station,
                &mut [],
                &mut server,
                start + SimDuration::from_days(d),
            );
        }
        let files_before = station.card().list().len();
        assert!(files_before > 0);
        station.inject_card_corruption();
        assert!(station.card().is_corrupted());
        let report = run_day(
            &mut env,
            &mut station,
            &mut [],
            &mut server,
            start + SimDuration::from_days(4),
        )
        .expect("runs");
        let (kept, lost) = report.card_recovered.expect("recovery ran");
        assert_eq!(kept + lost, files_before, "every file accounted for");
        assert!(!station.card().is_corrupted());
        assert_eq!(station.card().corruption_events(), 1);
    }

    #[test]
    fn priority_event_forces_a_state0_upload() {
        // A flat-battery station in state 0 with the extension enabled.
        let start = SimTime::from_ymd_hms(2009, 2, 1, 0, 0, 0);
        let mut env = Environment::new(EnvConfig::lab(), 17);
        let mut config = StationConfig::base_2008();
        config.gprs = GprsConfig::ideal();
        config.controller = ControllerConfig::with_priority_data();
        config.solar = None;
        config.wind = None;
        config.initial_soc = 0.11; // state 0
        let mut station = Station::new(config, start, 4242);
        let mut rng = SimRng::seed_from(5);
        let mut probe = ProbeFirmware::deploy(21, start, &mut rng);
        let mut server = FakeServer::default();

        // Day 1: baseline fetch in state 0 — no upload.
        let mut t = start;
        for _ in 0..20 {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            probe.sample(&env, t, &mut rng);
        }
        let r1 = station
            .on_window(
                &mut env,
                start + SimDuration::from_hours(12),
                std::slice::from_mut(&mut probe),
                &mut server,
            )
            .expect("runs");
        assert_eq!(r1.local_state, PowerState::S0);
        assert!(!r1.priority_forced, "no event yet");
        assert!(server.items.is_empty());

        // Inject a conductivity surge by killing this probe and deploying
        // a hotter one? Simpler: sample many more readings after pushing
        // the environment's melt up is slow in a lab env — instead drive
        // the detector directly through a second probe whose personality
        // reads hot is still indirect. Use the baseline-reset property:
        // feed the same probe but with the environment's conductivity
        // raised via a long advance into summer.
        let jump_day = SimTime::from_ymd_hms(2009, 6, 20, 0, 0, 0);
        let mut t = jump_day;
        env.advance_to(t);
        for _ in 0..48 {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            probe.sample(&env, t, &mut rng);
        }
        let r2 = station
            .on_window(
                &mut env,
                t.next_time_of_day(12, 0, 0),
                std::slice::from_mut(&mut probe),
                &mut server,
            )
            .expect("runs");
        assert_eq!(r2.local_state, PowerState::S0, "battery still flat");
        assert!(r2.priority_forced, "summer conductivity jump forces comms");
        assert!(r2.state_uploaded);
        assert!(!server.items.is_empty(), "the data reached Southampton");
    }

    #[test]
    fn status_snapshot_reflects_the_station() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        let mut server = FakeServer::default();
        run_day(&mut env, &mut station, &mut [], &mut server, start);
        let status = station.status(&env);
        assert_eq!(status.id, StationId::Base);
        assert!((0.0..=1.0).contains(&status.soc));
        assert!(status.voltage.value() > 11.0);
        assert_eq!(status.windows.0, 1);
        assert_eq!(status.backlog, Bytes::ZERO, "ideal link drained");
        // Snapshot serialises for the housekeeping stream.
        let json = serde_json::to_string(&status).expect("serialize");
        let back: StationStatus = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.state, status.state);
    }

    #[test]
    fn rtc_drift_accumulates_and_gps_readings_fix_it() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let (mut env, mut station) = lab_station(start);
        assert_eq!(station.clock_error_secs(), 0.0);
        // Thirty days with no GPS activity: the crystal drifts.
        station.advance(&mut env, start + SimDuration::from_days(30));
        let drifted = station.clock_error_secs();
        assert!((drifted - 120.0).abs() < 1.0, "4 s/day × 30 d: {drifted}");
        // One dGPS recording doubles as a time fix.
        let slot = start + SimDuration::from_days(30) + SimDuration::from_mins(30);
        station.on_gps_slot(&mut env, slot);
        assert_eq!(station.clock_error_secs(), 0.0, "GPS time zeroes the error");
        // And the reading's timestamp reflects the pre-fix skew.
        let file = station
            .dgps()
            .pending_files()
            .last()
            .expect("reading taken");
        let offset = slot.saturating_since(file.taken_at).as_secs();
        assert!(
            (115..=125).contains(&offset),
            "slot fired ~2 min early: {offset}s"
        );
    }

    #[test]
    #[should_panic(expected = "invalid station config")]
    fn rejects_invalid_config() {
        let mut config = StationConfig::base_2008();
        config.initial_soc = 2.0;
        let _ = Station::new(config, SimTime::EPOCH, 0);
    }
}
