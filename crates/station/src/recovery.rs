//! §IV — automatic schedule resetting after total power loss.
//!
//! "The systems have external power inputs meaning that their batteries
//! can recover from total exhaustion. However, this has to be detected
//! because the schedule for the microprocessor is stored in RAM so will
//! need to be re-written; a more fundamental issue is that the real time
//! clock will have reset to 0 which is 01/01/1970 00:00."
//!
//! Detection: the stored `last_run` timestamp survives (flash); a clock
//! reading *before* it means the RTC cannot be trusted. Recovery: take a
//! GPS time fix; on failure "the system will sleep for a day and try
//! again"; optionally fall back to NTP over GPRS (the paper's suggested
//! future extension). Once the clock is fixed, the schedule is rebuilt in
//! state 0.

use glacsweb_sim::{ConfigError, SimDuration};
use serde::{Deserialize, Serialize};

/// Recovery tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Probability a GPS time-fix attempt succeeds (sky view, constellation).
    pub gps_fix_success_p: f64,
    /// GPS-on time consumed by one fix attempt.
    pub gps_fix_duration: SimDuration,
    /// Enable the NTP-over-GPRS fallback (§IV: "in the future this could
    /// also be extended to fall back to getting the time using the GPRS
    /// link and network time protocol").
    pub ntp_fallback: bool,
    /// Probability the NTP fallback succeeds when attempted.
    pub ntp_success_p: f64,
}

impl RecoveryConfig {
    /// The system as deployed: GPS fix only, no NTP fallback.
    pub fn deployed_2008() -> Self {
        RecoveryConfig {
            gps_fix_success_p: 0.85,
            gps_fix_duration: SimDuration::from_mins(10),
            ntp_fallback: false,
            ntp_success_p: 0.9,
        }
    }

    /// With the proposed NTP extension enabled.
    pub fn with_ntp_fallback() -> Self {
        RecoveryConfig {
            ntp_fallback: true,
            ..RecoveryConfig::deployed_2008()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, p) in [
            ("gps_fix_success_p", self.gps_fix_success_p),
            ("ntp_success_p", self.ntp_success_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(
                    "recovery",
                    name,
                    format!("{p} not a probability"),
                ));
            }
        }
        if self.gps_fix_duration.as_secs() == 0 {
            return Err(ConfigError::new(
                "recovery",
                "gps_fix_duration",
                "gps fix duration must be non-zero",
            ));
        }
        Ok(())
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::deployed_2008()
    }
}

/// How one wake-time recovery check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// Clock and schedule were healthy; no recovery needed.
    NotNeeded,
    /// Clock re-set from a GPS fix; schedule rebuilt in state 0.
    RecoveredViaGps,
    /// Clock re-set via the NTP fallback; schedule rebuilt in state 0.
    RecoveredViaNtp,
    /// All time sources failed; sleeping a day before retrying (§IV).
    SleepAndRetry,
}

impl RecoveryOutcome {
    /// `true` if the station ended the check with a trusted clock.
    pub fn clock_trusted(self) -> bool {
        !matches!(self, RecoveryOutcome::SleepAndRetry)
    }

    /// `true` if a recovery action (not merely a check) took place.
    pub fn recovered(self) -> bool {
        matches!(
            self,
            RecoveryOutcome::RecoveredViaGps | RecoveryOutcome::RecoveredViaNtp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_config_is_valid_and_gps_only() {
        let c = RecoveryConfig::deployed_2008();
        c.validate().expect("valid");
        assert!(!c.ntp_fallback);
    }

    #[test]
    fn ntp_variant_enables_fallback() {
        let c = RecoveryConfig::with_ntp_fallback();
        assert!(c.ntp_fallback);
        c.validate().expect("valid");
    }

    #[test]
    fn outcome_predicates() {
        assert!(RecoveryOutcome::NotNeeded.clock_trusted());
        assert!(!RecoveryOutcome::NotNeeded.recovered());
        assert!(RecoveryOutcome::RecoveredViaGps.recovered());
        assert!(RecoveryOutcome::RecoveredViaNtp.clock_trusted());
        assert!(!RecoveryOutcome::SleepAndRetry.clock_trusted());
        assert!(!RecoveryOutcome::SleepAndRetry.recovered());
    }

    #[test]
    fn validation_catches_bad_probability() {
        let mut c = RecoveryConfig::deployed_2008();
        c.gps_fix_success_p = 1.5;
        assert!(c.validate().is_err());
        let mut c = RecoveryConfig::deployed_2008();
        c.gps_fix_duration = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }
}
