//! The wake schedule held in MSP430 RAM.

use glacsweb_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::power_state::PowerState;

/// The MSP430's schedule: when to sample the battery, when to trigger
/// dGPS readings, and when to wake the Gumstix for the daily window.
///
/// Stored in volatile RAM — total power loss destroys it, which is why
/// [`recovery`](crate::recovery) rebuilds a default schedule in state 0
/// after an exhaustion event (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The operating state this schedule implements.
    pub state: PowerState,
    /// Hour (UTC) of the daily communications window: "daily, at midday
    /// UTC" (§I).
    pub window_hour_utc: u32,
    /// Battery-voltage sampling interval: "every thirty minutes" (§III).
    pub sample_interval: SimDuration,
}

impl Schedule {
    /// The standard schedule for the given state: midday window,
    /// half-hourly sampling.
    pub fn standard(state: PowerState) -> Self {
        Schedule {
            state,
            window_hour_utc: 12,
            sample_interval: SimDuration::from_mins(30),
        }
    }

    /// The post-recovery default: state 0 (§IV: "the system will set the
    /// schedule to state 0 … and will then proceed as normal").
    pub fn recovery_default() -> Self {
        Schedule::standard(PowerState::S0)
    }

    /// Next battery sample strictly after `now`.
    pub fn next_sample(&self, now: SimTime) -> SimTime {
        let step = self.sample_interval.as_secs();
        let since_midnight = now.seconds_of_day();
        let next_slot = (since_midnight / step + 1) * step;
        now.start_of_day() + SimDuration::from_secs(next_slot)
    }

    /// Next daily window opening strictly after `now`.
    pub fn next_window(&self, now: SimTime) -> SimTime {
        now.next_time_of_day(self.window_hour_utc, 0, 0)
    }

    /// `true` if `t` lands exactly on one of this schedule's dGPS slots.
    ///
    /// Slots always fall on half-hour marks, so a driver that polls on the
    /// 30-minute sampling grid sees every slot.
    pub fn is_gps_slot(&self, t: SimTime) -> bool {
        let sod = t.seconds_of_day();
        match self.state.gps_readings_per_day() {
            0 => false,
            1 => sod == 11 * 3600 + 1800,
            n => {
                let interval = 86_400 / u64::from(n);
                sod % interval == 1800
            }
        }
    }

    /// Next scheduled dGPS reading strictly after `now`, or `None` in
    /// states without GPS.
    ///
    /// State 3 reads every two hours on odd half-hours (00:30, 02:30, …)
    /// — giving Fig 5's two-hour dip spacing without colliding with the
    /// midday window. State 2 reads once daily at 11:30, just before the
    /// window so the file is fresh for upload.
    pub fn next_gps_reading(&self, now: SimTime) -> Option<SimTime> {
        match self.state.gps_readings_per_day() {
            0 => None,
            1 => Some(now.next_time_of_day(11, 30, 0)),
            n => {
                let interval = (24 * 3600) / u64::from(n);
                let offset = 30 * 60; // first slot 00:30
                let since_midnight = now.seconds_of_day();
                let slot = if since_midnight < offset {
                    offset
                } else {
                    let k = (since_midnight - offset) / interval + 1;
                    offset + k * interval
                };
                let t = if slot < 24 * 3600 {
                    now.start_of_day() + SimDuration::from_secs(slot)
                } else {
                    now.start_of_day() + SimDuration::from_days(1) + SimDuration::from_secs(offset)
                };
                Some(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(h: u32, m: u32) -> SimTime {
        SimTime::from_ymd_hms(2009, 9, 22, h, m, 0)
    }

    #[test]
    fn samples_every_thirty_minutes() {
        let s = Schedule::standard(PowerState::S2);
        assert_eq!(s.next_sample(at(10, 0)), at(10, 30));
        assert_eq!(s.next_sample(at(10, 29)), at(10, 30));
        assert_eq!(s.next_sample(at(10, 30)), at(11, 0));
        // Midnight wrap.
        let last = SimTime::from_ymd_hms(2009, 9, 22, 23, 45, 0);
        assert_eq!(
            s.next_sample(last),
            SimTime::from_ymd_hms(2009, 9, 23, 0, 0, 0)
        );
    }

    #[test]
    fn window_is_midday_utc() {
        let s = Schedule::standard(PowerState::S3);
        assert_eq!(s.next_window(at(9, 0)), at(12, 0));
        assert_eq!(
            s.next_window(at(12, 0)),
            SimTime::from_ymd_hms(2009, 9, 23, 12, 0, 0),
            "strictly after"
        );
    }

    #[test]
    fn state3_gps_slots_are_two_hourly() {
        let s = Schedule::standard(PowerState::S3);
        assert_eq!(s.next_gps_reading(at(0, 0)), Some(at(0, 30)));
        assert_eq!(s.next_gps_reading(at(0, 30)), Some(at(2, 30)));
        assert_eq!(s.next_gps_reading(at(3, 0)), Some(at(4, 30)));
        // Twelve slots per day.
        let mut t = at(0, 0);
        let mut count = 0;
        while let Some(next) = s.next_gps_reading(t) {
            if !next.same_day(at(0, 0)) {
                break;
            }
            count += 1;
            t = next;
        }
        assert_eq!(count, 12);
    }

    #[test]
    fn state2_reads_once_before_the_window() {
        let s = Schedule::standard(PowerState::S2);
        assert_eq!(s.next_gps_reading(at(0, 0)), Some(at(11, 30)));
        let next = s.next_gps_reading(at(11, 30)).expect("daily");
        assert_eq!(next, SimTime::from_ymd_hms(2009, 9, 23, 11, 30, 0));
    }

    #[test]
    fn low_states_take_no_gps() {
        assert_eq!(
            Schedule::standard(PowerState::S1).next_gps_reading(at(0, 0)),
            None
        );
        assert_eq!(
            Schedule::standard(PowerState::S0).next_gps_reading(at(0, 0)),
            None
        );
    }

    #[test]
    fn recovery_default_is_state_zero() {
        let s = Schedule::recovery_default();
        assert_eq!(s.state, PowerState::S0);
        assert_eq!(s.window_hour_utc, 12);
    }

    #[test]
    fn is_gps_slot_agrees_with_next_gps_reading() {
        for state in [PowerState::S3, PowerState::S2, PowerState::S1] {
            let s = Schedule::standard(state);
            let day = SimTime::from_ymd_hms(2009, 9, 22, 0, 0, 0);
            let mut slot_count = 0;
            for half_hour in 0..48u64 {
                let t = day + SimDuration::from_mins(30 * half_hour);
                if s.is_gps_slot(t) {
                    slot_count += 1;
                }
            }
            assert_eq!(
                slot_count,
                state.gps_readings_per_day(),
                "{state} slots on the half-hour grid"
            );
        }
    }

    #[test]
    fn gps_slot_wraps_past_midnight() {
        let s = Schedule::standard(PowerState::S3);
        let late = SimTime::from_ymd_hms(2009, 9, 22, 22, 45, 0);
        let next = s.next_gps_reading(late).expect("state 3");
        assert_eq!(next, SimTime::from_ymd_hms(2009, 9, 23, 0, 30, 0));
    }
}
