//! The station data store and upload queue.
//!
//! §I: "The data gathered from the probes and dGPS is buffered locally
//! until the scheduled communications window… If for any reason the
//! communications fail the data is stored locally until it can be sent
//! onwards." §VI adds the backlog behaviour: "the data will be processed
//! file by file, and so over the course of a few days the backlog will be
//! cleared."

use std::collections::VecDeque;

use glacsweb_link::{DataCostMeter, WanLink};
use glacsweb_sim::{Bytes, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::uplink::{StationId, Uplink, UploadItem};

/// What kind of file is queued (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// dGPS observation file.
    Gps,
    /// Probe readings batch.
    Probe,
    /// Sensor/housekeeping data.
    Sensor,
    /// System log.
    Log,
}

/// The typed payload delivered to the server when a file completes.
pub type FilePayload = UploadItem;

/// One queued file with partial-upload resume state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingFile {
    /// File name on the CF card.
    pub name: String,
    /// Kind, for reporting.
    pub kind: FileKind,
    /// Total size.
    pub size: Bytes,
    /// Bytes already transferred in previous windows ("file by file"
    /// resume is per-file: a partially sent file restarts, but completed
    /// files never re-send — matching scp-style file transfer).
    pub sent: Bytes,
    /// Payload handed to the server on completion.
    pub payload: FilePayload,
    /// When the file was queued.
    pub queued_at: SimTime,
}

/// Outcome of one window's upload work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UploadReport {
    /// Files fully delivered this window.
    pub files_completed: usize,
    /// Bytes moved this window (including partial progress).
    pub bytes_sent: Bytes,
    /// Time spent transferring.
    pub elapsed: SimDuration,
    /// `true` if the queue drained completely.
    pub drained: bool,
    /// GPRS session drops encountered.
    pub session_drops: u32,
}

/// The upload queue.
///
/// # Example
///
/// ```
/// use glacsweb_station::{DataStore, FileKind, UploadItem};
/// use glacsweb_sim::{Bytes, SimTime};
///
/// let mut store = DataStore::new();
/// let t = SimTime::from_ymd_hms(2009, 9, 22, 12, 0, 0);
/// store.queue(
///     "sensors/day265.dat",
///     FileKind::Sensor,
///     Bytes::from_kib(4),
///     UploadItem::SensorData { samples: 48, size: Bytes::from_kib(4) },
///     t,
/// );
/// assert_eq!(store.backlog_bytes(), Bytes::from_kib(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataStore {
    queue: VecDeque<PendingFile>,
    total_uploaded: Bytes,
    total_files: u64,
    recently_completed: Vec<String>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DataStore {
            queue: VecDeque::new(),
            total_uploaded: Bytes::ZERO,
            total_files: 0,
            recently_completed: Vec::new(),
        }
    }

    /// Queues a file for upload.
    pub fn queue(
        &mut self,
        name: impl Into<String>,
        kind: FileKind,
        size: Bytes,
        payload: FilePayload,
        now: SimTime,
    ) {
        self.queue.push_back(PendingFile {
            name: name.into(),
            kind,
            size,
            sent: Bytes::ZERO,
            payload,
            queued_at: now,
        });
    }

    /// Files waiting.
    pub fn backlog_files(&self) -> usize {
        self.queue.len()
    }

    /// Bytes waiting (net of partial progress).
    pub fn backlog_bytes(&self) -> Bytes {
        self.queue
            .iter()
            .map(|f| f.size.saturating_sub(f.sent))
            .sum()
    }

    /// Lifetime bytes delivered.
    pub fn total_uploaded(&self) -> Bytes {
        self.total_uploaded
    }

    /// Lifetime files delivered.
    pub fn total_files(&self) -> u64 {
        self.total_files
    }

    /// Names of files fully delivered since the last drain — the caller
    /// uses this to free the corresponding CF-card copies.
    pub fn drain_completed(&mut self) -> Vec<String> {
        std::mem::take(&mut self.recently_completed)
    }

    /// Pushes queued files through an established GPRS session until the
    /// budget, the queue, or the session is exhausted.
    ///
    /// Completed files are handed to `uplink`; a partially transferred
    /// file keeps its progress for the next window. Returns what happened.
    pub fn upload(
        &mut self,
        from: StationId,
        link: &mut dyn WanLink,
        uplink: &mut dyn Uplink,
        cost: &mut DataCostMeter,
        budget: SimDuration,
        rng: &mut SimRng,
    ) -> UploadReport {
        let mut report = UploadReport::default();
        let mut remaining = budget;
        while let Some(file) = self.queue.front_mut() {
            if remaining == SimDuration::ZERO || !link.is_connected() {
                break;
            }
            let want = file.size.saturating_sub(file.sent);
            let outcome = link.transfer(want, remaining, rng);
            file.sent += outcome.sent;
            report.bytes_sent += outcome.sent;
            cost.charge(outcome.sent);
            remaining = remaining.saturating_sub(outcome.elapsed);
            report.elapsed += outcome.elapsed;
            if outcome.dropped {
                report.session_drops += 1;
                break; // caller decides whether to reconnect
            }
            if file.sent >= file.size {
                let Some(done) = self.queue.pop_front() else {
                    // Unreachable: front_mut() above just yielded this entry.
                    break;
                };
                self.total_uploaded += done.size;
                self.total_files += 1;
                report.files_completed += 1;
                self.recently_completed.push(done.name);
                uplink.upload_item(from, done.payload);
            } else {
                break; // budget exhausted mid-file
            }
        }
        report.drained = self.queue.is_empty();
        report
    }
}

impl Default for DataStore {
    fn default() -> Self {
        DataStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_link::{GprsConfig, GprsLink};
    use glacsweb_sim::CivilDate;

    use crate::power_state::PowerState;
    use crate::uplink::{CodeUpdate, SpecialCommand};

    /// A minimal recording uplink for tests.
    #[derive(Default)]
    struct FakeUplink {
        items: Vec<(StationId, UploadItem)>,
    }

    impl Uplink for FakeUplink {
        fn upload_power_state(&mut self, _: StationId, _: CivilDate, _: PowerState) {}
        fn upload_item(&mut self, from: StationId, item: UploadItem) {
            self.items.push((from, item));
        }
        fn fetch_override(&mut self, _: StationId) -> Option<PowerState> {
            None
        }
        fn fetch_special(&mut self, _: StationId) -> Option<SpecialCommand> {
            None
        }
        fn fetch_update(&mut self, _: StationId) -> Option<CodeUpdate> {
            None
        }
        fn report_checksum(&mut self, _: StationId, _: &str, _: &str) {}
    }

    fn noon() -> SimTime {
        SimTime::from_ymd_hms(2009, 9, 22, 12, 0, 0)
    }

    fn sensor_file(name: &str, kib: u64) -> (String, FileKind, Bytes, FilePayload) {
        (
            name.to_string(),
            FileKind::Sensor,
            Bytes::from_kib(kib),
            UploadItem::SensorData {
                samples: 48,
                size: Bytes::from_kib(kib),
            },
        )
    }

    #[test]
    fn uploads_everything_on_an_ideal_link() {
        let mut store = DataStore::new();
        for i in 0..5 {
            let (n, k, s, p) = sensor_file(&format!("f{i}"), 40);
            store.queue(n, k, s, p, noon());
        }
        let mut link = GprsLink::new(GprsConfig::ideal());
        let mut rng = SimRng::seed_from(1);
        link.connect(&mut rng).expect("attach");
        let mut uplink = FakeUplink::default();
        let mut cost = DataCostMeter::per_megabyte(4.0);
        let report = store.upload(
            StationId::Base,
            &mut link as &mut dyn WanLink,
            &mut uplink,
            &mut cost,
            SimDuration::from_hours(2),
            &mut rng,
        );
        assert!(report.drained);
        assert_eq!(report.files_completed, 5);
        assert_eq!(uplink.items.len(), 5);
        assert_eq!(store.backlog_bytes(), Bytes::ZERO);
        assert_eq!(store.total_files(), 5);
        assert!(cost.total_cost() > 0.0);
    }

    #[test]
    fn budget_exhaustion_keeps_partial_progress() {
        let mut store = DataStore::new();
        let (n, k, s, p) = sensor_file("big", 400); // 400 KiB ≈ 655 s at 625 B/s
        store.queue(n, k, s, p, noon());
        let mut link = GprsLink::new(GprsConfig::ideal());
        let mut rng = SimRng::seed_from(2);
        link.connect(&mut rng).expect("attach");
        let mut uplink = FakeUplink::default();
        let mut cost = DataCostMeter::per_megabyte(4.0);
        let report = store.upload(
            StationId::Base,
            &mut link as &mut dyn WanLink,
            &mut uplink,
            &mut cost,
            SimDuration::from_mins(5),
            &mut rng,
        );
        assert_eq!(report.files_completed, 0);
        assert!(!report.drained);
        assert!(report.bytes_sent > Bytes::from_kib(100));
        // Tomorrow finishes it.
        let report2 = store.upload(
            StationId::Base,
            &mut link as &mut dyn WanLink,
            &mut uplink,
            &mut cost,
            SimDuration::from_hours(1),
            &mut rng,
        );
        assert_eq!(report2.files_completed, 1);
        assert!(report2.drained);
        assert_eq!(uplink.items.len(), 1);
    }

    #[test]
    fn session_drop_stops_the_window() {
        let config = GprsConfig {
            mean_time_to_drop: SimDuration::from_secs(30),
            setup_failure_p: 0.0,
            ..GprsConfig::field()
        };
        let mut store = DataStore::new();
        for i in 0..3 {
            let (n, k, s, p) = sensor_file(&format!("f{i}"), 200);
            store.queue(n, k, s, p, noon());
        }
        let mut link = GprsLink::new(config);
        let mut rng = SimRng::seed_from(3);
        link.connect(&mut rng).expect("attach");
        let mut uplink = FakeUplink::default();
        let mut cost = DataCostMeter::per_megabyte(4.0);
        let report = store.upload(
            StationId::Base,
            &mut link as &mut dyn WanLink,
            &mut uplink,
            &mut cost,
            SimDuration::from_hours(2),
            &mut rng,
        );
        assert!(report.session_drops >= 1);
        assert!(!report.drained);
        assert!(!link.is_connected());
    }

    #[test]
    fn backlog_clears_over_multiple_days() {
        // The §VI story: days of GPRS failure build a backlog bigger than
        // one window; daily windows clear it file by file.
        let mut store = DataStore::new();
        for i in 0..12 {
            let (n, k, s, p) = sensor_file(&format!("gps{i}"), 165);
            store.queue(n, k, s, p, noon());
        }
        // 12 × 165 KiB ≈ 1.93 MiB needs ≈ 54 min on an ideal link; give
        // 20-minute windows so several days are needed.
        let mut link = GprsLink::new(GprsConfig::ideal());
        let mut rng = SimRng::seed_from(4);
        let mut uplink = FakeUplink::default();
        let mut cost = DataCostMeter::per_megabyte(4.0);
        let mut days = 0;
        while store.backlog_files() > 0 && days < 10 {
            if !link.is_connected() {
                link.connect(&mut rng).expect("attach");
            }
            store.upload(
                StationId::Base,
                &mut link as &mut dyn WanLink,
                &mut uplink,
                &mut cost,
                SimDuration::from_mins(20),
                &mut rng,
            );
            link.disconnect();
            days += 1;
        }
        assert!(store.backlog_files() == 0, "cleared");
        assert!(days >= 3, "took {days} windows");
        assert_eq!(uplink.items.len(), 12);
    }
}
