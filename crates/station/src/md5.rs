//! MD5, implemented from scratch (RFC 1321).
//!
//! §VI: "In order to make sure that the code has arrived at the station
//! without corruption the code then has to have a checksum calculated …
//! scripts on the system … automatically download the program, calculate
//! a checksum and if it is correct replace the old file with the new one",
//! with the computed MD5 reported back over an HTTP GET. MD5 is used here
//! exactly as the paper used it — an integrity check against transfer
//! corruption, not a security boundary.

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants: `K[i] = floor(|sin(i + 1)| · 2³²)`.
// The truncating cast *is* the RFC 1321 definition: take the integer
// part of |sin(i+1)|·2³² modulo 2³².
#[allow(clippy::cast_possible_truncation)]
fn k_table() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, slot) in k.iter_mut().enumerate() {
        *slot = ((i as f64 + 1.0).sin().abs() * 4_294_967_296.0) as u32;
    }
    k
}

/// Computes the MD5 digest of `data`.
///
/// # Example
///
/// ```
/// use glacsweb_station::md5::{md5, to_hex};
///
/// let digest = md5(b"");
/// assert_eq!(to_hex(&digest), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
pub fn md5(data: &[u8]) -> [u8; 16] {
    let k = k_table();
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Padding: 0x80, zeros, then the original bit length as little-endian
    // u64, to a multiple of 64 bytes.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (word, bytes) in m.iter_mut().zip(chunk.chunks_exact(4)) {
            *word = bytes
                .iter()
                .rev()
                .fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for (i, (&ki, &si)) in k.iter().zip(S.iter()).enumerate() {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            #[allow(clippy::indexing_slicing)]
            // glacsweb: allow(panic-freedom, reason = "g is produced by the match above, every arm of which reduces mod 16; m has exactly 16 words")
            let sum = a.wrapping_add(f).wrapping_add(ki).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(si));
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    for (slot, word) in out.chunks_exact_mut(4).zip([a0, b0, c0, d0]) {
        slot.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Renders a digest as the conventional lowercase hex string (what the
/// verification script puts in its HTTP GET query).
pub fn to_hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&md5(input)), expected, "input {input:?}");
        }
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            to_hex(&md5(b"The quick brown fox jumps over the lazy dog")),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Exercise messages straddling the 55/56/64-byte padding edges.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5Au8; len];
            let d1 = md5(&data);
            let d2 = md5(&data);
            assert_eq!(d1, d2, "len {len} deterministic");
            // Flip one byte → different digest.
            let mut flipped = data.clone();
            flipped[len / 2] ^= 0xFF;
            assert_ne!(md5(&flipped), d1, "len {len} sensitive to corruption");
        }
    }

    proptest! {
        /// Any single-bit corruption changes the digest — the property the
        /// paper's update-verification script relies on.
        #[test]
        fn detects_single_bit_corruption(
            data in proptest::collection::vec(any::<u8>(), 1..512),
            bit in 0usize..4096,
        ) {
            let byte = (bit / 8) % data.len();
            let mask = 1u8 << (bit % 8);
            let mut corrupted = data.clone();
            corrupted[byte] ^= mask;
            prop_assert_ne!(md5(&corrupted), md5(&data));
        }

        /// Hex rendering is 32 lowercase hex chars.
        #[test]
        fn hex_format(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let h = to_hex(&md5(&data));
            prop_assert_eq!(h.len(), 32);
            prop_assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        }
    }
}
