//! Controller configuration and the daily window report.

use glacsweb_faults::RetryPolicy;
use glacsweb_probe::ProtocolConfig;
use glacsweb_sim::{ConfigError, SimDuration, SimTime, TraceLevel};
use serde::{Deserialize, Serialize};

use crate::data::UploadReport;
use crate::power_state::PowerState;
use crate::uplink::StationId;

/// Tunables of the daily-run controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hard limit on one window (§VI: two hours).
    pub watchdog_limit: SimDuration,
    /// `false` reproduces the deployed Fig 4 ordering (special command
    /// fetched and executed *after* the data upload — the §VI lesson);
    /// `true` applies the paper's proposed fix ("the execution of remote
    /// code is performed before the data is transferred").
    pub special_before_upload: bool,
    /// Probe-retrieval protocol configuration.
    pub protocol: ProtocolConfig,
    /// Time budget per probe per window.
    pub probe_budget: SimDuration,
    /// GPRS attach retry policy per window: attempt budget plus
    /// exponential backoff between attempts (§VI recovery discipline).
    pub attach_retry: RetryPolicy,
    /// Retry policy for server-side fetches (override, special, update)
    /// when the server is unreachable.
    pub fetch_retry: RetryPolicy,
    /// Log verbosity left in the deployed binaries (§VI: too much output
    /// "takes time/power/money to transfer but is of little use").
    pub log_min_level: TraceLevel,
    /// §VII future-work extension: "analyse the data collected and
    /// prioritise it, forcing communication even if the available power is
    /// marginal if the data warrants it". When enabled, a detected
    /// priority event (sharp conductivity rise — melt water reaching the
    /// bed) permits a minimal GPRS upload even in power state 0.
    pub priority_data: bool,
    /// Conductivity jump (µS, batch mean vs previous batch mean) that
    /// counts as a priority event.
    pub priority_conductivity_jump_us: f64,
}

impl ControllerConfig {
    /// The system as deployed in 2008, including both documented pitfalls
    /// (special-after-upload ordering and the individual-fetch limit).
    pub fn deployed_2008() -> Self {
        ControllerConfig {
            watchdog_limit: SimDuration::from_hours(2),
            special_before_upload: false,
            protocol: ProtocolConfig::deployed_2008(),
            probe_budget: SimDuration::from_mins(25),
            attach_retry: RetryPolicy::gprs_attach(),
            fetch_retry: RetryPolicy::server_fetch(),
            log_min_level: TraceLevel::Debug,
            priority_data: false,
            priority_conductivity_jump_us: 3.0,
        }
    }

    /// The lessons-learnt configuration with the §VII priority-data
    /// extension enabled.
    pub fn with_priority_data() -> Self {
        ControllerConfig {
            priority_data: true,
            ..ControllerConfig::lessons_learnt()
        }
    }

    /// The post-lessons-learnt configuration: special before upload, fixed
    /// protocol, log output trimmed to Info.
    pub fn lessons_learnt() -> Self {
        ControllerConfig {
            special_before_upload: true,
            protocol: ProtocolConfig::fixed(),
            log_min_level: TraceLevel::Info,
            ..ControllerConfig::deployed_2008()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.watchdog_limit.as_secs() == 0 {
            return Err(ConfigError::new(
                "controller",
                "watchdog_limit",
                "watchdog limit must be non-zero",
            ));
        }
        if !self.priority_conductivity_jump_us.is_finite()
            || self.priority_conductivity_jump_us <= 0.0
        {
            return Err(ConfigError::new(
                "controller",
                "priority_conductivity_jump_us",
                "priority jump threshold must be positive",
            ));
        }
        self.attach_retry.validate()?;
        self.fetch_retry.validate()?;
        self.protocol.validate()
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::lessons_learnt()
    }
}

/// Everything that happened in one daily communications window — the
/// simulation's equivalent of the station's daily logfile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Which station ran.
    pub station: StationId,
    /// Window open (MSP430 wake) time.
    pub opened: SimTime,
    /// When the Gumstix was powered off again.
    pub closed: SimTime,
    /// `true` if the 2-hour watchdog cut the run.
    pub cut_by_watchdog: bool,
    /// `true` if the battery died mid-window.
    pub died_mid_window: bool,
    /// State computed from the daily voltage average.
    pub local_state: PowerState,
    /// Override fetched from the server (if the fetch succeeded).
    pub override_state: Option<PowerState>,
    /// State actually written to tomorrow's schedule.
    pub applied_state: PowerState,
    /// Probes that answered the query.
    pub probes_contacted: usize,
    /// New probe readings retrieved.
    pub probe_readings: usize,
    /// `true` if any probe fetch hit the §V individual-fetch failure.
    pub probe_fetch_aborted: bool,
    /// dGPS files pulled over RS-232 this window.
    pub gps_files_fetched: usize,
    /// `true` if a dGPS file larger than the whole window is stuck (§VI).
    pub gps_file_stuck: bool,
    /// Whether a GPRS session came up at all.
    pub gprs_connected: bool,
    /// Whether today's power state reached the server.
    pub state_uploaded: bool,
    /// Upload activity.
    pub upload: UploadReport,
    /// Special command executed this window, if any.
    pub special_executed: Option<u64>,
    /// Code update applied this window (file name), if any.
    pub update_applied: Option<String>,
    /// Code update rejected on checksum mismatch, if any.
    pub update_rejected: Option<String>,
    /// Clock/schedule recovery performed at wake (§IV), if it ran.
    pub recovered: bool,
    /// §VII extension: a priority event forced communications despite
    /// power state 0.
    pub priority_forced: bool,
    /// §VII: CF-card corruption was detected and recovered at this wake —
    /// `(files kept, files lost)`.
    pub card_recovered: Option<(usize, usize)>,
    /// The Fig 4 steps actually executed this window, in order — lets
    /// tests assert the flowchart itself.
    pub steps: Vec<String>,
}

impl WindowReport {
    /// Total window duration.
    pub fn duration(&self) -> SimDuration {
        self.closed.saturating_since(self.opened)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_config_has_the_documented_pitfalls() {
        let c = ControllerConfig::deployed_2008();
        assert!(
            !c.special_before_upload,
            "special runs after upload as deployed"
        );
        assert!(c.protocol.individual_fetch_limit.is_some());
        assert_eq!(c.watchdog_limit, SimDuration::from_hours(2));
        c.validate().expect("valid");
    }

    #[test]
    fn lessons_learnt_fixes_them() {
        let c = ControllerConfig::lessons_learnt();
        assert!(c.special_before_upload);
        assert!(c.protocol.individual_fetch_limit.is_none());
        assert!(c.log_min_level >= TraceLevel::Info);
        c.validate().expect("valid");
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = ControllerConfig {
            watchdog_limit: SimDuration::ZERO,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ControllerConfig {
            attach_retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::gprs_attach()
            },
            ..ControllerConfig::default()
        };
        let err = c.validate().expect_err("zero attach attempts");
        assert_eq!(err.component(), "retry");
        assert_eq!(err.field(), "max_attempts");
        let c = ControllerConfig {
            priority_conductivity_jump_us: -1.0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
