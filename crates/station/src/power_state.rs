//! Table II: the adaptive power states.

use std::fmt;

use glacsweb_sim::{SimDuration, Volts};
use serde::{Deserialize, Serialize};

/// One of the four operating states of Table II.
///
/// | State | Min threshold | Probe jobs | Sensors | GPS | GPRS |
/// |---|---|---|---|---|---|
/// | 3 | 12.5 V | yes | yes | 12/day | yes |
/// | 2 | 12.0 V | yes | yes | 1/day | yes |
/// | 1 | 11.5 V | yes | yes | no | yes |
/// | 0 | — | yes | yes | no | no |
///
/// Probe jobs run in *every* state because "radio communication with the
/// probes is better in the winter due to the drier ice conditions so probe
/// communications should always be attempted", and MSP430 sensing "has
/// negligible cost" (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Survival: sensing and probe jobs only; no GPS, no GPRS.
    S0,
    /// Communications restored, still no GPS.
    S1,
    /// One dGPS reading per day.
    S2,
    /// Full operation: twelve dGPS readings per day.
    S3,
}

impl PowerState {
    /// All states, lowest first.
    pub const ALL: [PowerState; 4] = [
        PowerState::S0,
        PowerState::S1,
        PowerState::S2,
        PowerState::S3,
    ];

    /// The numeric label used in the paper (0–3).
    pub fn level(self) -> u8 {
        match self {
            PowerState::S0 => 0,
            PowerState::S1 => 1,
            PowerState::S2 => 2,
            PowerState::S3 => 3,
        }
    }

    /// Inverse of [`PowerState::level`], for levels that exist.
    pub fn try_from_level(level: u8) -> Option<PowerState> {
        match level {
            0 => Some(PowerState::S0),
            1 => Some(PowerState::S1),
            2 => Some(PowerState::S2),
            3 => Some(PowerState::S3),
            _ => None,
        }
    }

    /// Inverse of [`PowerState::level`].
    ///
    /// # Panics
    ///
    /// Panics if `level > 3`; fallible callers (e.g. parsing a server
    /// override byte) should use [`PowerState::try_from_level`].
    pub fn from_level(level: u8) -> PowerState {
        match PowerState::try_from_level(level) {
            Some(state) => state,
            // glacsweb: allow(panic-freedom, reason = "Table II has exactly four states; a level > 3 from inside the workspace is a logic bug, and untrusted inputs go through try_from_level")
            None => panic!("no power state {level}"),
        }
    }

    /// Scheduled dGPS readings per day.
    pub fn gps_readings_per_day(self) -> u32 {
        match self {
            PowerState::S3 => 12,
            PowerState::S2 => 1,
            _ => 0,
        }
    }

    /// Whether the GPRS modem may be used.
    pub fn gprs_enabled(self) -> bool {
        self != PowerState::S0
    }

    /// Probe jobs are always attempted (Table II).
    pub fn probe_jobs(self) -> bool {
        true
    }

    /// MSP430 sensor readings always run (Table II).
    pub fn sensor_readings(self) -> bool {
        true
    }

    /// The interval between dGPS readings, if any are scheduled (2-hourly
    /// in state 3 — the spacing of the Fig 5 dips).
    pub fn gps_interval(self) -> Option<SimDuration> {
        match self.gps_readings_per_day() {
            0 => None,
            n => Some(SimDuration::from_hours(24 / u64::from(n))),
        }
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state {}", self.level())
    }
}

/// The Table II threshold column plus the selection and clamping logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    /// Minimum daily-average voltage for state 3.
    pub s3_min: Volts,
    /// Minimum daily-average voltage for state 2.
    pub s2_min: Volts,
    /// Minimum daily-average voltage for state 1.
    pub s1_min: Volts,
}

impl PolicyTable {
    /// The thresholds exactly as published: 12.5 / 12.0 / 11.5 V.
    pub fn paper() -> Self {
        PolicyTable {
            s3_min: Volts(12.5),
            s2_min: Volts(12.0),
            s1_min: Volts(11.5),
        }
    }

    /// Selects the local state from a daily average voltage.
    pub fn state_for(&self, daily_average: Volts) -> PowerState {
        if daily_average >= self.s3_min {
            PowerState::S3
        } else if daily_average >= self.s2_min {
            PowerState::S2
        } else if daily_average >= self.s1_min {
            PowerState::S1
        } else {
            PowerState::S0
        }
    }

    /// Applies a server override to a locally computed state, with the
    /// paper's §III safeguards: the override can lower but never raise the
    /// state beyond "the battery voltage allows", and cannot force the
    /// station "into a state in which it does not do communications"
    /// (state 0).
    ///
    /// If the override fetch failed (`None`), the local state stands:
    /// "if the fetching of the over-ride state from the server fails for
    /// any reason then the system will just rely on its local state".
    pub fn apply_override(&self, local: PowerState, remote: Option<PowerState>) -> PowerState {
        let Some(remote) = remote else {
            return local;
        };
        if remote >= local {
            // Cannot be set higher than the battery allows.
            return local;
        }
        // Cannot be forced to state 0 (but a *local* 0 stands on its own).
        if remote == PowerState::S0 {
            return local.min(PowerState::S1);
        }
        remote
    }
}

impl Default for PolicyTable {
    fn default() -> Self {
        PolicyTable::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table2_rows() {
        for s in PowerState::ALL {
            assert!(s.probe_jobs(), "{s}: probe jobs always yes");
            assert!(s.sensor_readings(), "{s}: sensing always yes");
        }
        assert_eq!(PowerState::S3.gps_readings_per_day(), 12);
        assert_eq!(PowerState::S2.gps_readings_per_day(), 1);
        assert_eq!(PowerState::S1.gps_readings_per_day(), 0);
        assert_eq!(PowerState::S0.gps_readings_per_day(), 0);
        assert!(PowerState::S3.gprs_enabled());
        assert!(PowerState::S1.gprs_enabled());
        assert!(!PowerState::S0.gprs_enabled());
    }

    #[test]
    fn thresholds_select_states() {
        let p = PolicyTable::paper();
        assert_eq!(p.state_for(Volts(13.2)), PowerState::S3);
        assert_eq!(
            p.state_for(Volts(12.5)),
            PowerState::S3,
            "inclusive boundary"
        );
        assert_eq!(p.state_for(Volts(12.49)), PowerState::S2);
        assert_eq!(p.state_for(Volts(12.0)), PowerState::S2);
        assert_eq!(p.state_for(Volts(11.7)), PowerState::S1);
        assert_eq!(p.state_for(Volts(11.5)), PowerState::S1);
        assert_eq!(p.state_for(Volts(11.49)), PowerState::S0);
        assert_eq!(p.state_for(Volts(9.0)), PowerState::S0);
    }

    #[test]
    fn state3_reads_every_two_hours() {
        assert_eq!(
            PowerState::S3.gps_interval(),
            Some(SimDuration::from_hours(2))
        );
        assert_eq!(
            PowerState::S2.gps_interval(),
            Some(SimDuration::from_hours(24))
        );
        assert_eq!(PowerState::S1.gps_interval(), None);
    }

    #[test]
    fn override_lowers_but_never_raises() {
        let p = PolicyTable::paper();
        // Fig 5's situation: battery good for state 3, server holds it at 2.
        assert_eq!(
            p.apply_override(PowerState::S3, Some(PowerState::S2)),
            PowerState::S2
        );
        // Server asking for a higher state than the battery allows: denied.
        assert_eq!(
            p.apply_override(PowerState::S1, Some(PowerState::S3)),
            PowerState::S1
        );
    }

    #[test]
    fn override_cannot_force_state_zero() {
        let p = PolicyTable::paper();
        assert_eq!(
            p.apply_override(PowerState::S3, Some(PowerState::S0)),
            PowerState::S1,
            "remote zero clamps to 1 so communications continue"
        );
        // But a local zero (dead battery) stands.
        assert_eq!(
            p.apply_override(PowerState::S0, Some(PowerState::S0)),
            PowerState::S0
        );
    }

    #[test]
    fn failed_fetch_falls_back_to_local() {
        let p = PolicyTable::paper();
        for s in PowerState::ALL {
            assert_eq!(p.apply_override(s, None), s);
        }
    }

    #[test]
    fn level_round_trip() {
        for s in PowerState::ALL {
            assert_eq!(PowerState::from_level(s.level()), s);
        }
        assert_eq!(PowerState::S2.to_string(), "state 2");
    }

    #[test]
    #[should_panic(expected = "no power state 4")]
    fn bad_level_panics() {
        let _ = PowerState::from_level(4);
    }

    proptest! {
        /// The selected state is monotone in voltage.
        #[test]
        fn policy_is_monotone(v1 in 9.0f64..15.0, v2 in 9.0f64..15.0) {
            let p = PolicyTable::paper();
            let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
            prop_assert!(p.state_for(Volts(lo)) <= p.state_for(Volts(hi)));
        }

        /// The override result never exceeds the local state and is never
        /// a remote-forced zero.
        #[test]
        fn override_invariants(local in 0u8..4, remote in proptest::option::of(0u8..4)) {
            let p = PolicyTable::paper();
            let local = PowerState::from_level(local);
            let remote = remote.map(PowerState::from_level);
            let eff = p.apply_override(local, remote);
            prop_assert!(eff <= local);
            if eff == PowerState::S0 {
                prop_assert_eq!(local, PowerState::S0, "zero only if locally zero");
            }
        }
    }
}
