//! The station ↔ Southampton server contract.
//!
//! §III: "the communications are managed by a server in Southampton" —
//! stations never talk to each other. This trait is the station's view of
//! that server; `glacsweb-server` provides the real implementation, and
//! tests use small fakes.

use glacsweb_probe::ProbeReading;
use glacsweb_sim::{Bytes, CivilDate, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::power_state::PowerState;

/// Which station is talking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StationId {
    /// The glacier base station.
    Base,
    /// The dGPS reference station at the café.
    Reference,
}

impl StationId {
    /// The paired station.
    pub fn other(self) -> StationId {
        match self {
            StationId::Base => StationId::Reference,
            StationId::Reference => StationId::Base,
        }
    }
}

/// A "special" command script staged on the server for one station (§VI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecialCommand {
    /// Server-side identifier.
    pub id: u64,
    /// Script size (download cost).
    pub size: Bytes,
    /// How long the script runs on the Gumstix.
    pub runtime: SimDuration,
    /// Size of the output it writes into the normal log files (§VI: "the
    /// output from the special file … just goes into the normal log
    /// files", so it comes back with *tomorrow's* upload).
    pub output_size: Bytes,
}

/// Result of executing a special command, delivered to the server inside
/// the *next* day's log upload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecialResult {
    /// Which command ran.
    pub id: u64,
    /// When it ran on the station.
    pub executed_at: SimTime,
    /// Output bytes that went into the log.
    pub output_size: Bytes,
}

/// A staged code update (§VI): download, verify MD5, swap, report the
/// checksum by HTTP GET.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeUpdate {
    /// Target file name.
    pub name: String,
    /// The payload bytes (small — Python control code).
    pub payload: Vec<u8>,
    /// The MD5 the server advertises for the payload.
    pub expected_md5: [u8; 16],
}

/// One item of a daily upload bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UploadItem {
    /// A dGPS observation file.
    GpsFile {
        /// Recording start time.
        taken_at: SimTime,
        /// Observed down-flow position, metres.
        observed_position_m: f64,
        /// File size.
        size: Bytes,
    },
    /// A batch of probe readings.
    ProbeData(Vec<ProbeReading>),
    /// Surface sensor and housekeeping data (voltage log etc.).
    SensorData {
        /// Number of samples in the batch.
        samples: u64,
        /// Serialized size.
        size: Bytes,
    },
    /// The daily system log (§VI: "all messages or errors are redirected
    /// to a standard logfile which is sent back daily with the data"),
    /// carrying any special-command results from yesterday.
    SystemLog {
        /// Serialized size.
        size: Bytes,
        /// Special-command results embedded in the log.
        special_results: Vec<SpecialResult>,
    },
}

/// The station's view of the Southampton server.
///
/// Every method models one HTTP(S)/SCP exchange *after* the GPRS session
/// is up; transport failures are handled by the caller around these
/// calls. `report_checksum` exists as a separate tiny GET because the
/// deployed `wget` could not POST (§VI).
pub trait Uplink {
    /// `true` while the server answers at all — `false` during a server
    /// outage (§VI: "the server was unreachable for a week"). Stations
    /// probe this before control fetches and back off while it is down.
    fn is_reachable(&self) -> bool {
        true
    }

    /// Uploads today's locally computed power state.
    fn upload_power_state(&mut self, from: StationId, date: CivilDate, state: PowerState);

    /// Delivers one completed upload item.
    fn upload_item(&mut self, from: StationId, item: UploadItem);

    /// Fetches the override state: the server returns the *lowest* of the
    /// two stations' reported states (§III).
    fn fetch_override(&mut self, for_station: StationId) -> Option<PowerState>;

    /// [`fetch_override`](Self::fetch_override) plus telemetry: the
    /// decision (or its absence) is recorded through `scope`.
    /// Implementations with visibility into both inputs (the real
    /// Southampton server) override this to record them alongside the
    /// decision; the default records just the outcome.
    fn fetch_override_observed(
        &mut self,
        for_station: StationId,
        scope: &mut glacsweb_obs::Scope<'_>,
    ) -> Option<PowerState> {
        let decision = self.fetch_override(for_station);
        scope.counter("override_fetches", 1);
        if scope.enabled() {
            let mut event = scope.make("override_decision");
            event = match decision {
                Some(state) => event.with("state", u64::from(state.level())),
                None => event.with("state", "none"),
            };
            scope.emit(event);
        }
        decision
    }

    /// Fetches the next staged special command, if any.
    fn fetch_special(&mut self, for_station: StationId) -> Option<SpecialCommand>;

    /// Fetches a staged code update, if any.
    fn fetch_update(&mut self, for_station: StationId) -> Option<CodeUpdate>;

    /// Reports an update's computed MD5 immediately via HTTP GET.
    fn report_checksum(&mut self, from: StationId, file: &str, md5_hex: &str);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_pairing() {
        assert_eq!(StationId::Base.other(), StationId::Reference);
        assert_eq!(StationId::Reference.other(), StationId::Base);
    }

    #[test]
    fn upload_items_serialize() {
        let item = UploadItem::SystemLog {
            size: Bytes::from_kib(12),
            special_results: vec![SpecialResult {
                id: 3,
                executed_at: SimTime::from_ymd_hms(2009, 9, 22, 12, 40, 0),
                output_size: Bytes(900),
            }],
        };
        let json = serde_json::to_string(&item).expect("serialize");
        let back: UploadItem = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, item);
    }
}
