//! Crash-safe snapshot persistence for the Glacsweb reproduction.
//!
//! A snapshot file is a self-describing binary envelope:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GLACSNAP"
//! 8       4     schema version, u32 LE
//! 12      8     payload length, u64 LE
//! 20      4     CRC-32 (IEEE) of the payload, u32 LE
//! 24      n     payload: binary-encoded serde::Value tree
//! ```
//!
//! The payload is the wire [`Value`] tree of whatever implements
//! [`Serialize`]; floats travel as their IEEE-754 bit pattern so a
//! round-trip is bit-identical, which is what lets a restored deployment
//! replay the exact golden-hash trajectory of an uninterrupted run.
//!
//! Durability rules:
//!
//! * [`save`] writes to a `.tmp` sibling, syncs it, then renames over the
//!   final path — a crash mid-write leaves the previous snapshot intact
//!   and at worst a stale temp file, never a torn snapshot;
//! * [`load`] verifies magic, schema version, length and checksum before
//!   decoding a single payload byte, and refuses files written by a
//!   *newer* schema ([`SnapshotError::FutureSchema`]) rather than
//!   guessing at fields it does not know;
//! * every failure is a typed [`SnapshotError`] — corrupted, truncated or
//!   crafted input must never panic the loader.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

/// File magic: identifies a Glacsweb snapshot regardless of extension.
pub const MAGIC: [u8; 8] = *b"GLACSNAP";

/// Schema version this build writes and the newest it can read.
///
/// Bump on any change to the payload layout. Readers accept any version
/// `<= SCHEMA_VERSION` (older payloads decode through the `Value` tree,
/// whose missing-field errors are typed, not panics) and reject newer
/// ones outright.
pub const SCHEMA_VERSION: u32 = 1;

/// Suffix of the temporary sibling used by the atomic write.
pub const TMP_SUFFIX: &str = ".tmp";

/// Envelope header length in bytes (magic + version + length + CRC).
pub const HEADER_LEN: usize = 24;

/// Maximum nesting depth [`load`] will decode — far above any real
/// deployment tree, low enough that a crafted file cannot blow the stack.
const MAX_DEPTH: u32 = 128;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file ends before the envelope says it should.
    Truncated {
        /// Bytes the envelope requires.
        needed: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// The payload bytes do not hash to the stored CRC-32.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum of the bytes on disk.
        computed: u32,
    },
    /// The file was written by a newer schema than this build understands.
    FutureSchema {
        /// Version found in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The payload checksummed correctly but is not a well-formed value
    /// tree (bad type tag, length overrun, invalid UTF-8, over-deep).
    Malformed(String),
    /// The value tree decoded but describes an impossible state (schema
    /// field mismatch or a violated domain invariant).
    Invalid(String),
}

impl SnapshotError {
    /// A semantic-validation failure with the given message.
    pub fn invalid(msg: impl Into<String>) -> Self {
        SnapshotError::Invalid(msg.into())
    }

    /// A structural-decode failure with the given message.
    pub fn malformed(msg: impl Into<String>) -> Self {
        SnapshotError::Malformed(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a Glacsweb snapshot (bad magic)"),
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#010x}, payload hashes to {computed:#010x}"
            ),
            SnapshotError::FutureSchema { found, supported } => write!(
                f,
                "snapshot schema v{found} is newer than the supported v{supported}; upgrade before loading"
            ),
            SnapshotError::Malformed(msg) => write!(f, "snapshot payload malformed: {msg}"),
            SnapshotError::Invalid(msg) => write!(f, "snapshot state invalid: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde::de::Error> for SnapshotError {
    fn from(e: serde::de::Error) -> Self {
        SnapshotError::Invalid(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the polynomial everyone's `cksum`
// agrees on, so a snapshot can be sanity-checked outside this crate.

/// CRC-32 (IEEE) of `bytes`.
// Indexing and casts below are bounded by construction (i < 256, masked
// idx) and the table initializer runs at compile time; see the inline
// ledger entries.
#[allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
pub fn crc32(bytes: &[u8]) -> u32 {
    // const-evaluated once; no runtime table-build cost per call site.
    const TABLE: [u32; 256] = {
        // `crc32_table` is not const-callable on this toolchain floor, so
        // inline the same loop in const context.
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            // glacsweb: allow(panic-freedom, reason = "i < 256 by the loop bound; evaluated at compile time, so an out-of-range index is a build error, not a runtime panic")
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        // glacsweb: allow(panic-freedom, reason = "idx is masked & 0xFF on the line above; TABLE has exactly 256 entries")
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ u32::MAX
}

// ---------------------------------------------------------------------------
// Binary Value codec. One-byte type tag, little-endian fixed-width
// numbers, u64 lengths. Floats travel as raw bits: encode/decode is a
// bit-identical round trip even for -0.0 and the quiet NaNs the models
// never produce but a corrupted file might.

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(x) => {
            out.push(TAG_I64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::U64(x) => {
            out.push(TAG_U64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (k, val) in entries {
                encode_value(k, out);
                encode_value(val, out);
            }
        }
    }
}

/// A bounds-checked cursor over the payload bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            SnapshotError::malformed(format!("length overflow at offset {}", self.pos))
        })?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| {
            SnapshotError::malformed(format!(
                "payload ends at {} but a value at {} needs {} more bytes",
                self.buf.len(),
                self.pos,
                n
            ))
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn take_byte(&mut self) -> Result<u8, SnapshotError> {
        match *self.take(1)? {
            [b] => Ok(b),
            // take(1) yields exactly one byte or errors; keep the decoder
            // total anyway rather than trusting that invariant.
            _ => Err(SnapshotError::malformed("internal: take(1) length")),
        }
    }

    fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// A collection length, validated against the bytes that remain: every
    /// element costs at least one tag byte, so a count beyond the residue
    /// is corrupt — reject it *before* allocating.
    fn take_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.take_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapshotError::malformed(format!(
                "collection claims {n} elements but only {remaining} payload bytes remain"
            )));
        }
        usize::try_from(n).map_err(|_| {
            SnapshotError::malformed(format!("collection length {n} exceeds the address space"))
        })
    }
}

fn decode_value(c: &mut Cursor<'_>, depth: u32) -> Result<Value, SnapshotError> {
    if depth > MAX_DEPTH {
        return Err(SnapshotError::malformed(format!(
            "value tree deeper than {MAX_DEPTH} levels"
        )));
    }
    let tag = c.take_byte()?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_I64 => Ok(Value::I64(i64::from_le_bytes({
            let mut a = [0u8; 8];
            a.copy_from_slice(c.take(8)?);
            a
        }))),
        TAG_U64 => Ok(Value::U64(c.take_u64()?)),
        TAG_F64 => Ok(Value::F64(f64::from_bits(c.take_u64()?))),
        TAG_STR => {
            let len = c.take_len()?;
            let bytes = c.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| SnapshotError::malformed(format!("string is not UTF-8: {e}")))?;
            Ok(Value::Str(s.to_string()))
        }
        TAG_SEQ => {
            let len = c.take_len()?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_value(c, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = c.take_len()?;
            let mut entries = Vec::with_capacity(len);
            for _ in 0..len {
                let k = decode_value(c, depth + 1)?;
                let v = decode_value(c, depth + 1)?;
                entries.push((k, v));
            }
            Ok(Value::Map(entries))
        }
        other => Err(SnapshotError::malformed(format!(
            "unknown value tag {other} at offset {}",
            c.pos - 1
        ))),
    }
}

// ---------------------------------------------------------------------------
// Envelope.

/// Serializes `value` into a complete snapshot byte stream (header +
/// checksummed payload).
pub fn to_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_value(&value.to_value(), &mut payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses a complete snapshot byte stream back into a `T`.
///
/// Verification order: length → magic → schema version → payload length →
/// checksum → structural decode → typed deserialization. The first layer
/// that fails names the failure; nothing panics.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, SnapshotError> {
    let value = payload_value(bytes)?;
    Ok(T::from_value(&value)?)
}

/// Decodes the envelope down to the raw `Value` tree (shared by
/// [`from_bytes`] and diagnostics).
fn payload_value(bytes: &[u8]) -> Result<Value, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        // Too short to even hold a header — but if what *is* there does
        // not look like our magic, say "not a snapshot", which is the more
        // useful message for a wrong-file mistake.
        let prefix_ok = bytes.get(..MAGIC.len()).is_some_and(|p| p == MAGIC);
        if bytes.len() < MAGIC.len() || prefix_ok {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN as u64,
                have: bytes.len() as u64,
            });
        }
        return Err(SnapshotError::BadMagic);
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut version_bytes = [0u8; 4];
    let mut len_bytes = [0u8; 8];
    let mut crc_bytes = [0u8; 4];
    let Some(version_src) = rest.get(..4) else {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64,
            have: bytes.len() as u64,
        });
    };
    version_bytes.copy_from_slice(version_src);
    let version = u32::from_le_bytes(version_bytes);
    if version > SCHEMA_VERSION {
        return Err(SnapshotError::FutureSchema {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let (Some(len_src), Some(crc_src)) = (rest.get(4..12), rest.get(12..16)) else {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64,
            have: bytes.len() as u64,
        });
    };
    len_bytes.copy_from_slice(len_src);
    crc_bytes.copy_from_slice(crc_src);
    let payload_len = u64::from_le_bytes(len_bytes);
    let stored_crc = u32::from_le_bytes(crc_bytes);
    // The first check guarantees `bytes.len() >= HEADER_LEN`; stay total.
    let payload = bytes.get(HEADER_LEN..).unwrap_or(&[]);
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64 + payload_len,
            have: bytes.len() as u64,
        });
    }
    if (payload.len() as u64) > payload_len {
        return Err(SnapshotError::malformed(format!(
            "{} trailing bytes after the declared payload",
            payload.len() as u64 - payload_len
        )));
    }
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let mut cursor = Cursor {
        buf: payload,
        pos: 0,
    };
    let value = decode_value(&mut cursor, 0)?;
    if cursor.pos != payload.len() {
        return Err(SnapshotError::malformed(format!(
            "{} payload bytes left over after the root value",
            payload.len() - cursor.pos
        )));
    }
    Ok(value)
}

/// The temp-sibling path [`save`] stages through: `<path><TMP_SUFFIX>`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// Atomically writes `value` as a snapshot at `path`.
///
/// The bytes go to a `.tmp` sibling first, are fsynced, and the sibling is
/// renamed over `path`. A crash at any point leaves either the old file or
/// the new one — never a torn mixture. A stale `.tmp` from an interrupted
/// earlier save is silently replaced.
pub fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), SnapshotError> {
    let bytes = to_bytes(value);
    let tmp = tmp_path(path);
    let result = (|| -> Result<(), SnapshotError> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is the one that matters.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Loads and verifies the snapshot at `path`.
pub fn load<T: Deserialize>(path: &Path) -> Result<T, SnapshotError> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::de;

    /// Reference CRC table builder; documents the `TABLE` initializer in
    /// [`crc32`] and must stay in sync with it.
    fn crc32_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Demo {
        label: String,
        counters: Vec<u64>,
        bias: f64,
        armed: bool,
    }

    fn demo() -> Demo {
        Demo {
            label: "glacier".to_string(),
            counters: vec![1, 2, 3],
            bias: -0.0,
            armed: true,
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let bytes = to_bytes(&demo());
        let back: Demo = from_bytes(&bytes).expect("round trip");
        assert_eq!(back, demo());
        assert_eq!(
            back.bias.to_bits(),
            (-0.0f64).to_bits(),
            "float bits survive"
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = to_bytes(&demo());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<Demo>(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = to_bytes(&demo());
        for cut in 0..bytes.len() {
            let err = from_bytes::<Demo>(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = to_bytes(&demo());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            from_bytes::<Demo>(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn future_schema_refused() {
        let mut bytes = to_bytes(&demo());
        bytes[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        match from_bytes::<Demo>(&bytes) {
            Err(SnapshotError::FutureSchema { found, supported }) => {
                assert_eq!(found, SCHEMA_VERSION + 1);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected FutureSchema, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&demo());
        bytes.push(0);
        assert!(matches!(
            from_bytes::<Demo>(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_collection_length_rejected_before_allocation() {
        // Payload: a Seq claiming u64::MAX elements.
        let mut payload = vec![TAG_SEQ];
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn over_deep_nesting_rejected() {
        // 200 nested single-element Seqs around a Null.
        let mut payload = Vec::new();
        for _ in 0..200 {
            payload.push(TAG_SEQ);
            payload.extend_from_slice(&1u64.to_le_bytes());
        }
        payload.push(TAG_NULL);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = from_bytes::<Value>(&bytes).expect_err("over-deep must fail");
        assert!(err.to_string().contains("deeper"), "got: {err}");
    }

    #[test]
    fn schema_mismatch_is_invalid_not_panic() {
        // A well-formed envelope whose payload is a map missing Demo's
        // fields: decodes structurally, fails typed deserialization.
        let wrong = vec![(Value::Str("nope".to_string()), Value::U64(1))];
        let bytes = to_bytes(&Value::Map(wrong));
        assert!(matches!(
            from_bytes::<Demo>(&bytes),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn save_is_atomic_and_load_verifies() {
        let dir = std::env::temp_dir().join("glacsweb-snapshot-test-save");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("demo.snap");
        save(&demo(), &path).expect("save");
        assert!(!tmp_path(&path).exists(), "tmp sibling renamed away");
        let back: Demo = load(&path).expect("load");
        assert_eq!(back, demo());
        // Overwrite with new content: still atomic, still loads.
        let mut second = demo();
        second.counters.push(99);
        save(&second, &path).expect("second save");
        let back: Demo = load(&path).expect("second load");
        assert_eq!(back, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load::<Demo>(Path::new("/nonexistent/glacsweb.snap")).expect_err("no file");
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn de_error_converts_to_invalid() {
        let e: SnapshotError = de::Error::custom("bad field").into();
        assert!(matches!(e, SnapshotError::Invalid(_)));
        assert!(e.to_string().contains("bad field"));
    }

    #[test]
    fn dead_table_builder_matches_const_table() {
        // `crc32_table` documents the TABLE initializer; keep them in sync.
        let table = crc32_table();
        let mut probe = Vec::new();
        for i in 0..=255u8 {
            probe.push(i);
        }
        let mut crc = u32::MAX;
        for &b in &probe {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ table[idx];
        }
        assert_eq!(crc ^ u32::MAX, crc32(&probe));
    }
}
