//! Deterministic fault injection for the Glacsweb reproduction.
//!
//! §VI of the paper is a catalogue of everything that went wrong on the
//! glacier: GPRS attaches degrading with the weather, the intermittent
//! RS-232 cable to the dGPS, CF-card filesystem corruption, the
//! Southampton server going dark, total battery exhaustion resetting the
//! RTC, the probe radio gateway dying, and SCP transfers hanging until
//! the watchdog cut the power. The seed reproduction could inject each of
//! these only by hand-toggling a mutator mid-run, which made chaos
//! experiments ad-hoc and non-replayable.
//!
//! This crate unifies them:
//!
//! * [`Fault`] — one variant per §VI failure mode;
//! * [`FaultSpec`] / [`FaultPlan`] — a declarative schedule (target,
//!   onset, duration, optional recurrence) the deployment event loop
//!   replays deterministically from its seed;
//! * [`RetryPolicy`] — exponential backoff with jitter and a max-attempt
//!   bound, adopted by the GPRS attach path and the server control
//!   fetches (deadline-capped by the station watchdog at the call site);
//! * [`RecoveryTracker`] — per-fault MTTR, windows degraded vs lost while
//!   a fault was active, and backlog drainage after clearance.
//!
//! The crate deliberately depends only on `glacsweb-sim` so every other
//! layer (link, station, server, core) can depend on it without cycles;
//! *applying* a fault to a station or server stays in `glacsweb` core,
//! which calls the same thin mutators (`inject_rs232_fault`,
//! `inject_card_corruption`, `set_unreachable`, …) that used to be
//! toggled by hand.
//!
//! # Example
//!
//! ```
//! use glacsweb_faults::{Fault, FaultPlan, FaultSpec, FaultTarget};
//! use glacsweb_sim::SimDuration;
//!
//! let plan = FaultPlan::new()
//!     .with(FaultSpec::new(
//!         Fault::ServerUnreachable,
//!         FaultTarget::Server,
//!         SimDuration::from_days(3),
//!         SimDuration::from_days(7),
//!     ))
//!     .with(
//!         FaultSpec::new(
//!             Fault::Rs232Fault,
//!             FaultTarget::Base,
//!             SimDuration::from_days(1),
//!             SimDuration::from_days(2),
//!         )
//!         .recurring(SimDuration::from_days(10)),
//!     );
//! plan.validate().expect("coherent schedule");
//! assert_eq!(plan.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod retry;
mod tracker;

pub use fault::{Fault, FaultPlan, FaultSpec, FaultTarget};
pub use retry::RetryPolicy;
pub use tracker::{FaultRecord, FaultRecoverySummary, RecoveryTracker, WindowClass};
