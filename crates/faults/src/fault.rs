//! The fault vocabulary and the declarative chaos schedule.

use glacsweb_sim::{ConfigError, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What a fault afflicts.
///
/// Mirrors the deployment topology: the two Gumsense stations, an
/// individual subglacial probe, or the Southampton server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The glacier base station.
    Base,
    /// The café dGPS reference station.
    Reference,
    /// One subglacial probe, by its paper numbering (21, 22, …).
    Probe(u32),
    /// The Southampton server.
    Server,
}

impl FaultTarget {
    /// `true` for the two Gumsense stations.
    pub fn is_station(self) -> bool {
        matches!(self, FaultTarget::Base | FaultTarget::Reference)
    }
}

/// One of the paper's §VI failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// §I: "communications fail … frequently, especially in the wetter
    /// summer environment" — multiplies the station's GPRS weather
    /// multiplier, degrading attaches and shortening sessions.
    GprsDegradation {
        /// Extra multiplier on the attach-failure probability (≥ 1;
        /// large values approximate a full blackout — the link model
        /// caps the resulting failure probability at 95 %).
        severity: f64,
    },
    /// §VI: the intermittent RS-232 cable between the Gumstix and the
    /// dGPS receiver — readings strand on the receiver's card.
    Rs232Fault,
    /// §VII: CF/SD-card filesystem corruption, detected (lossily
    /// recovered) at the next window's mount. Instantaneous.
    SdCorruption,
    /// §VI: the Southampton end goes dark; uploads are lost in flight
    /// and every control fetch fails.
    ServerUnreachable,
    /// §IV: total battery exhaustion — the RTC resets to 1970 and the
    /// RAM schedule is lost; recovery is the GPS-fix/sleep-a-day path.
    /// Instantaneous (the battery then recharges from the environment).
    PowerFailure,
    /// §V: the probe radio goes silent. Targeted at a station it kills
    /// the wired gateway probe (every probe unreachable); targeted at
    /// [`FaultTarget::Probe`] it silences just that probe's radio.
    ProbeRadioBlackout,
    /// §VI: "a SCP transfer hangs" — uploads stall until the two-hour
    /// watchdog cuts the window.
    StuckTransfer,
}

impl Fault {
    /// Short stable label used in metrics and rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            Fault::GprsDegradation { .. } => "gprs_degradation",
            Fault::Rs232Fault => "rs232_fault",
            Fault::SdCorruption => "sd_corruption",
            Fault::ServerUnreachable => "server_unreachable",
            Fault::PowerFailure => "power_failure",
            Fault::ProbeRadioBlackout => "probe_radio_blackout",
            Fault::StuckTransfer => "stuck_transfer",
        }
    }

    /// `true` for one-shot faults that fire at onset and have no
    /// activate/clear span (their `duration` is ignored).
    pub fn is_instantaneous(self) -> bool {
        matches!(self, Fault::SdCorruption | Fault::PowerFailure)
    }
}

/// One scheduled fault: what, where, when, for how long, how often.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The failure mode.
    pub fault: Fault,
    /// What it afflicts.
    pub target: FaultTarget,
    /// Onset, measured from the deployment start.
    pub onset: SimDuration,
    /// How long the fault stays active (ignored for instantaneous
    /// faults).
    pub duration: SimDuration,
    /// Onset-to-onset period for a recurring fault; `None` fires once.
    pub recurrence: Option<SimDuration>,
}

impl FaultSpec {
    /// Creates a one-shot spec.
    pub fn new(
        fault: Fault,
        target: FaultTarget,
        onset: SimDuration,
        duration: SimDuration,
    ) -> Self {
        FaultSpec {
            fault,
            target,
            onset,
            duration,
            recurrence: None,
        }
    }

    /// Makes the spec recur with the given onset-to-onset period.
    pub fn recurring(mut self, every: SimDuration) -> Self {
        self.recurrence = Some(every);
        self
    }

    /// The absolute first activation instant for a deployment starting
    /// at `start`.
    pub fn first_onset(&self, start: SimTime) -> SimTime {
        start + self.onset
    }

    /// Validates internal coherence.
    ///
    /// # Errors
    ///
    /// Returns the first incoherent field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Fault::GprsDegradation { severity } = self.fault {
            if !severity.is_finite() || severity < 1.0 {
                return Err(ConfigError::new(
                    "fault",
                    "severity",
                    format!("{severity} must be a finite multiplier >= 1"),
                ));
            }
        }
        if !self.fault.is_instantaneous() && self.duration.as_secs() == 0 {
            return Err(ConfigError::new(
                "fault",
                "duration",
                format!("{} needs a non-zero duration", self.fault.label()),
            ));
        }
        match (self.fault, self.target) {
            (Fault::ServerUnreachable, FaultTarget::Server) => {}
            (Fault::ServerUnreachable, t) => {
                return Err(ConfigError::new(
                    "fault",
                    "target",
                    format!("server_unreachable targets the server, not {t:?}"),
                ));
            }
            (_, FaultTarget::Server) => {
                return Err(ConfigError::new(
                    "fault",
                    "target",
                    format!("{} cannot target the server", self.fault.label()),
                ));
            }
            (Fault::ProbeRadioBlackout, _) => {}
            (_, FaultTarget::Probe(id)) => {
                return Err(ConfigError::new(
                    "fault",
                    "target",
                    format!("{} cannot target probe {id}", self.fault.label()),
                ));
            }
            _ => {}
        }
        if let Some(every) = self.recurrence {
            let floor = if self.fault.is_instantaneous() {
                SimDuration::from_secs(1)
            } else {
                self.duration
            };
            if every <= floor {
                return Err(ConfigError::new(
                    "fault",
                    "recurrence",
                    format!(
                        "period {every} must exceed the active span {floor} or activations overlap"
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// A deterministic chaos schedule: the full set of faults one run will
/// replay. Two runs with the same seed and the same plan are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults — the healthy baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a spec, builder-style.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds a spec in place.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// The scheduled specs, in insertion order (indices into this slice
    /// identify faults in metrics).
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of scheduled specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Validates every spec.
    ///
    /// # Errors
    ///
    /// Returns the first invalid spec's error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for spec in &self.specs {
            spec.validate()?;
        }
        Ok(())
    }

    /// `(first activation instant, spec index)` pairs for a deployment
    /// starting at `start` — what the event loop seeds its queue with.
    pub fn first_onsets(&self, start: SimTime) -> Vec<(SimTime, usize)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.first_onset(start), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week_outage() -> FaultSpec {
        FaultSpec::new(
            Fault::ServerUnreachable,
            FaultTarget::Server,
            SimDuration::from_days(3),
            SimDuration::from_days(7),
        )
    }

    #[test]
    fn plan_builds_and_validates() {
        let plan = FaultPlan::new().with(week_outage()).with(FaultSpec::new(
            Fault::Rs232Fault,
            FaultTarget::Base,
            SimDuration::from_days(1),
            SimDuration::from_days(2),
        ));
        plan.validate().expect("valid");
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn first_onsets_are_start_relative() {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let plan = FaultPlan::new().with(week_outage());
        let onsets = plan.first_onsets(start);
        assert_eq!(onsets, vec![(start + SimDuration::from_days(3), 0)]);
    }

    #[test]
    fn server_fault_must_target_the_server() {
        let mut s = week_outage();
        s.target = FaultTarget::Base;
        let e = s.validate().unwrap_err();
        assert_eq!(e.field(), "target");
        let s = FaultSpec::new(
            Fault::Rs232Fault,
            FaultTarget::Server,
            SimDuration::ZERO,
            SimDuration::from_days(1),
        );
        assert_eq!(s.validate().unwrap_err().field(), "target");
    }

    #[test]
    fn probe_targets_only_fit_radio_blackouts() {
        let ok = FaultSpec::new(
            Fault::ProbeRadioBlackout,
            FaultTarget::Probe(21),
            SimDuration::ZERO,
            SimDuration::from_days(1),
        );
        ok.validate().expect("valid");
        let bad = FaultSpec::new(
            Fault::Rs232Fault,
            FaultTarget::Probe(21),
            SimDuration::ZERO,
            SimDuration::from_days(1),
        );
        assert_eq!(bad.validate().unwrap_err().field(), "target");
    }

    #[test]
    fn durations_and_recurrence_are_checked() {
        let zero = FaultSpec::new(
            Fault::Rs232Fault,
            FaultTarget::Base,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(zero.validate().unwrap_err().field(), "duration");
        // Instantaneous faults need no duration.
        let corrupt = FaultSpec::new(
            Fault::SdCorruption,
            FaultTarget::Base,
            SimDuration::from_days(1),
            SimDuration::ZERO,
        );
        corrupt.validate().expect("instantaneous");
        // Overlapping recurrence is rejected.
        let overlapping = week_outage().recurring(SimDuration::from_days(5));
        assert_eq!(overlapping.validate().unwrap_err().field(), "recurrence");
        week_outage()
            .recurring(SimDuration::from_days(14))
            .validate()
            .expect("valid recurrence");
    }

    #[test]
    fn degradation_severity_is_checked() {
        let weak = FaultSpec::new(
            Fault::GprsDegradation { severity: 0.5 },
            FaultTarget::Base,
            SimDuration::ZERO,
            SimDuration::from_days(1),
        );
        assert_eq!(weak.validate().unwrap_err().field(), "severity");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Fault::StuckTransfer.label(), "stuck_transfer");
        assert!(Fault::SdCorruption.is_instantaneous());
        assert!(Fault::PowerFailure.is_instantaneous());
        assert!(!Fault::ServerUnreachable.is_instantaneous());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new().with(week_outage().recurring(SimDuration::from_days(30)));
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
