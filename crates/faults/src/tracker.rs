//! Recovery bookkeeping: MTTR, degraded/lost windows, backlog drainage.

use glacsweb_sim::{Bytes, SimTime};
use serde::{Deserialize, Serialize};

use crate::fault::FaultTarget;

/// How one daily window fared, as classified by the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowClass {
    /// Ran to completion with a connected uplink.
    Healthy,
    /// Ran, but cut by the watchdog, died mid-window, or never attached.
    Degraded,
    /// Never ran — the station was unpowered at window time.
    Lost,
}

/// The life of one fault activation.
///
/// A recurring spec produces one record per activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Index into the plan's spec list.
    pub spec: usize,
    /// The fault's stable label (`"rs232_fault"`, …).
    pub label: String,
    /// What it afflicted.
    pub target: FaultTarget,
    /// When the fault activated.
    pub activated: SimTime,
    /// When the fault condition was lifted (instantaneous faults clear
    /// at activation).
    pub cleared: Option<SimTime>,
    /// First healthy window after clearance — the service-restoration
    /// instant MTTR is measured to.
    pub restored: Option<SimTime>,
    /// Windows that ran degraded while the fault was unresolved.
    pub windows_degraded: u64,
    /// Windows lost outright while the fault was unresolved.
    pub windows_lost: u64,
    /// Upload backlog on the afflicted station when the fault cleared.
    pub backlog_at_clear: Option<Bytes>,
    /// When that backlog finished draining, if it has.
    pub backlog_drained_at: Option<SimTime>,
}

impl FaultRecord {
    /// Mean-time-to-recovery: activation → first healthy window.
    pub fn mttr(&self) -> Option<glacsweb_sim::SimDuration> {
        self.restored.map(|r| r.saturating_since(self.activated))
    }

    /// `true` while the fault condition itself is still present.
    pub fn is_active(&self) -> bool {
        self.cleared.is_none()
    }

    /// `true` once service came back after the fault.
    pub fn is_recovered(&self) -> bool {
        self.restored.is_some()
    }

    fn applies_to_station(&self, station: FaultTarget) -> bool {
        match self.target {
            FaultTarget::Base | FaultTarget::Reference => self.target == station,
            // A server outage afflicts every station's window; a probe
            // blackout shows up in the base station's probe jobs.
            FaultTarget::Server => true,
            FaultTarget::Probe(_) => station == FaultTarget::Base,
        }
    }
}

/// Aggregated recovery metrics over a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRecoverySummary {
    /// Fault activations injected.
    pub injected: u64,
    /// Activations whose fault condition has lifted.
    pub cleared: u64,
    /// Activations that saw a healthy window after clearing.
    pub recovered: u64,
    /// Mean time-to-recovery over recovered activations, in hours
    /// (0 when none recovered).
    pub mean_mttr_hours: f64,
    /// Windows degraded across all unresolved faults.
    pub windows_degraded: u64,
    /// Windows lost across all unresolved faults.
    pub windows_lost: u64,
    /// Activations whose post-clearance backlog fully drained.
    pub backlogs_drained: u64,
}

/// Records fault activations and watches windows for recovery.
///
/// The deployment event loop drives it: [`activate`](Self::activate) /
/// [`clear`](Self::clear) when the plan toggles a fault, and
/// [`note_window`](Self::note_window) after every daily window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryTracker {
    records: Vec<FaultRecord>,
}

impl RecoveryTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        RecoveryTracker::default()
    }

    /// Records a fault activation.
    pub fn activate(&mut self, spec: usize, label: &str, target: FaultTarget, t: SimTime) {
        self.records.push(FaultRecord {
            spec,
            label: label.to_string(),
            target,
            activated: t,
            cleared: None,
            restored: None,
            windows_degraded: 0,
            windows_lost: 0,
            backlog_at_clear: None,
            backlog_drained_at: None,
        });
    }

    /// Records the clearance of the most recent unresolved activation of
    /// `spec`, noting the afflicted station's upload backlog at that
    /// instant (None for targets without a backlog).
    pub fn clear(&mut self, spec: usize, t: SimTime, backlog: Option<Bytes>) {
        if let Some(r) = self
            .records
            .iter_mut()
            .rev()
            .find(|r| r.spec == spec && r.cleared.is_none())
        {
            r.cleared = Some(t);
            r.backlog_at_clear = backlog;
        }
    }

    /// Classifies one daily window against every unresolved fault record
    /// that applies to `station`, advancing degraded/lost counts, marking
    /// restoration (first healthy window after clearance), and watching
    /// the backlog drain.
    pub fn note_window(
        &mut self,
        station: FaultTarget,
        t: SimTime,
        class: WindowClass,
        backlog: Bytes,
    ) {
        for r in &mut self.records {
            if !r.applies_to_station(station) || r.restored.is_some() {
                continue;
            }
            match (r.cleared, class) {
                (None, WindowClass::Degraded) => r.windows_degraded += 1,
                (None, WindowClass::Lost) => r.windows_lost += 1,
                (None, WindowClass::Healthy) => {}
                (Some(cleared), _) if t < cleared => {}
                (Some(_), WindowClass::Healthy) => r.restored = Some(t),
                (Some(_), WindowClass::Degraded) => r.windows_degraded += 1,
                (Some(_), WindowClass::Lost) => r.windows_lost += 1,
            }
        }
        // Backlog drainage is tracked past restoration: the fault can be
        // long gone while the store is still catching up.
        for r in &mut self.records {
            if r.applies_to_station(station)
                && r.cleared.is_some()
                && r.backlog_drained_at.is_none()
                && r.backlog_at_clear.unwrap_or(Bytes::ZERO) > Bytes::ZERO
                && backlog == Bytes::ZERO
            {
                r.backlog_drained_at = Some(t);
            }
        }
    }

    /// Every activation recorded so far.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Aggregates the run's recovery metrics.
    pub fn summary(&self) -> FaultRecoverySummary {
        let injected = self.records.len() as u64;
        let cleared = self.records.iter().filter(|r| r.cleared.is_some()).count() as u64;
        let recovered: Vec<_> = self.records.iter().filter_map(FaultRecord::mttr).collect();
        let mean_mttr_hours = if recovered.is_empty() {
            0.0
        } else {
            recovered
                .iter()
                .map(|d| d.as_secs() as f64 / 3600.0)
                .sum::<f64>()
                / recovered.len() as f64
        };
        FaultRecoverySummary {
            injected,
            cleared,
            recovered: recovered.len() as u64,
            mean_mttr_hours,
            windows_degraded: self.records.iter().map(|r| r.windows_degraded).sum(),
            windows_lost: self.records.iter().map(|r| r.windows_lost).sum(),
            backlogs_drained: self
                .records
                .iter()
                .filter(|r| r.backlog_drained_at.is_some())
                .count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_sim::SimDuration;

    fn t0() -> SimTime {
        SimTime::from_ymd_hms(2009, 6, 1, 12, 0, 0)
    }

    fn day(n: u64) -> SimTime {
        t0() + SimDuration::from_days(n)
    }

    #[test]
    fn mttr_spans_activation_to_first_healthy_window() {
        let mut tr = RecoveryTracker::new();
        tr.activate(0, "server_unreachable", FaultTarget::Server, t0());
        tr.note_window(FaultTarget::Base, day(1), WindowClass::Degraded, Bytes(100));
        tr.clear(0, day(3), Some(Bytes(5000)));
        tr.note_window(FaultTarget::Base, day(4), WindowClass::Healthy, Bytes(500));
        tr.note_window(FaultTarget::Base, day(5), WindowClass::Healthy, Bytes::ZERO);
        let r = &tr.records()[0];
        assert_eq!(r.cleared, Some(day(3)));
        assert_eq!(r.restored, Some(day(4)));
        assert_eq!(r.mttr(), Some(SimDuration::from_days(4)));
        assert_eq!(r.windows_degraded, 1);
        assert_eq!(
            r.backlog_drained_at,
            Some(day(5)),
            "backlog watched past restoration"
        );
        let s = tr.summary();
        assert_eq!(s.injected, 1);
        assert_eq!(s.recovered, 1);
        assert!((s.mean_mttr_hours - 96.0).abs() < 1e-9);
        assert_eq!(s.backlogs_drained, 1);
    }

    #[test]
    fn lost_windows_count_separately_from_degraded() {
        let mut tr = RecoveryTracker::new();
        tr.activate(0, "power_failure", FaultTarget::Base, t0());
        tr.clear(0, t0(), None);
        tr.note_window(FaultTarget::Base, day(1), WindowClass::Lost, Bytes::ZERO);
        tr.note_window(
            FaultTarget::Base,
            day(2),
            WindowClass::Degraded,
            Bytes::ZERO,
        );
        tr.note_window(FaultTarget::Base, day(3), WindowClass::Healthy, Bytes::ZERO);
        let r = &tr.records()[0];
        assert_eq!((r.windows_lost, r.windows_degraded), (1, 1));
        assert_eq!(r.restored, Some(day(3)));
    }

    #[test]
    fn station_faults_ignore_the_other_stations_windows() {
        let mut tr = RecoveryTracker::new();
        tr.activate(0, "rs232_fault", FaultTarget::Base, t0());
        tr.clear(0, day(1), Some(Bytes(10)));
        // A healthy *reference* window must not mark the base fault
        // restored.
        tr.note_window(
            FaultTarget::Reference,
            day(2),
            WindowClass::Healthy,
            Bytes::ZERO,
        );
        assert!(!tr.records()[0].is_recovered());
        tr.note_window(FaultTarget::Base, day(2), WindowClass::Healthy, Bytes::ZERO);
        assert!(tr.records()[0].is_recovered());
    }

    #[test]
    fn recurring_activations_get_separate_records() {
        let mut tr = RecoveryTracker::new();
        tr.activate(0, "rs232_fault", FaultTarget::Base, t0());
        tr.clear(0, day(1), None);
        tr.activate(0, "rs232_fault", FaultTarget::Base, day(10));
        tr.clear(0, day(11), None);
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.summary().cleared, 2);
    }

    #[test]
    fn windows_before_clearance_do_not_restore() {
        let mut tr = RecoveryTracker::new();
        tr.activate(0, "server_unreachable", FaultTarget::Server, t0());
        // Window at day 1, fault clears at day 3 — even though the window
        // classified healthy (e.g. local fallback), it predates clearance.
        tr.note_window(FaultTarget::Base, day(1), WindowClass::Healthy, Bytes::ZERO);
        tr.clear(0, day(3), None);
        assert!(!tr.records()[0].is_recovered());
    }
}
