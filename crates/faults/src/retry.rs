//! Exponential backoff with jitter for the paper's flaky channels.

use glacsweb_obs::{Event, Origin, Recorder};
use glacsweb_sim::{ConfigError, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A bounded exponential-backoff retry policy.
///
/// Attempt numbering: attempt 0 is the first try (no wait); the wait
/// *before* retry `n` (n ≥ 1) is `base_backoff × multiplier^(n-1)`,
/// capped at `max_backoff`. Jitter spreads the wait uniformly over
/// `±jitter` of its nominal value so repeated failures don't retry in
/// lockstep; the jittered wait never exceeds `max_backoff`.
///
/// Deadline capping is the caller's job: stations clamp every wait with
/// `Watchdog::cap` so a backoff can never outlive the two-hour window.
///
/// # Example
///
/// ```
/// use glacsweb_faults::RetryPolicy;
/// use glacsweb_sim::SimDuration;
///
/// let p = RetryPolicy::gprs_attach();
/// assert_eq!(p.backoff(0), SimDuration::ZERO);
/// assert_eq!(p.backoff(1), p.base_backoff);
/// assert!(p.backoff(30) <= p.max_backoff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, first try included (≥ 1).
    pub max_attempts: u32,
    /// Wait before the first retry.
    pub base_backoff: SimDuration,
    /// Growth factor per retry (≥ 1).
    pub multiplier: f64,
    /// Upper bound on any single wait.
    pub max_backoff: SimDuration,
    /// Uniform jitter fraction in `[0, 1]` applied to each wait.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The GPRS attach policy: 3 attempts, 30 s → 60 s backoff with 25 %
    /// jitter (attach failures cost 45 s each, so the waits roughly
    /// double the spacing the deployed retry-immediately loop had).
    pub fn gprs_attach() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(30),
            multiplier: 2.0,
            max_backoff: SimDuration::from_mins(5),
            jitter: 0.25,
        }
    }

    /// The server control-fetch policy (override/special/update): 3
    /// attempts with short waits — an HTTP timeout is cheap next to an
    /// attach.
    pub fn server_fetch() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_secs(15),
            multiplier: 2.0,
            max_backoff: SimDuration::from_mins(2),
            jitter: 0.25,
        }
    }

    /// A single attempt, no waiting — disables retrying entirely.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            multiplier: 1.0,
            max_backoff: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts == 0 {
            return Err(ConfigError::new(
                "retry",
                "max_attempts",
                "need at least one attempt",
            ));
        }
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(ConfigError::new(
                "retry",
                "multiplier",
                format!("{} must be a finite factor >= 1", self.multiplier),
            ));
        }
        if self.max_backoff < self.base_backoff {
            return Err(ConfigError::new(
                "retry",
                "max_backoff",
                format!(
                    "{} below base backoff {}",
                    self.max_backoff, self.base_backoff
                ),
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(ConfigError::new(
                "retry",
                "jitter",
                format!("{} not a fraction", self.jitter),
            ));
        }
        Ok(())
    }

    /// The nominal (jitter-free) wait before retry `attempt`.
    ///
    /// Attempt 0 — the first try — waits nothing. The wait grows
    /// geometrically and saturates at [`max_backoff`](Self::max_backoff)
    /// for *any* attempt count: the growth factor can overflow `f64` to
    /// infinity at large attempts or multipliers, and `0 × ∞` is NaN, so
    /// anything non-finite (or merely above the cap) is pinned to
    /// `max_backoff` before it can reach `SimDuration::from_secs_f64`
    /// (which panics on non-finite input). A zero base backoff stays
    /// zero no matter the multiplier — it used to surface as the *cap*
    /// through the NaN path.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        if attempt == 0 || self.base_backoff == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let base = self.base_backoff.as_secs() as f64;
        let cap = self.max_backoff.as_secs() as f64;
        let growth = self
            .multiplier
            .powi(attempt.saturating_sub(1).min(64) as i32);
        let nominal = base * growth;
        if !nominal.is_finite() || nominal >= cap {
            return self.max_backoff;
        }
        SimDuration::from_secs_f64(nominal)
    }

    /// The jittered wait before retry `attempt`: uniform over
    /// `backoff(attempt) × [1 - jitter, 1 + jitter]`, never above
    /// [`max_backoff`](Self::max_backoff). Draws from `rng` only when
    /// both the wait and the jitter are non-zero, so a policy with no
    /// jitter perturbs no random stream.
    pub fn backoff_jittered(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let nominal = self.backoff(attempt);
        if nominal == SimDuration::ZERO || self.jitter == 0.0 {
            return nominal;
        }
        let factor = 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
        let secs = (nominal.as_secs() as f64 * factor).min(self.max_backoff.as_secs() as f64);
        SimDuration::from_secs_f64(secs.max(0.0))
    }

    /// [`backoff_jittered`](Self::backoff_jittered), additionally
    /// recording the attempt and the chosen wait to `obs`: a
    /// `retry_wait` event (with the operation label), a `retry_attempts`
    /// counter, and a `retry_wait_secs` histogram observation.
    pub fn backoff_jittered_observed(
        &self,
        attempt: u32,
        rng: &mut SimRng,
        at: SimTime,
        origin: Origin,
        op: &'static str,
        obs: &mut dyn Recorder,
    ) -> SimDuration {
        let wait = self.backoff_jittered(attempt, rng);
        if obs.enabled() && attempt > 0 {
            obs.counter(at, origin, "retry_attempts", 1);
            obs.observe(origin, "retry_wait_secs", wait.as_secs());
            obs.event(
                Event::new(at, origin, "retry_wait")
                    .with("op", op)
                    .with("attempt", attempt)
                    .with("wait_secs", wait.as_secs()),
            );
        }
        wait
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::gprs_attach()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_secs(30),
            multiplier: 2.0,
            max_backoff: SimDuration::from_mins(5),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(0), SimDuration::ZERO);
        assert_eq!(p.backoff(1), SimDuration::from_secs(30));
        assert_eq!(p.backoff(2), SimDuration::from_secs(60));
        assert_eq!(p.backoff(3), SimDuration::from_secs(120));
        assert_eq!(p.backoff(4), SimDuration::from_secs(240));
        assert_eq!(p.backoff(5), SimDuration::from_mins(5), "saturated");
        assert_eq!(p.backoff(60), SimDuration::from_mins(5));
    }

    #[test]
    fn jitter_stays_within_band_and_cap() {
        let p = RetryPolicy::gprs_attach();
        let mut rng = SimRng::seed_from(9);
        for attempt in 1..6 {
            let nominal = p.backoff(attempt).as_secs() as f64;
            for _ in 0..50 {
                let j = p.backoff_jittered(attempt, &mut rng).as_secs() as f64;
                assert!(j <= p.max_backoff.as_secs() as f64 + 1.0);
                assert!(j >= nominal * (1.0 - p.jitter) - 1.0, "{j} vs {nominal}");
                assert!(j <= nominal * (1.0 + p.jitter) + 1.0, "{j} vs {nominal}");
            }
        }
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::gprs_attach()
        };
        let mut a = SimRng::seed_from(4);
        let mut b = SimRng::seed_from(4);
        let _ = p.backoff_jittered(3, &mut a);
        assert_eq!(a.f64(), b.f64(), "rng untouched");
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut p = RetryPolicy::gprs_attach();
        p.max_attempts = 0;
        assert_eq!(p.validate().unwrap_err().field(), "max_attempts");
        let mut p = RetryPolicy::gprs_attach();
        p.multiplier = 0.5;
        assert_eq!(p.validate().unwrap_err().field(), "multiplier");
        let mut p = RetryPolicy::gprs_attach();
        p.max_backoff = SimDuration::from_secs(1);
        assert_eq!(p.validate().unwrap_err().field(), "max_backoff");
        let mut p = RetryPolicy::gprs_attach();
        p.jitter = 1.5;
        assert_eq!(p.validate().unwrap_err().field(), "jitter");
        RetryPolicy::gprs_attach().validate().expect("valid");
        RetryPolicy::server_fetch().validate().expect("valid");
        RetryPolicy::none().validate().expect("valid");
    }

    #[test]
    fn u32_max_attempt_saturates_at_cap() {
        let p = RetryPolicy::gprs_attach();
        assert_eq!(p.backoff(u32::MAX), p.max_backoff);
        let mut rng = SimRng::seed_from(1);
        assert!(p.backoff_jittered(u32::MAX, &mut rng) <= p.max_backoff);
    }

    #[test]
    fn huge_multiplier_overflow_saturates_not_panics() {
        let p = RetryPolicy {
            max_attempts: 9,
            base_backoff: SimDuration::from_secs(30),
            multiplier: f64::MAX,
            max_backoff: SimDuration::from_mins(5),
            jitter: 0.0,
        };
        p.validate().expect("finite multiplier >= 1 is valid");
        // multiplier^(n-1) overflows to +inf for n >= 3.
        assert_eq!(p.backoff(5), p.max_backoff);
        assert_eq!(p.backoff(u32::MAX), p.max_backoff);
    }

    #[test]
    fn zero_base_with_huge_multiplier_is_zero_not_cap() {
        let p = RetryPolicy {
            max_attempts: 9,
            base_backoff: SimDuration::ZERO,
            multiplier: f64::MAX,
            max_backoff: SimDuration::from_mins(5),
            jitter: 0.0,
        };
        // 0 × ∞ is NaN; `NaN.min(cap)` returns the cap, so the old code
        // reported a five-minute wait for a policy whose every nominal
        // wait is zero.
        assert_eq!(p.backoff(3), SimDuration::ZERO);
        assert_eq!(p.backoff(u32::MAX), SimDuration::ZERO);
    }

    #[test]
    fn observed_backoff_matches_plain_and_records() {
        use glacsweb_obs::MemoryRecorder;
        let p = RetryPolicy::gprs_attach();
        let at = glacsweb_sim::SimTime::from_ymd_hms(2009, 6, 1, 12, 0, 0);
        let origin = Origin::new("retry", "base");
        let mut obs = MemoryRecorder::default();
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for attempt in 0..4 {
            let plain = p.backoff_jittered(attempt, &mut a);
            let observed =
                p.backoff_jittered_observed(attempt, &mut b, at, origin, "gprs_attach", &mut obs);
            assert_eq!(plain, observed, "telemetry must not change the wait");
        }
        assert_eq!(obs.counter_value(origin, "retry_attempts"), 3);
        assert_eq!(obs.events().len(), 3, "attempt 0 records nothing");
    }

    proptest::proptest! {
        /// The issue's pin: for ANY attempt count — u32::MAX included —
        /// the nominal wait saturates at `max_backoff` instead of going
        /// non-finite.
        #[test]
        fn backoff_never_exceeds_cap(
            base in 0u64..=600,
            extra in 0u64..=3_600,
            mult in 1.0f64..1e9,
            attempt in proptest::prelude::any::<u32>(),
        ) {
            let p = RetryPolicy {
                max_attempts: 5,
                base_backoff: SimDuration::from_secs(base),
                multiplier: mult,
                max_backoff: SimDuration::from_secs(base + extra),
                jitter: 0.0,
            };
            proptest::prop_assert!(p.validate().is_ok());
            proptest::prop_assert!(p.backoff(attempt) <= p.max_backoff);
        }

        /// Jitter never pushes a wait above `max_backoff` either.
        #[test]
        fn jittered_backoff_never_exceeds_cap(
            base in 0u64..=600,
            extra in 0u64..=3_600,
            mult in 1.0f64..1e9,
            jitter in 0.0f64..1.0,
            attempt in proptest::prelude::any::<u32>(),
            seed in proptest::prelude::any::<u64>(),
        ) {
            let p = RetryPolicy {
                max_attempts: 5,
                base_backoff: SimDuration::from_secs(base),
                multiplier: mult,
                max_backoff: SimDuration::from_secs(base + extra),
                jitter,
            };
            let mut rng = SimRng::seed_from(seed);
            proptest::prop_assert!(p.backoff_jittered(attempt, &mut rng) <= p.max_backoff);
        }
    }
}
