//! Power substrate for the Glacsweb reproduction.
//!
//! Models the base/reference-station power system the paper describes:
//! a lead-acid battery bank charged by a 10 W solar panel, a 50 W wind
//! generator (base station) or café mains (reference station, April to
//! September only), feeding the Gumsense board and its peripherals.
//!
//! The station logic never sees this crate's internals — exactly like the
//! real system, it only sees the battery voltage sampled every thirty
//! minutes by the MSP430 ([`LeadAcidBattery::terminal_voltage`]), and the
//! paper's entire power-management design (§III) keys off that one signal.
//!
//! # Example
//!
//! ```
//! use glacsweb_power::{budget, LeadAcidBattery};
//! use glacsweb_sim::{AmpHours, SimDuration, Volts, Watts};
//!
//! // The paper's §III worked example: a 3.6 W dGPS left on continuously
//! // drains a 36 Ah bank in about 5 days…
//! let continuous = budget::time_to_deplete(AmpHours(36.0), Volts(12.0), Watts(3.6));
//! assert!((continuous.as_days_f64() - 5.0).abs() < 0.01);
//!
//! // …but duty-cycled as in power state 3 (12 readings/day, ~5 min each)
//! // the same bank lasts around 117 days.
//! let duty = SimDuration::from_secs(308 * 12);
//! let state3 = budget::time_to_deplete_duty(
//!     AmpHours(36.0), Volts(12.0), Watts(3.6), duty,
//! );
//! assert!((state3.as_days_f64() - 117.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
pub mod budget;
mod charger;
mod load;
mod rail;

pub use battery::{LeadAcidBattery, SleepGlide, VoltageCurve};
pub use charger::{Charger, MainsCharger, SolarPanel, WindTurbine};
pub use load::{LoadSet, LoadSnapshot};
pub use rail::PowerRail;
