//! The power rail: battery + chargers + loads integrated over time.

use std::cell::Cell;

use glacsweb_env::Environment;
use glacsweb_sim::{Amps, Celsius, SimDuration, SimTime, Volts, WattHours, Watts};
use serde::{de, Deserialize, Serialize, Value};

use crate::battery::LeadAcidBattery;
use crate::charger::{controller_taper, Charger};
use crate::load::LoadSet;

/// Memo of the last taper solve, keyed by the exact bit patterns of its
/// inputs (raw charger power and the battery's [`VoltageCurve`]
/// coefficients). A hit returns the exact `Watts` the last full bisection
/// produced for identical inputs — the solve is deterministic, so the
/// cached bits equal a fresh evaluation's. This pays off on the
/// mains-charged reference station, whose raw input (a constant 30 W) and
/// state of charge (pinned at full) repeat for weeks of sub-steps at a
/// time. Derived state: invisible to clones-for-comparison via the
/// always-equal `PartialEq` below.
///
/// [`VoltageCurve`]: crate::VoltageCurve
#[derive(Debug, Clone, Default)]
struct TaperMemo(Cell<Option<([u64; 4], f64)>>);

impl TaperMemo {
    fn get(&self, key: [u64; 4]) -> Option<Watts> {
        match self.0.get() {
            Some((k, w)) if k == key => Some(Watts(w)),
            _ => None,
        }
    }

    fn put(&self, key: [u64; 4], w: Watts) {
        self.0.set(Some((key, w.value())));
    }
}

impl PartialEq for TaperMemo {
    fn eq(&self, _: &Self) -> bool {
        true // derived state
    }
}

/// One station's complete power system.
///
/// The simulation loop advances the rail between events with
/// [`PowerRail::advance`]; the MSP430 model samples
/// [`PowerRail::measured_voltage`] every thirty minutes — the exact signal
/// the paper's Table II policy consumes.
#[derive(Debug, Clone)]
pub struct PowerRail {
    battery: LeadAcidBattery,
    chargers: Vec<Charger>,
    /// Per-charger harvested energy, aligned with `chargers`.
    harvest_by: Vec<WattHours>,
    loads: LoadSet,
    now: SimTime,
    harvested: WattHours,
    /// Seconds of brown-out (load demanded but battery empty).
    brownout_secs: u64,
    /// Scratch buffer of per-charger outputs for the current sub-step,
    /// aligned with `chargers` — lets `advance` evaluate each charger
    /// once per sub-step instead of three times (taper input, harvest
    /// total, per-source apportionment). Derived state, reused to avoid
    /// per-step allocation.
    output_buf: Vec<f64>,
    /// Single-entry memo of the last taper solve (see [`TaperMemo`]).
    taper: TaperMemo,
}

/// Equality ignores the scratch buffer and the taper memo: both are
/// derived per-sub-step state, rebuilt on the next `advance`, and a
/// freshly restored rail must compare equal to the one it was saved from.
impl PartialEq for PowerRail {
    fn eq(&self, other: &Self) -> bool {
        self.battery == other.battery
            && self.chargers == other.chargers
            && self.harvest_by == other.harvest_by
            && self.loads == other.loads
            && self.now == other.now
            && self.harvested == other.harvested
            && self.brownout_secs == other.brownout_secs
    }
}

// Hand-written (de)serialization, following the `LoadSet` precedent: the
// scratch output buffer and the taper memo are derived state and must not
// appear on the wire. Restore re-checks the `chargers`/`harvest_by`
// alignment invariant that `add_charger` maintains.
impl Serialize for PowerRail {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
            (Value::Str("battery".to_string()), self.battery.to_value()),
            // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
            (Value::Str("chargers".to_string()), self.chargers.to_value()),
            (
                // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
                Value::Str("harvest_by".to_string()),
                self.harvest_by.to_value(),
            ),
            // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
            (Value::Str("loads".to_string()), self.loads.to_value()),
            // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
            (Value::Str("now".to_string()), self.now.to_value()),
            (
                // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
                Value::Str("harvested".to_string()),
                self.harvested.to_value(),
            ),
            (
                // glacsweb: allow(perf-hygiene, reason = "snapshot-export keys; runs once per checkpoint save, never per substep")
                Value::Str("brownout_secs".to_string()),
                self.brownout_secs.to_value(),
            ),
        ])
    }
}

impl Deserialize for PowerRail {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let chargers: Vec<Charger> = de::field(v, "chargers")?;
        let harvest_by: Vec<WattHours> = de::field(v, "harvest_by")?;
        if chargers.len() != harvest_by.len() {
            // glacsweb: allow(perf-hygiene, reason = "restore-time error path; runs once per snapshot load, never per substep")
            return Err(de::Error::custom(format!(
                "power rail: {} chargers but {} harvest accumulators",
                chargers.len(),
                harvest_by.len()
            )));
        }
        Ok(PowerRail {
            battery: de::field(v, "battery")?,
            chargers,
            harvest_by,
            loads: de::field(v, "loads")?,
            now: de::field(v, "now")?,
            harvested: de::field(v, "harvested")?,
            brownout_secs: de::field(v, "brownout_secs")?,
            output_buf: Vec::new(),
            taper: TaperMemo::default(),
        })
    }
}

impl PowerRail {
    /// Sub-step used when integrating between events.
    const STEP: SimDuration = SimDuration::from_secs(60);

    /// Creates a rail starting at `start` simulated time.
    pub fn new(battery: LeadAcidBattery, start: SimTime) -> Self {
        PowerRail {
            battery,
            chargers: Vec::new(),
            harvest_by: Vec::new(),
            loads: LoadSet::new(),
            now: start,
            harvested: WattHours::ZERO,
            brownout_secs: 0,
            output_buf: Vec::new(),
            taper: TaperMemo::default(),
        }
    }

    /// Attaches a charging source.
    pub fn add_charger(&mut self, charger: Charger) -> &mut Self {
        self.chargers.push(charger);
        self.harvest_by.push(WattHours::ZERO);
        self
    }

    /// Per-charger lifetime harvest, labelled (`"solar"`, `"wind"`,
    /// `"mains"`).
    pub fn harvest_by_source(&self) -> Vec<(&'static str, WattHours)> {
        self.chargers
            .iter()
            .zip(&self.harvest_by)
            .map(|(c, &wh)| (c.label(), wh))
            .collect()
    }

    /// The switchable loads (register devices and toggle rails here).
    pub fn loads_mut(&mut self) -> &mut LoadSet {
        &mut self.loads
    }

    /// Read-only view of the loads.
    pub fn loads(&self) -> &LoadSet {
        &self.loads
    }

    /// Read-only view of the battery.
    pub fn battery(&self) -> &LeadAcidBattery {
        &self.battery
    }

    /// Mutable battery access for fault injection (forced exhaustion).
    pub fn battery_mut(&mut self) -> &mut LeadAcidBattery {
        &mut self.battery
    }

    /// The simulated instant the rail state reflects.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total charger energy harvested so far.
    pub fn total_harvested(&self) -> WattHours {
        self.harvested
    }

    /// Cumulative seconds during which the battery could not carry the
    /// switched-on loads.
    pub fn brownout_secs(&self) -> u64 {
        self.brownout_secs
    }

    /// `true` if the battery is completely exhausted right now.
    pub fn is_exhausted(&self) -> bool {
        self.battery.is_exhausted()
    }

    /// The battery terminal voltage under the present net current — what
    /// the MSP430's ADC reads.
    pub fn measured_voltage(&self, env: &Environment) -> Volts {
        let net = self.net_current(env, self.now);
        self.battery.terminal_voltage(net)
    }

    /// Instantaneous charger output after controller taper.
    ///
    /// The controller regulates against the *charging* terminal voltage:
    /// it finds the largest acceptance fraction whose resulting terminal
    /// voltage stays within the absorb/float band, which is what caps the
    /// midday peaks of Fig 5 near 14.4 V.
    pub fn charge_power(&self, env: &Environment, t: SimTime) -> Watts {
        let raw: Watts = self.chargers.iter().map(|c| c.output(env, t)).sum();
        self.tapered_charge(raw)
    }

    /// The taper solve for a pre-summed raw charger output.
    ///
    /// The battery's state of charge is fixed for the whole solve, so
    /// the ~26 terminal-voltage evaluations run on the hoisted
    /// [`VoltageCurve`](crate::VoltageCurve) — bit-identical to calling
    /// `battery.terminal_voltage` each time.
    fn tapered_charge(&self, raw: Watts) -> Watts {
        if raw.value() <= 0.0 {
            return Watts::ZERO;
        }
        let i_raw = raw.value() / LeadAcidBattery::NOMINAL.value();
        let curve = self.battery.voltage_curve();
        // The solve is a pure function of (raw, curve): memo-hit on exact
        // input bits and skip the bisection entirely.
        let key = [
            raw.value().to_bits(),
            curve.ocv.to_bits(),
            curve.absorption_gain.to_bits(),
            curve.resistance_ohm.to_bits(),
        ];
        if let Some(w) = self.taper.get(key) {
            return w;
        }
        if controller_taper(curve.terminal_voltage(Amps(i_raw))) >= 1.0 {
            self.taper.put(key, raw);
            return raw;
        }
        let lo = Self::taper_fraction(&curve, i_raw);
        let tapered = raw * lo.max(0.05);
        self.taper.put(key, tapered);
        tapered
    }

    /// The regulation point of the charge controller: the acceptance
    /// fraction the historical 24-step bisection converges to, computed
    /// bit-for-bit.
    ///
    /// If the bisection's predicate `P(x) = taper(v(i_raw·x)) > x` is
    /// weakly monotone at the float level, its true-region is downward
    /// closed and 24 halvings of `[0, 1]` land on the *unique* dyadic
    /// `lo = k/2²⁴` with `P(lo)` true (or `k = 0`) and `P(lo + 2⁻²⁴)`
    /// false (or `k + 1 = 2²⁴`) — every midpoint is an exact dyadic
    /// binary64 value, so any route to that `k` returns identical bits.
    /// `P` is monotone as a real function, and each float op rounds a
    /// monotone piece, but the absorption term `fl(i)/fl(1 + i)` rounds
    /// its numerator and denominator independently, so ulp-level
    /// monotonicity is *not* proven for large currents. The equality is
    /// therefore pinned two ways: a proptest drives this function against
    /// [`PowerRail::bisect_taper_fraction`] across randomized curves and
    /// currents, and debug builds re-run the bisection on every fast-path
    /// return and assert bit equality — a silent trajectory divergence
    /// becomes a loud failure.
    ///
    /// Fast path: solve the fixed point `x = taper(v(i_raw·x))` on the
    /// linear taper segment in closed form (a quadratic in `i_raw·x`),
    /// snap to the 2⁻²⁴ grid, and confirm the two predicate evaluations
    /// that characterise `k` — ~2 curve evaluations instead of 24. Any
    /// failure (crossing outside the linear segment, guess off the grid
    /// point) falls back to the exact bisection.
    fn taper_fraction(curve: &crate::VoltageCurve, i_raw: f64) -> f64 {
        const SCALE: f64 = 16_777_216.0; // 2^24
        let p = |x: f64| controller_taper(curve.terminal_voltage(Amps(i_raw * x))) > x;
        // Fixed point on the linear segment: with y = i_raw·x, c the taper
        // slope and A = 1 − c·(ocv − 13.8):
        //   y²(1/i_raw + c·r) + y(1/i_raw − A + c·r + c·g) − A = 0.
        let c = 0.95 / 0.6;
        let a = 1.0 - c * (curve.ocv - 13.8);
        let inv = 1.0 / i_raw;
        let qa = inv + c * curve.resistance_ohm;
        let qb = inv - a + c * curve.resistance_ohm + c * curve.absorption_gain;
        let disc = qb * qb + 4.0 * qa * a;
        if disc > 0.0 {
            let y = (-qb + disc.sqrt()) / (2.0 * qa);
            let x_star = y / i_raw;
            if x_star > 0.0 && x_star < 1.0 {
                let k = (x_star * SCALE).floor();
                // The guess can straddle the grid point by one: verify the
                // characterising predicate pair at k, then its neighbours.
                for kk in [k, k - 1.0, k + 1.0] {
                    if !(0.0..SCALE).contains(&kk) {
                        continue;
                    }
                    let lo = kk / SCALE;
                    // glacsweb: allow(numeric-safety, reason = "kk is an exact small integer from floor(); == 0.0 encodes the bisection's unevaluated-left-endpoint convention and must stay exact")
                    let lo_ok = kk == 0.0 || p(lo);
                    let hi_ok = kk + 1.0 >= SCALE || !p((kk + 1.0) / SCALE);
                    if lo_ok && hi_ok {
                        debug_assert_eq!(
                            lo.to_bits(),
                            Self::bisect_taper_fraction(curve, i_raw).to_bits(),
                            "fast taper solve diverged from the bisection \
                             (curve {curve:?}, i_raw {i_raw})"
                        );
                        return lo;
                    }
                }
            }
        }
        Self::bisect_taper_fraction(curve, i_raw)
    }

    /// The historical 24-step bisection for the regulation point, kept as
    /// the reference implementation and fallback: this is the function
    /// whose output [`PowerRail::taper_fraction`] must reproduce bit for
    /// bit.
    fn bisect_taper_fraction(curve: &crate::VoltageCurve, i_raw: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            let v = curve.terminal_voltage(Amps(i_raw * mid));
            if controller_taper(v) > mid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn net_current(&self, env: &Environment, t: SimTime) -> Amps {
        let v = LeadAcidBattery::NOMINAL;
        let charge = self.charge_power(env, t);
        let load = self.loads.total_power();
        Amps((charge.value() - load.value()) / v.value())
    }

    /// Integrates the rail forward to `t` in one-minute sub-steps.
    ///
    /// The caller must have advanced `env` to (at least) `t` first. The
    /// load on/off pattern is assumed constant over the span — callers
    /// advance the rail *before* switching rails at an event, which is how
    /// the event loop in `glacsweb::Deployment` uses it.
    pub fn advance(&mut self, env: &Environment, t: SimTime) {
        while self.now < t {
            let dt = (t - self.now).min(Self::STEP);
            let temp = Celsius(env.temperature_c(self.now));
            // One charger evaluation per sub-step: the buffered outputs
            // feed the taper solve, the harvest total and the per-source
            // apportionment (previously three evaluations each). Summing
            // the buffer folds the same values in the same order as
            // summing the charger iterator directly, so every downstream
            // quantity carries identical bits.
            self.output_buf.clear();
            let now = self.now;
            self.output_buf
                .extend(self.chargers.iter().map(|c| c.output(env, now).value()));
            let raw_watts: Watts = self.output_buf.iter().map(|&w| Watts(w)).sum();
            let charge = self.tapered_charge(raw_watts);
            let load = self.loads.total_power();
            let net = Amps((charge.value() - load.value()) / LeadAcidBattery::NOMINAL.value());
            let actual = self.battery.step(dt, net, temp);
            if load.value() > 0.0
                && self.battery.is_exhausted()
                && actual.value() >= net.value() + 1e-12
            {
                // Discharge was truncated: the loads browned out.
                self.brownout_secs += dt.as_secs();
            }
            self.harvested += charge.over(dt);
            if charge.value() > 0.0 {
                // Apportion the tapered harvest by each charger's raw share.
                let raw: f64 = self.output_buf.iter().sum();
                if raw > 0.0 {
                    for (acc, &out) in self.harvest_by.iter_mut().zip(self.output_buf.iter()) {
                        let share = out / raw;
                        *acc += charge.over(dt) * share;
                    }
                }
            }
            self.loads.meter(dt);
            self.now += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_env::EnvConfig;
    use glacsweb_sim::AmpHours;

    use crate::charger::{MainsCharger, SolarPanel, WindTurbine};

    fn setup(config: EnvConfig, y: i32, mo: u32, d: u32) -> (Environment, PowerRail, SimTime) {
        let mut env = Environment::new(config, 77);
        let t0 = SimTime::from_ymd_hms(y, mo, d, 0, 0, 0);
        env.advance_to(t0);
        let rail = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.8), t0);
        (env, rail, t0)
    }

    #[test]
    fn idle_rail_holds_charge_for_days() {
        let (mut env, mut rail, t0) = setup(EnvConfig::lab(), 2009, 5, 1);
        let end = t0 + SimDuration::from_days(7);
        env.advance_to(end);
        rail.advance(&env, end);
        assert!(rail.battery().state_of_charge() > 0.75);
        assert_eq!(rail.brownout_secs(), 0);
    }

    #[test]
    fn summer_solar_recharges_the_bank() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 6, 15);
        rail.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        rail.loads_mut().add("msp430", Watts::from_milliwatts(5.0));
        rail.loads_mut().set_on("msp430", true);
        let mut t = t0;
        for _ in 0..(4 * 24) {
            t += SimDuration::from_mins(15);
            env.advance_to(t);
            rail.advance(&env, t);
        }
        assert!(
            rail.battery().state_of_charge() > 0.85,
            "soc {}",
            rail.battery().state_of_charge()
        );
        assert!(rail.total_harvested().value() > 20.0);
    }

    #[test]
    fn continuous_gps_without_charging_depletes_in_about_five_days() {
        // End-to-end check of the paper's §III example through the rail.
        let (mut env, _, t0) = setup(EnvConfig::lab(), 2009, 1, 10);
        // A full battery for the clean arithmetic.
        let mut rail = PowerRail::new(LeadAcidBattery::new(AmpHours(36.0)), t0);
        rail.loads_mut().add("gps", Watts(3.6));
        rail.loads_mut().set_on("gps", true);
        let mut t = t0;
        let mut depleted_at = None;
        for _ in 0..(10 * 24) {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            rail.advance(&env, t);
            if rail.is_exhausted() && depleted_at.is_none() {
                depleted_at = Some(t);
            }
        }
        let days = (depleted_at.expect("should deplete") - t0).as_days_f64();
        // Lab temperature ~18 °C slightly derates capacity; accept 4–6 days.
        assert!((4.0..6.0).contains(&days), "depleted after {days} days");
        assert!(rail.brownout_secs() > 0, "brown-out accounted");
    }

    #[test]
    fn wind_turbine_carries_a_winter_load() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 1, 5);
        rail.add_charger(Charger::Wind(WindTurbine::new(Watts(50.0))));
        rail.loads_mut().add("msp430", Watts::from_milliwatts(5.0));
        rail.loads_mut().set_on("msp430", true);
        let mut t = t0;
        for _ in 0..(24 * 4) {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            rail.advance(&env, t);
        }
        // January wind at ~9 m/s mean should keep the bank up (until
        // burial, which takes longer than 4 days).
        assert!(rail.battery().state_of_charge() > 0.6);
    }

    #[test]
    fn mains_charger_respects_cafe_season() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 1, 15);
        rail.add_charger(Charger::Mains(MainsCharger::new(Watts(30.0))));
        assert_eq!(
            rail.charge_power(&env, t0),
            Watts::ZERO,
            "no mains in January"
        );
        let summer = SimTime::from_ymd_hms(2009, 7, 15, 12, 0, 0);
        env.advance_to(summer);
        rail.advance(&env, summer);
        assert!(rail.charge_power(&env, summer).value() > 0.0);
    }

    #[test]
    fn measured_voltage_sags_under_load() {
        let (mut env, mut rail, t0) = setup(EnvConfig::lab(), 2009, 3, 1);
        env.advance_to(t0 + SimDuration::from_hours(1));
        rail.advance(&env, t0 + SimDuration::from_hours(1));
        rail.loads_mut().add("gps", Watts(3.6));
        let v_rest = rail.measured_voltage(&env);
        rail.loads_mut().set_on("gps", true);
        let v_loaded = rail.measured_voltage(&env);
        assert!(
            v_rest.value() - v_loaded.value() > 0.04,
            "{v_rest} -> {v_loaded}"
        );
    }

    mod taper_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The analytic fast path returns bit-for-bit what the pure
            /// 24-step bisection returns, across the whole reachable
            /// input space: open-circuit voltage 11.3–12.9 V (soc 0–1),
            /// absorption gain 0–1.6 (1.6·soc⁸), a generous resistance
            /// band around the model's 0.22 Ω, and raw charge currents up
            /// to ~8 A (solar + wind + mains ≈ 90 W on a 12 V rail).
            #[test]
            fn fast_taper_equals_bisection(
                ocv in 11.3f64..12.9,
                gain in 0.0f64..1.6,
                r in 0.005f64..0.5,
                i_raw in 1e-4f64..8.0,
            ) {
                let curve = crate::VoltageCurve {
                    ocv,
                    absorption_gain: gain,
                    resistance_ohm: r,
                };
                let fast = PowerRail::taper_fraction(&curve, i_raw);
                let bisect = PowerRail::bisect_taper_fraction(&curve, i_raw);
                prop_assert_eq!(
                    fast.to_bits(),
                    bisect.to_bits(),
                    "fast {} vs bisection {} (curve {:?}, i_raw {})",
                    fast,
                    bisect,
                    curve,
                    i_raw
                );
            }
        }

        /// Opt-in stress variant of `fast_taper_equals_bisection`: half a
        /// million randomized cases. Run with
        /// `cargo test -p glacsweb-power --release -- --ignored`.
        #[test]
        #[ignore = "stress: 500k randomized cases, run explicitly"]
        fn fast_taper_equals_bisection_stress() {
            use proptest::test_runner::{Config, TestRunner};
            let mut runner = TestRunner::new(Config::with_cases(500_000));
            runner
                .run(
                    &(11.3f64..12.9, 0.0f64..1.6, 0.005f64..0.5, 1e-4f64..8.0),
                    |(ocv, gain, r, i_raw)| {
                        let curve = crate::VoltageCurve {
                            ocv,
                            absorption_gain: gain,
                            resistance_ohm: r,
                        };
                        let fast = PowerRail::taper_fraction(&curve, i_raw);
                        let bisect = PowerRail::bisect_taper_fraction(&curve, i_raw);
                        prop_assert_eq!(fast.to_bits(), bisect.to_bits());
                        Ok(())
                    },
                )
                .expect("fast taper solve must match the bisection");
        }
    }

    #[test]
    fn charge_controller_tapers_near_full() {
        let (mut env, _, t0) = setup(EnvConfig::vatnajokull(), 2009, 6, 21);
        let noon = SimTime::from_ymd_hms(2009, 6, 21, 12, 0, 0);
        env.advance_to(noon);
        // A battery held artificially at absorb voltage accepts less.
        let mut full = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 1.0), t0);
        full.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        let mut half = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.5), t0);
        half.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        assert!(full.charge_power(&env, noon) <= half.charge_power(&env, noon));
    }
}
