//! The power rail: battery + chargers + loads integrated over time.

use glacsweb_env::Environment;
use glacsweb_sim::{Amps, Celsius, SimDuration, SimTime, Volts, WattHours, Watts};

use crate::battery::LeadAcidBattery;
use crate::charger::{controller_taper, Charger};
use crate::load::LoadSet;

/// One station's complete power system.
///
/// The simulation loop advances the rail between events with
/// [`PowerRail::advance`]; the MSP430 model samples
/// [`PowerRail::measured_voltage`] every thirty minutes — the exact signal
/// the paper's Table II policy consumes.
#[derive(Debug, Clone)]
pub struct PowerRail {
    battery: LeadAcidBattery,
    chargers: Vec<Charger>,
    /// Per-charger harvested energy, aligned with `chargers`.
    harvest_by: Vec<WattHours>,
    loads: LoadSet,
    now: SimTime,
    harvested: WattHours,
    /// Seconds of brown-out (load demanded but battery empty).
    brownout_secs: u64,
}

impl PowerRail {
    /// Sub-step used when integrating between events.
    const STEP: SimDuration = SimDuration::from_secs(60);

    /// Creates a rail starting at `start` simulated time.
    pub fn new(battery: LeadAcidBattery, start: SimTime) -> Self {
        PowerRail {
            battery,
            chargers: Vec::new(),
            harvest_by: Vec::new(),
            loads: LoadSet::new(),
            now: start,
            harvested: WattHours::ZERO,
            brownout_secs: 0,
        }
    }

    /// Attaches a charging source.
    pub fn add_charger(&mut self, charger: Charger) -> &mut Self {
        self.chargers.push(charger);
        self.harvest_by.push(WattHours::ZERO);
        self
    }

    /// Per-charger lifetime harvest, labelled (`"solar"`, `"wind"`,
    /// `"mains"`).
    pub fn harvest_by_source(&self) -> Vec<(&'static str, WattHours)> {
        self.chargers
            .iter()
            .zip(&self.harvest_by)
            .map(|(c, &wh)| (c.label(), wh))
            .collect()
    }

    /// The switchable loads (register devices and toggle rails here).
    pub fn loads_mut(&mut self) -> &mut LoadSet {
        &mut self.loads
    }

    /// Read-only view of the loads.
    pub fn loads(&self) -> &LoadSet {
        &self.loads
    }

    /// Read-only view of the battery.
    pub fn battery(&self) -> &LeadAcidBattery {
        &self.battery
    }

    /// Mutable battery access for fault injection (forced exhaustion).
    pub fn battery_mut(&mut self) -> &mut LeadAcidBattery {
        &mut self.battery
    }

    /// The simulated instant the rail state reflects.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total charger energy harvested so far.
    pub fn total_harvested(&self) -> WattHours {
        self.harvested
    }

    /// Cumulative seconds during which the battery could not carry the
    /// switched-on loads.
    pub fn brownout_secs(&self) -> u64 {
        self.brownout_secs
    }

    /// `true` if the battery is completely exhausted right now.
    pub fn is_exhausted(&self) -> bool {
        self.battery.is_exhausted()
    }

    /// The battery terminal voltage under the present net current — what
    /// the MSP430's ADC reads.
    pub fn measured_voltage(&self, env: &Environment) -> Volts {
        let net = self.net_current(env, self.now);
        self.battery.terminal_voltage(net)
    }

    /// Instantaneous charger output after controller taper.
    ///
    /// The controller regulates against the *charging* terminal voltage:
    /// it finds the largest acceptance fraction whose resulting terminal
    /// voltage stays within the absorb/float band, which is what caps the
    /// midday peaks of Fig 5 near 14.4 V.
    pub fn charge_power(&self, env: &Environment, t: SimTime) -> Watts {
        let raw: Watts = self.chargers.iter().map(|c| c.output(env, t)).sum();
        if raw.value() <= 0.0 {
            return Watts::ZERO;
        }
        let i_raw = raw.value() / LeadAcidBattery::NOMINAL.value();
        // Monotone in the fraction → bisect for the regulation point.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        if controller_taper(self.battery.terminal_voltage(Amps(i_raw))) >= 1.0 {
            return raw;
        }
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            let v = self.battery.terminal_voltage(Amps(i_raw * mid));
            if controller_taper(v) > mid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        raw * lo.max(0.05)
    }

    fn net_current(&self, env: &Environment, t: SimTime) -> Amps {
        let v = LeadAcidBattery::NOMINAL;
        let charge = self.charge_power(env, t);
        let load = self.loads.total_power();
        Amps((charge.value() - load.value()) / v.value())
    }

    /// Integrates the rail forward to `t` in one-minute sub-steps.
    ///
    /// The caller must have advanced `env` to (at least) `t` first. The
    /// load on/off pattern is assumed constant over the span — callers
    /// advance the rail *before* switching rails at an event, which is how
    /// the event loop in `glacsweb::Deployment` uses it.
    pub fn advance(&mut self, env: &Environment, t: SimTime) {
        while self.now < t {
            let dt = (t - self.now).min(Self::STEP);
            let temp = Celsius(env.temperature_c(self.now));
            let charge = self.charge_power(env, self.now);
            let load = self.loads.total_power();
            let net = Amps((charge.value() - load.value()) / LeadAcidBattery::NOMINAL.value());
            let actual = self.battery.step(dt, net, temp);
            if load.value() > 0.0
                && self.battery.is_exhausted()
                && actual.value() >= net.value() + 1e-12
            {
                // Discharge was truncated: the loads browned out.
                self.brownout_secs += dt.as_secs();
            }
            self.harvested += charge.over(dt);
            if charge.value() > 0.0 {
                // Apportion the tapered harvest by each charger's raw share.
                let raw: f64 = self
                    .chargers
                    .iter()
                    .map(|c| c.output(env, self.now).value())
                    .sum();
                if raw > 0.0 {
                    for (acc, c) in self.harvest_by.iter_mut().zip(self.chargers.iter()) {
                        let share = c.output(env, self.now).value() / raw;
                        *acc += charge.over(dt) * share;
                    }
                }
            }
            self.loads.meter(dt);
            self.now += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_env::EnvConfig;
    use glacsweb_sim::AmpHours;

    use crate::charger::{MainsCharger, SolarPanel, WindTurbine};

    fn setup(config: EnvConfig, y: i32, mo: u32, d: u32) -> (Environment, PowerRail, SimTime) {
        let mut env = Environment::new(config, 77);
        let t0 = SimTime::from_ymd_hms(y, mo, d, 0, 0, 0);
        env.advance_to(t0);
        let rail = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.8), t0);
        (env, rail, t0)
    }

    #[test]
    fn idle_rail_holds_charge_for_days() {
        let (mut env, mut rail, t0) = setup(EnvConfig::lab(), 2009, 5, 1);
        let end = t0 + SimDuration::from_days(7);
        env.advance_to(end);
        rail.advance(&env, end);
        assert!(rail.battery().state_of_charge() > 0.75);
        assert_eq!(rail.brownout_secs(), 0);
    }

    #[test]
    fn summer_solar_recharges_the_bank() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 6, 15);
        rail.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        rail.loads_mut().add("msp430", Watts::from_milliwatts(5.0));
        rail.loads_mut().set_on("msp430", true);
        let mut t = t0;
        for _ in 0..(4 * 24) {
            t += SimDuration::from_mins(15);
            env.advance_to(t);
            rail.advance(&env, t);
        }
        assert!(
            rail.battery().state_of_charge() > 0.85,
            "soc {}",
            rail.battery().state_of_charge()
        );
        assert!(rail.total_harvested().value() > 20.0);
    }

    #[test]
    fn continuous_gps_without_charging_depletes_in_about_five_days() {
        // End-to-end check of the paper's §III example through the rail.
        let (mut env, _, t0) = setup(EnvConfig::lab(), 2009, 1, 10);
        // A full battery for the clean arithmetic.
        let mut rail = PowerRail::new(LeadAcidBattery::new(AmpHours(36.0)), t0);
        rail.loads_mut().add("gps", Watts(3.6));
        rail.loads_mut().set_on("gps", true);
        let mut t = t0;
        let mut depleted_at = None;
        for _ in 0..(10 * 24) {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            rail.advance(&env, t);
            if rail.is_exhausted() && depleted_at.is_none() {
                depleted_at = Some(t);
            }
        }
        let days = (depleted_at.expect("should deplete") - t0).as_days_f64();
        // Lab temperature ~18 °C slightly derates capacity; accept 4–6 days.
        assert!((4.0..6.0).contains(&days), "depleted after {days} days");
        assert!(rail.brownout_secs() > 0, "brown-out accounted");
    }

    #[test]
    fn wind_turbine_carries_a_winter_load() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 1, 5);
        rail.add_charger(Charger::Wind(WindTurbine::new(Watts(50.0))));
        rail.loads_mut().add("msp430", Watts::from_milliwatts(5.0));
        rail.loads_mut().set_on("msp430", true);
        let mut t = t0;
        for _ in 0..(24 * 4) {
            t += SimDuration::from_hours(1);
            env.advance_to(t);
            rail.advance(&env, t);
        }
        // January wind at ~9 m/s mean should keep the bank up (until
        // burial, which takes longer than 4 days).
        assert!(rail.battery().state_of_charge() > 0.6);
    }

    #[test]
    fn mains_charger_respects_cafe_season() {
        let (mut env, mut rail, t0) = setup(EnvConfig::vatnajokull(), 2009, 1, 15);
        rail.add_charger(Charger::Mains(MainsCharger::new(Watts(30.0))));
        assert_eq!(
            rail.charge_power(&env, t0),
            Watts::ZERO,
            "no mains in January"
        );
        let summer = SimTime::from_ymd_hms(2009, 7, 15, 12, 0, 0);
        env.advance_to(summer);
        rail.advance(&env, summer);
        assert!(rail.charge_power(&env, summer).value() > 0.0);
    }

    #[test]
    fn measured_voltage_sags_under_load() {
        let (mut env, mut rail, t0) = setup(EnvConfig::lab(), 2009, 3, 1);
        env.advance_to(t0 + SimDuration::from_hours(1));
        rail.advance(&env, t0 + SimDuration::from_hours(1));
        rail.loads_mut().add("gps", Watts(3.6));
        let v_rest = rail.measured_voltage(&env);
        rail.loads_mut().set_on("gps", true);
        let v_loaded = rail.measured_voltage(&env);
        assert!(
            v_rest.value() - v_loaded.value() > 0.04,
            "{v_rest} -> {v_loaded}"
        );
    }

    #[test]
    fn charge_controller_tapers_near_full() {
        let (mut env, _, t0) = setup(EnvConfig::vatnajokull(), 2009, 6, 21);
        let noon = SimTime::from_ymd_hms(2009, 6, 21, 12, 0, 0);
        env.advance_to(noon);
        // A battery held artificially at absorb voltage accepts less.
        let mut full = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 1.0), t0);
        full.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        let mut half = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.5), t0);
        half.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        assert!(full.charge_power(&env, noon) <= half.charge_power(&env, noon));
    }
}
