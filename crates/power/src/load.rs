//! Named electrical loads with per-device energy metering.

use std::cell::Cell;
use std::collections::BTreeMap;

use glacsweb_sim::{SimDuration, WattHours, Watts};
use serde::{Deserialize, Serialize};

/// Memo of the total switched-on draw, invalidated by every mutation of
/// the on/off pattern. A hit returns the exact `Watts` the last full
/// re-sum produced — the sum is always recomputed whole (same values,
/// same `BTreeMap` order), never adjusted incrementally, so the cached
/// bits equal a fresh evaluation's. Derived state: invisible to
/// equality and skipped by serde.
#[derive(Debug, Clone, Default)]
struct TotalCache(Cell<Option<Watts>>);

impl PartialEq for TotalCache {
    fn eq(&self, _: &Self) -> bool {
        true // derived state
    }
}

/// The set of switchable loads hanging off a station's power rail.
///
/// The Gumsense board's defining feature (§II) is *software-controlled
/// powering of peripherals*: the MSP430 switches the Gumstix, dGPS, and
/// modem rails on and off. `LoadSet` models those switches and meters each
/// device's lifetime energy, which is what the architecture-comparison
/// experiment (E9) reports.
///
/// # Example
///
/// ```
/// use glacsweb_power::LoadSet;
/// use glacsweb_sim::{SimDuration, Watts};
///
/// let mut loads = LoadSet::new();
/// loads.add("gumstix", Watts::from_milliwatts(900.0));
/// loads.add("gprs", Watts::from_milliwatts(2640.0));
/// loads.set_on("gumstix", true);
/// assert_eq!(loads.total_power(), Watts(0.9));
///
/// loads.meter(SimDuration::from_hours(2));
/// assert!((loads.energy("gumstix").unwrap().value() - 1.8).abs() < 1e-9);
/// assert_eq!(loads.energy("gprs").unwrap().value(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadSet {
    loads: BTreeMap<String, Load>,
    total: TotalCache,
}

// Hand-written (de)serialization: the total-power memo is derived state
// and must not appear on the wire, and the vendored serde derive has no
// `#[serde(skip)]` — so serialize exactly the shape the old derive
// produced (a map with the single `loads` field).
impl Serialize for LoadSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![(
            serde::Value::Str(String::from("loads")),
            self.loads.to_value(),
        )])
    }
}

impl Deserialize for LoadSet {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        Ok(LoadSet {
            loads: serde::de::field(v, "loads")?,
            total: TotalCache::default(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Load {
    power: Watts,
    on: bool,
    energy: WattHours,
}

/// A point-in-time view of one load, as returned by [`LoadSet::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSnapshot {
    /// Device name.
    pub name: String,
    /// Rated draw when on.
    pub power: Watts,
    /// Whether the device rail is currently switched on.
    pub on: bool,
    /// Lifetime energy consumed.
    pub energy: WattHours,
}

impl LoadSet {
    /// Creates an empty load set.
    pub fn new() -> Self {
        LoadSet::default()
    }

    /// Registers a device (initially off).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered or the power is negative.
    pub fn add(&mut self, name: impl Into<String>, power: Watts) {
        let name = name.into();
        assert!(power.value() >= 0.0, "load power must be non-negative");
        let prev = self.loads.insert(
            // glacsweb: allow(perf-hygiene, reason = "device registration happens once at station wiring, never per substep")
            name.clone(),
            Load {
                power,
                on: false,
                energy: WattHours::ZERO,
            },
        );
        assert!(prev.is_none(), "duplicate load {name:?}");
        self.total.0.set(None);
    }

    /// Switches a device rail on or off.
    ///
    /// # Panics
    ///
    /// Panics if the device is unknown — switching a rail that does not
    /// exist is a wiring bug, not a runtime condition.
    pub fn set_on(&mut self, name: &str, on: bool) {
        let load = self
            .loads
            .get_mut(name)
            // glacsweb: allow(panic-freedom, reason = "load names are compile-time constants (station::loads); switching an unregistered rail is a wiring bug the simulation must not paper over")
            .unwrap_or_else(|| panic!("unknown load {name:?}"));
        if load.on != on {
            load.on = on;
            self.total.0.set(None);
        }
    }

    /// `true` if the named device rail is on.
    ///
    /// # Panics
    ///
    /// Panics if the device is unknown.
    pub fn is_on(&self, name: &str) -> bool {
        self.loads
            .get(name)
            // glacsweb: allow(panic-freedom, reason = "load names are compile-time constants (station::loads); querying an unregistered rail is a wiring bug the simulation must not paper over")
            .unwrap_or_else(|| panic!("unknown load {name:?}"))
            .on
    }

    /// Total instantaneous draw of all switched-on devices.
    ///
    /// Cached between switching events: the power rail re-reads this
    /// every 60 s substep while the on/off pattern changes only a few
    /// times a day.
    pub fn total_power(&self) -> Watts {
        if let Some(total) = self.total.0.get() {
            return total;
        }
        let total = self.loads.values().filter(|l| l.on).map(|l| l.power).sum();
        self.total.0.set(Some(total));
        total
    }

    /// Accumulates per-device energy for a period during which the on/off
    /// pattern did not change.
    pub fn meter(&mut self, dt: SimDuration) {
        for load in self.loads.values_mut() {
            if load.on {
                load.energy += load.power.over(dt);
            }
        }
    }

    /// Lifetime energy of one device, or `None` if unknown.
    pub fn energy(&self, name: &str) -> Option<WattHours> {
        self.loads.get(name).map(|l| l.energy)
    }

    /// Lifetime energy of every device combined.
    pub fn total_energy(&self) -> WattHours {
        self.loads.values().map(|l| l.energy).sum()
    }

    /// Snapshot of every registered device, sorted by name.
    pub fn snapshot(&self) -> Vec<LoadSnapshot> {
        self.loads
            .iter()
            .map(|(name, l)| LoadSnapshot {
                // glacsweb: allow(perf-hygiene, reason = "snapshot() is a reporting API for summaries and serialization, not the advance loop")
                name: name.clone(),
                power: l.power,
                on: l.on,
                energy: l.energy,
            })
            .collect()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Switches every device off (the watchdog's end-of-window action).
    pub fn all_off(&mut self) {
        for load in self.loads.values_mut() {
            load.on = false;
        }
        self.total.0.set(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_loads() -> LoadSet {
        let mut l = LoadSet::new();
        l.add("gumstix", Watts::from_milliwatts(900.0));
        l.add("gprs", Watts::from_milliwatts(2640.0));
        l.add("radio_modem", Watts::from_milliwatts(3960.0));
        l.add("gps", Watts::from_milliwatts(3600.0));
        l
    }

    #[test]
    fn total_power_sums_only_on_devices() {
        let mut l = table1_loads();
        assert_eq!(l.total_power(), Watts::ZERO);
        l.set_on("gumstix", true);
        l.set_on("gps", true);
        assert!((l.total_power().value() - 4.5).abs() < 1e-12);
        l.set_on("gps", false);
        assert!((l.total_power().value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn metering_accumulates_per_device() {
        let mut l = table1_loads();
        l.set_on("gprs", true);
        l.meter(SimDuration::from_mins(30));
        l.set_on("gprs", false);
        l.set_on("gumstix", true);
        l.meter(SimDuration::from_hours(1));
        assert!((l.energy("gprs").unwrap().value() - 1.32).abs() < 1e-9);
        assert!((l.energy("gumstix").unwrap().value() - 0.9).abs() < 1e-9);
        assert!((l.total_energy().value() - 2.22).abs() < 1e-9);
    }

    #[test]
    fn all_off_kills_every_rail() {
        let mut l = table1_loads();
        l.set_on("gumstix", true);
        l.set_on("gps", true);
        l.all_off();
        assert_eq!(l.total_power(), Watts::ZERO);
        assert!(!l.is_on("gumstix"));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let l = table1_loads();
        let snap = l.snapshot();
        assert_eq!(snap.len(), 4);
        let names: Vec<_> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["gprs", "gps", "gumstix", "radio_modem"]);
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
    }

    #[test]
    fn cached_total_matches_fresh_sum_bitwise() {
        let mut l = table1_loads();
        l.set_on("gumstix", true);
        l.set_on("gps", true);
        let fresh: Watts = [
            Watts::from_milliwatts(3600.0),
            Watts::from_milliwatts(900.0),
        ]
        .into_iter()
        .sum();
        // BTreeMap order: gps before gumstix.
        assert_eq!(l.total_power().value().to_bits(), fresh.value().to_bits());
        // Hit path returns the same bits.
        assert_eq!(l.total_power().value().to_bits(), fresh.value().to_bits());
        // Redundant switch does not clear the cache; real switch does.
        l.set_on("gps", true);
        assert_eq!(l.total_power().value().to_bits(), fresh.value().to_bits());
        l.set_on("gps", false);
        assert!((l.total_power().value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cache_is_invisible_to_equality_and_serde() {
        let a = table1_loads();
        let b = table1_loads();
        let _ = a.total_power();
        assert_eq!(a, b, "cache fill must not affect equality");
        let json = serde_json::to_string(&a).expect("serialize");
        assert!(!json.contains("total"), "cache must not serialize: {json}");
        let back: LoadSet = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
    }

    #[test]
    fn unknown_energy_is_none() {
        let l = table1_loads();
        assert!(l.energy("toaster").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate load")]
    fn rejects_duplicate_names() {
        let mut l = table1_loads();
        l.add("gps", Watts(1.0));
    }

    #[test]
    #[should_panic(expected = "unknown load")]
    fn rejects_unknown_switch() {
        let mut l = table1_loads();
        l.set_on("toaster", true);
    }
}
