//! Lead-acid battery model.

use glacsweb_sim::{AmpHours, Amps, Celsius, SimDuration, Volts, WattHours};
use serde::{Deserialize, Serialize};

/// A 12 V-class lead-acid battery bank with coulomb counting, an
/// SoC-dependent open-circuit voltage, internal resistance, an absorption
/// overpotential when charging near full, cold-temperature capacity
/// derating, charging inefficiency and self-discharge.
///
/// Fidelity target: the *terminal voltage trajectory* — the one signal the
/// MSP430 samples every 30 minutes and the Table II policy thresholds
/// (12.5 / 12.0 / 11.5 V) act on — with the diurnal structure of Fig 5:
/// midday charging peaks above 14 V, overnight rest near the open-circuit
/// voltage, and visible sags during two-hourly dGPS readings in state 3.
///
/// # Example
///
/// ```
/// use glacsweb_power::LeadAcidBattery;
/// use glacsweb_sim::{AmpHours, Amps, Celsius, SimDuration, Volts};
///
/// let mut bank = LeadAcidBattery::new(AmpHours(36.0));
/// let v_full = bank.terminal_voltage(Amps(0.0));
/// assert!(v_full > Volts(12.8), "rested full bank: {v_full}");
///
/// // Discharge at 3 A for two hours.
/// bank.step(SimDuration::from_hours(2), Amps(-3.0), Celsius(10.0));
/// assert!(bank.state_of_charge() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeadAcidBattery {
    capacity: AmpHours,
    soc: f64,
    internal_resistance_ohm: f64,
    charge_efficiency: f64,
    /// Fractional self-discharge per month at 20 °C.
    self_discharge_per_month: f64,
    /// Total energy ever discharged (Wh), for reporting.
    discharged: WattHours,
    /// Total energy ever accepted while charging (Wh), for reporting.
    charged: WattHours,
}

impl LeadAcidBattery {
    /// Nominal rail voltage of the bank.
    pub const NOMINAL: Volts = Volts(12.0);

    /// Creates a fully charged bank of the given 20-hour-rate capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    pub fn new(capacity: AmpHours) -> Self {
        Self::with_state(capacity, 1.0)
    }

    /// Creates a bank at a given state of charge.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive or `soc` is outside `[0, 1]`.
    pub fn with_state(capacity: AmpHours, soc: f64) -> Self {
        assert!(capacity.value() > 0.0, "capacity must be positive");
        assert!((0.0..=1.0).contains(&soc), "soc {soc} out of range");
        LeadAcidBattery {
            capacity,
            soc,
            internal_resistance_ohm: 0.22,
            charge_efficiency: 0.88,
            self_discharge_per_month: 0.04,
            discharged: WattHours::ZERO,
            charged: WattHours::ZERO,
        }
    }

    /// Rated capacity at 25 °C.
    pub fn capacity(&self) -> AmpHours {
        self.capacity
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.soc
    }

    /// `true` once the bank is completely exhausted.
    ///
    /// This is the condition that resets the MSP430's RTC and RAM schedule
    /// (§IV of the paper).
    pub fn is_exhausted(&self) -> bool {
        self.soc <= f64::EPSILON
    }

    /// Total energy delivered to loads over the bank's life.
    pub fn total_discharged(&self) -> WattHours {
        self.discharged
    }

    /// Total energy accepted from chargers over the bank's life.
    pub fn total_charged(&self) -> WattHours {
        self.charged
    }

    /// Rested open-circuit voltage at the current state of charge.
    ///
    /// Linear 11.3 V (flat) → 12.9 V (full). A healthy lead-acid rests
    /// nearer 11.8 V when nominally "empty", but a bank run to true
    /// exhaustion (the §IV scenario) sits lower; the wider span also puts
    /// every Table II threshold (12.5/12.0/11.5 V) inside the rest-voltage
    /// range, as the deployed policy assumes.
    pub fn open_circuit_voltage(&self) -> Volts {
        Volts(11.3 + 1.6 * self.soc)
    }

    /// Terminal voltage under the given current (positive = charging).
    ///
    /// Includes the ohmic drop/rise and, when charging near full, the
    /// absorption overpotential that produces the >14 V midday peaks of
    /// Fig 5.
    pub fn terminal_voltage(&self, current: Amps) -> Volts {
        self.voltage_curve().terminal_voltage(current)
    }

    /// The terminal-voltage curve at the current state of charge.
    ///
    /// The charge controller's taper solver evaluates the terminal
    /// voltage ~26 times per substep at a *fixed* state of charge; the
    /// curve hoists the SoC-dependent terms (open-circuit voltage and
    /// absorption gain) so each evaluation is a handful of flops. The
    /// hoisted terms are whole subexpressions of the original formula,
    /// so results are bit-identical to [`LeadAcidBattery::terminal_voltage`]
    /// computed from scratch.
    pub fn voltage_curve(&self) -> VoltageCurve {
        VoltageCurve {
            ocv: self.open_circuit_voltage().value(),
            // Rises steeply as the bank approaches full.
            absorption_gain: 1.6 * self.soc.powi(8),
            resistance_ohm: self.internal_resistance_ohm,
        }
    }

    /// Effective capacity at the given temperature (lead-acid loses
    /// roughly 0.7 %/°C below 25 °C; clamped at 50 %).
    pub fn effective_capacity(&self, temp: Celsius) -> AmpHours {
        let factor = (1.0 + 0.007 * (temp.value() - 25.0)).clamp(0.5, 1.1);
        AmpHours(self.capacity.value() * factor)
    }

    /// Advances the bank by `dt` at a constant `current` (positive =
    /// charging) and ambient temperature.
    ///
    /// Returns the current actually absorbed/delivered — charging beyond
    /// full and discharging beyond empty are truncated, which is how the
    /// caller detects brown-out.
    pub fn step(&mut self, dt: SimDuration, current: Amps, temp: Celsius) -> Amps {
        let hours = dt.as_hours_f64();
        if hours <= 0.0 {
            return Amps(0.0);
        }
        let cap = self.effective_capacity(temp).value();
        let mut delta_ah = current.value() * hours;
        if delta_ah > 0.0 {
            delta_ah *= self.charge_efficiency;
        }
        // Self-discharge: ~4 %/month scaled by time.
        let leak = self.soc * self.self_discharge_per_month * (hours / (30.0 * 24.0));
        let proposed = self.soc + delta_ah / cap - leak;
        let clamped = proposed.clamp(0.0, 1.0);
        let actual_delta_ah = (clamped - self.soc + leak) * cap;
        self.soc = clamped;
        let v = self.open_circuit_voltage().value();
        if actual_delta_ah >= 0.0 {
            self.charged += WattHours(actual_delta_ah / self.charge_efficiency * v);
        } else {
            self.discharged += WattHours(-actual_delta_ah * v);
        }
        Amps(actual_delta_ah / hours)
    }

    /// Advances the bank by `n_steps` equal steps of `dt` in one call.
    ///
    /// Replays the exact per-step recurrence of [`LeadAcidBattery::step`]
    /// with the step-invariant terms (effective capacity, commanded
    /// charge increment, self-discharge rate) hoisted out of the loop —
    /// each is a whole subexpression of the stepped formula, so the
    /// final state and meters are **bit-identical** to calling `step`
    /// `n_steps` times (asserted by proptests). Returns the current
    /// actually absorbed/delivered over the *final* step, which is what
    /// a stepped caller would have observed last.
    pub fn leap(&mut self, n_steps: u32, dt: SimDuration, current: Amps, temp: Celsius) -> Amps {
        let hours = dt.as_hours_f64();
        if hours <= 0.0 || n_steps == 0 {
            return Amps(0.0);
        }
        let cap = self.effective_capacity(temp).value();
        let mut delta_ah = current.value() * hours;
        if delta_ah > 0.0 {
            delta_ah *= self.charge_efficiency;
        }
        // Whole subexpressions of the per-step formulas, constant across
        // the leap (`hours / (30·24)` and `Δah / cap`).
        let leak_time = hours / (30.0 * 24.0);
        let soc_step = delta_ah / cap;
        let mut last = Amps(0.0);
        for _ in 0..n_steps {
            let leak = self.soc * self.self_discharge_per_month * leak_time;
            let proposed = self.soc + soc_step - leak;
            let clamped = proposed.clamp(0.0, 1.0);
            let actual_delta_ah = (clamped - self.soc + leak) * cap;
            self.soc = clamped;
            let v = self.open_circuit_voltage().value();
            if actual_delta_ah >= 0.0 {
                self.charged += WattHours(actual_delta_ah / self.charge_efficiency * v);
            } else {
                self.discharged += WattHours(-actual_delta_ah * v);
            }
            last = Amps(actual_delta_ah / hours);
        }
        last
    }

    /// Opens a constant-current **sleep glide** anchored at the bank's
    /// current state: the closed-form sleep-window integrator the fleet
    /// kernel leaps on.
    ///
    /// Where [`LeadAcidBattery::leap`] *replays* the stepped recurrence
    /// (bit-identical to `n × step`, but O(n)), a glide *defines* the
    /// sleep trajectory as an exact closed form: the leak and rest
    /// voltage are linearised at the anchor, so the state after `k`
    /// ticks is `clamp(soc₀ + k·δ)` — one multiply-add whatever `k` is.
    /// A per-tick stepper and a whole-window leap evaluate the *same
    /// expression* at `k = 1, 2, …` versus once at `k = n`, which is
    /// what makes leaping bit-identical to ticking **by construction**
    /// rather than by replay. The linearisation is the physics of a
    /// sleeping node: microamp-scale drift over hours moves the state
    /// of charge so little that the leak and OCV are constant to first
    /// order, exactly like the MSP430's own coulomb bookkeeping.
    ///
    /// The glide owns the anchor meters, so committing at `j` and later
    /// at `k > j` leaves the bank bit-identical to committing once at
    /// `k` — mid-window digests and snapshots are safe (asserted by
    /// proptests).
    pub fn glide(&self, dt: SimDuration, current: Amps, temp: Celsius) -> SleepGlide {
        let hours = dt.as_hours_f64();
        let cap = self.effective_capacity(temp).value();
        let mut delta_ah = current.value() * hours;
        if delta_ah > 0.0 {
            delta_ah *= self.charge_efficiency;
        }
        let leak = self.soc * self.self_discharge_per_month * (hours / (30.0 * 24.0));
        let delta = if hours > 0.0 {
            delta_ah / cap - leak
        } else {
            0.0
        };
        let v0 = self.open_circuit_voltage().value();
        // Wh metered per unit of SoC movement, at the anchor rest
        // voltage: gross-of-inefficiency when charging, direct when
        // discharging (leak is part of the net movement).
        let scale = if delta >= 0.0 {
            cap / self.charge_efficiency * v0
        } else {
            cap * v0
        };
        SleepGlide {
            soc0: self.soc,
            charged0: self.charged.value(),
            discharged0: self.discharged.value(),
            delta,
            scale,
        }
    }

    /// Recharges instantly to full — used by scenario setup, not by the
    /// simulation loop.
    pub fn reset_full(&mut self) {
        self.soc = 1.0;
    }

    /// Drains instantly to total exhaustion — the §IV "total exhaustion"
    /// event as a fault-injection hook. The next controller wake sees an
    /// RTC reset and a lost RAM schedule.
    pub fn drain_empty(&mut self) {
        self.soc = 0.0;
    }
}

/// Terminal-voltage curve of a bank at one fixed state of charge.
///
/// Produced by [`LeadAcidBattery::voltage_curve`]; evaluating it is
/// bit-identical to [`LeadAcidBattery::terminal_voltage`] on the bank it
/// was taken from, with the SoC-dependent terms precomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageCurve {
    pub(crate) ocv: f64,
    pub(crate) absorption_gain: f64,
    pub(crate) resistance_ohm: f64,
}

impl VoltageCurve {
    /// Terminal voltage under the given current (positive = charging).
    pub fn terminal_voltage(&self, current: Amps) -> Volts {
        let ohmic = current.value() * self.resistance_ohm;
        let absorption = if current.value() > 0.0 {
            self.absorption_gain * (current.value() / (1.0 + current.value()))
        } else {
            0.0
        };
        Volts((self.ocv + ohmic + absorption).clamp(9.0, 15.0))
    }
}

/// The closed-form trajectory of a bank sleeping at constant current,
/// anchored at one battery state (see [`LeadAcidBattery::glide`]).
///
/// Every accessor is a pure function of the anchor and the tick index
/// `k`, so evaluating the trajectory tick-by-tick and leaping straight
/// to `k = n` produce the same bits — there is no accumulated state to
/// replay. Clamping at empty/full is exact: the affine extrapolation is
/// clamped, which for a constant-sign `δ` equals the iterated clamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepGlide {
    /// State of charge at the anchor.
    soc0: f64,
    /// Charged-energy meter at the anchor, Wh.
    charged0: f64,
    /// Discharged-energy meter at the anchor, Wh.
    discharged0: f64,
    /// Net per-tick SoC movement (efficiency-applied, leak-inclusive).
    delta: f64,
    /// Wh metered per unit of SoC movement, at the anchor rest voltage.
    scale: f64,
}

impl SleepGlide {
    /// State of charge after `k` ticks: `clamp(soc₀ + k·δ)`.
    pub fn soc_at(&self, k: u32) -> f64 {
        (self.soc0 + f64::from(k) * self.delta).clamp(0.0, 1.0)
    }

    /// Charged-energy meter after `k` ticks, Wh. Only a charging glide
    /// (`δ ≥ 0`) moves it; clamping at full truncates it exactly.
    pub fn charged_at(&self, k: u32) -> f64 {
        if self.delta >= 0.0 {
            self.charged0 + (self.soc_at(k) - self.soc0) * self.scale
        } else {
            self.charged0
        }
    }

    /// Discharged-energy meter after `k` ticks, Wh. Only a discharging
    /// glide (`δ < 0`) moves it; clamping at empty truncates it exactly.
    pub fn discharged_at(&self, k: u32) -> f64 {
        if self.delta >= 0.0 {
            self.discharged0
        } else {
            self.discharged0 + (self.soc0 - self.soc_at(k)) * self.scale
        }
    }

    /// Writes the state at tick `k` back into a bank — O(1) for any `k`.
    ///
    /// Commits are *re-derivations from the anchor*, not increments:
    /// `commit(j)` followed by `commit(k)` is bit-identical to a single
    /// `commit(k)`, which is what lets a leap kernel settle a partial
    /// window at a digest/snapshot horizon and keep going.
    pub fn commit(&self, battery: &mut LeadAcidBattery, k: u32) {
        battery.soc = self.soc_at(k);
        battery.charged = WattHours(self.charged_at(k));
        battery.discharged = WattHours(self.discharged_at(k));
    }

    /// The anchor fields as raw bit patterns, in declaration order —
    /// feed for canonical state digests.
    pub fn digest_bits(&self) -> [u64; 5] {
        [
            self.soc0.to_bits(),
            self.charged0.to_bits(),
            self.discharged0.to_bits(),
            self.delta.to_bits(),
            self.scale.to_bits(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_five_day_depletion_under_gps_load() {
        // §III: 3.6 W continuous drains 36 Ah in ~5 days. Simulate with the
        // full battery model at 12 V nominal and mild temperature.
        let mut b = LeadAcidBattery::new(AmpHours(36.0));
        let mut hours = 0u64;
        while !b.is_exhausted() && hours < 24 * 30 {
            let i = Amps(-3.6 / 12.0);
            b.step(SimDuration::from_hours(1), i, Celsius(25.0));
            hours += 1;
        }
        let days = hours as f64 / 24.0;
        assert!((days - 5.0).abs() < 0.4, "depleted in {days} days");
    }

    #[test]
    fn voltage_tracks_state_of_charge() {
        let full = LeadAcidBattery::with_state(AmpHours(36.0), 1.0);
        let half = LeadAcidBattery::with_state(AmpHours(36.0), 0.5);
        let flat = LeadAcidBattery::with_state(AmpHours(36.0), 0.0);
        assert!(full.open_circuit_voltage() > half.open_circuit_voltage());
        assert!(half.open_circuit_voltage() > flat.open_circuit_voltage());
        assert!((flat.open_circuit_voltage().value() - 11.3).abs() < 1e-9);
        assert!((full.open_circuit_voltage().value() - 12.9).abs() < 1e-9);
    }

    #[test]
    fn policy_thresholds_are_reachable() {
        // The Table II thresholds (12.5/12.0/11.5 V daily average) must all
        // lie inside the model's rest-voltage range so every power state is
        // reachable: 12.5 V at 75 % SoC, 12.0 V at ~44 %, 11.5 V at 12.5 %.
        let b = LeadAcidBattery::with_state(AmpHours(36.0), 0.75);
        assert!((b.open_circuit_voltage().value() - 12.5).abs() < 0.01);
        let low = LeadAcidBattery::with_state(AmpHours(36.0), 0.05);
        let sagged = low.terminal_voltage(Amps(-1.5));
        assert!(sagged < Volts(11.6), "deep discharge under load: {sagged}");
    }

    #[test]
    fn charging_raises_terminal_voltage_above_14_near_full() {
        let b = LeadAcidBattery::with_state(AmpHours(36.0), 0.97);
        let v = b.terminal_voltage(Amps(3.0));
        assert!(v > Volts(14.0), "absorption voltage {v}");
        // But a half-charged bank accepts bulk charge below 14 V.
        let half = LeadAcidBattery::with_state(AmpHours(36.0), 0.5);
        assert!(half.terminal_voltage(Amps(3.0)) < Volts(13.5));
    }

    #[test]
    fn gps_reading_produces_a_visible_dip() {
        // Fig 5: regular dips at 2 h intervals while in state 3. A 0.3 A
        // dGPS draw must sag the terminal voltage measurably.
        let b = LeadAcidBattery::with_state(AmpHours(36.0), 0.8);
        let rest = b.terminal_voltage(Amps(-0.01));
        let reading = b.terminal_voltage(Amps(-0.31));
        assert!(
            rest.value() - reading.value() > 0.05,
            "dip {} -> {}",
            rest,
            reading
        );
    }

    #[test]
    fn cold_reduces_effective_capacity() {
        let b = LeadAcidBattery::new(AmpHours(36.0));
        let warm = b.effective_capacity(Celsius(25.0));
        let cold = b.effective_capacity(Celsius(-15.0));
        assert!((warm.value() - 36.0).abs() < 1e-9);
        assert!(cold.value() < 27.0, "cold capacity {cold}");
        // Extreme cold clamps rather than going to zero.
        assert!(b.effective_capacity(Celsius(-100.0)).value() >= 18.0);
    }

    #[test]
    fn charge_is_truncated_at_full() {
        let mut b = LeadAcidBattery::new(AmpHours(10.0));
        let absorbed = b.step(SimDuration::from_hours(5), Amps(4.0), Celsius(25.0));
        assert!(
            absorbed.value().abs() < 0.05,
            "full bank absorbs ~nothing: {absorbed}"
        );
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn discharge_is_truncated_at_empty() {
        let mut b = LeadAcidBattery::with_state(AmpHours(10.0), 0.05);
        b.step(SimDuration::from_hours(10), Amps(-5.0), Celsius(25.0));
        assert!(b.is_exhausted());
        assert_eq!(b.state_of_charge(), 0.0);
    }

    #[test]
    fn self_discharge_drains_an_idle_bank() {
        let mut b = LeadAcidBattery::new(AmpHours(36.0));
        // Six idle months.
        for _ in 0..(6 * 30 * 24) {
            b.step(SimDuration::from_hours(1), Amps(0.0), Celsius(10.0));
        }
        assert!(b.state_of_charge() < 0.85, "soc {}", b.state_of_charge());
        assert!(b.state_of_charge() > 0.5);
    }

    #[test]
    fn energy_meters_accumulate() {
        let mut b = LeadAcidBattery::with_state(AmpHours(36.0), 0.5);
        b.step(SimDuration::from_hours(2), Amps(-1.0), Celsius(25.0));
        assert!(b.total_discharged().value() > 20.0);
        b.step(SimDuration::from_hours(2), Amps(1.0), Celsius(25.0));
        assert!(b.total_charged().value() > 20.0);
    }

    #[test]
    #[should_panic(expected = "soc 1.5 out of range")]
    fn rejects_bad_soc() {
        let _ = LeadAcidBattery::with_state(AmpHours(36.0), 1.5);
    }

    #[test]
    fn voltage_curve_matches_terminal_voltage_bitwise() {
        for soc in [0.0, 0.12, 0.5, 0.93, 1.0] {
            let b = LeadAcidBattery::with_state(AmpHours(36.0), soc);
            let curve = b.voltage_curve();
            for i in [-4.0, -0.31, -0.01, 0.0, 0.05, 1.7, 5.0] {
                assert_eq!(
                    curve.terminal_voltage(Amps(i)).value().to_bits(),
                    b.terminal_voltage(Amps(i)).value().to_bits(),
                    "soc {soc} current {i}"
                );
            }
        }
    }

    #[test]
    fn glide_is_anchored_at_the_current_state() {
        let b = LeadAcidBattery::with_state(AmpHours(36.0), 0.62);
        let g = b.glide(SimDuration::from_mins(10), Amps(-0.01), Celsius(-5.0));
        assert_eq!(g.soc_at(0).to_bits(), 0.62f64.to_bits());
        assert_eq!(
            g.charged_at(0).to_bits(),
            b.total_charged().value().to_bits()
        );
        assert!(g.soc_at(144) < 0.62, "a net drain glides downward");
    }

    #[test]
    fn glide_clamps_exactly_at_empty_and_full() {
        let low = LeadAcidBattery::with_state(AmpHours(10.0), 0.02);
        let g = low.glide(SimDuration::from_mins(10), Amps(-3.0), Celsius(25.0));
        assert_eq!(g.soc_at(10_000), 0.0, "drain clamps at empty");
        let hi = LeadAcidBattery::with_state(AmpHours(10.0), 0.99);
        let gc = hi.glide(SimDuration::from_mins(10), Amps(3.0), Celsius(25.0));
        assert_eq!(gc.soc_at(10_000), 1.0, "charge clamps at full");
        // Meters truncate with the clamp: no energy flows past the rail.
        assert_eq!(
            gc.charged_at(10_000).to_bits(),
            gc.charged_at(20_000).to_bits()
        );
    }

    #[test]
    fn glide_cold_capacity_slows_the_slide() {
        let b = LeadAcidBattery::with_state(AmpHours(36.0), 0.8);
        let warm = b.glide(SimDuration::from_mins(10), Amps(-0.1), Celsius(25.0));
        let cold = b.glide(SimDuration::from_mins(10), Amps(-0.1), Celsius(-20.0));
        // Same amp-hours out of a smaller effective bank: SoC falls faster.
        assert!(cold.soc_at(144) < warm.soc_at(144));
    }

    proptest! {
        /// `commit(j)` then `commit(k)` from the same glide leaves the
        /// bank bit-identical to a single `commit(k)` — the property
        /// that makes mid-window digest/snapshot horizons safe.
        #[test]
        fn glide_commits_are_path_independent(
            soc0 in 0.0f64..1.0,
            current in -3.0f64..3.0,
            temp in -30.0f64..30.0,
            j in 0u32..500,
            extra in 0u32..500,
        ) {
            let anchor = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            let g = anchor.glide(SimDuration::from_mins(10), Amps(current), Celsius(temp));
            let k = j + extra;
            let mut direct = anchor.clone();
            g.commit(&mut direct, k);
            let mut staged = anchor.clone();
            g.commit(&mut staged, j);
            g.commit(&mut staged, k);
            prop_assert_eq!(
                direct.state_of_charge().to_bits(),
                staged.state_of_charge().to_bits()
            );
            prop_assert_eq!(
                direct.total_charged().value().to_bits(),
                staged.total_charged().value().to_bits()
            );
            prop_assert_eq!(
                direct.total_discharged().value().to_bits(),
                staged.total_discharged().value().to_bits()
            );
        }

        /// Glide invariants: SoC stays in `[0, 1]`, both lifetime meters
        /// are monotone in `k`, and only one of them ever moves.
        #[test]
        fn glide_meters_are_monotone_and_exclusive(
            soc0 in 0.0f64..1.0,
            current in -3.0f64..3.0,
            temp in -30.0f64..30.0,
            k in 1u32..2000,
        ) {
            let b = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            let g = b.glide(SimDuration::from_mins(10), Amps(current), Celsius(temp));
            prop_assert!((0.0..=1.0).contains(&g.soc_at(k)));
            prop_assert!(g.charged_at(k) >= g.charged_at(k - 1));
            prop_assert!(g.discharged_at(k) >= g.discharged_at(k - 1));
            let charged_moved = g.charged_at(k) > g.charged_at(0);
            let discharged_moved = g.discharged_at(k) > g.discharged_at(0);
            prop_assert!(!(charged_moved && discharged_moved));
        }

        /// Over short windows the glide tracks the stepped integrator
        /// closely (the linearisation is first-order in the leak): the
        /// physics check that a glide is `step` with a frozen leak, not
        /// a different battery.
        #[test]
        fn glide_tracks_step_over_short_windows(
            soc0 in 0.1f64..0.9,
            current in -0.05f64..0.05,
            temp in -20.0f64..20.0,
            n in 1u32..144,
        ) {
            let anchor = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            let g = anchor.glide(SimDuration::from_mins(10), Amps(current), Celsius(temp));
            let mut stepped = anchor.clone();
            for _ in 0..n {
                stepped.step(SimDuration::from_mins(10), Amps(current), Celsius(temp));
            }
            prop_assert!(
                (g.soc_at(n) - stepped.state_of_charge()).abs() < 1e-4,
                "glide {} vs stepped {} after {} ticks",
                g.soc_at(n),
                stepped.state_of_charge(),
                n
            );
        }
    }

    proptest! {
        /// `leap(n)` leaves the bank (state and lifetime meters)
        /// bit-identical to `n × step` — the battery-integration leg of
        /// the kernel's leap-equivalence contract.
        #[test]
        fn leap_equals_n_steps(
            soc0 in 0.0f64..1.0,
            current in -5.0f64..5.0,
            secs in 1u64..7200,
            temp in -30.0f64..30.0,
            n in 0u32..200,
        ) {
            let mut leaper = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            let mut stepper = leaper.clone();
            let dt = SimDuration::from_secs(secs);
            let last_leap = leaper.leap(n, dt, Amps(current), Celsius(temp));
            let mut last_step = Amps(0.0);
            for _ in 0..n {
                last_step = stepper.step(dt, Amps(current), Celsius(temp));
            }
            prop_assert_eq!(
                leaper.state_of_charge().to_bits(),
                stepper.state_of_charge().to_bits()
            );
            prop_assert_eq!(
                leaper.total_charged().value().to_bits(),
                stepper.total_charged().value().to_bits()
            );
            prop_assert_eq!(
                leaper.total_discharged().value().to_bits(),
                stepper.total_discharged().value().to_bits()
            );
            prop_assert_eq!(last_leap.value().to_bits(), last_step.value().to_bits());
        }

        /// SoC stays in [0,1] and voltage stays in the clamp range under
        /// arbitrary step sequences.
        #[test]
        fn invariants_under_random_steps(
            steps in proptest::collection::vec((-5.0f64..5.0, 0u64..7200, -30.0f64..30.0), 1..100),
            soc0 in 0.0f64..1.0,
        ) {
            let mut b = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            for (i, secs, temp) in steps {
                b.step(SimDuration::from_secs(secs), Amps(i), Celsius(temp));
                prop_assert!((0.0..=1.0).contains(&b.state_of_charge()));
                let v = b.terminal_voltage(Amps(i));
                prop_assert!(v >= Volts(9.0) && v <= Volts(15.0));
            }
        }

        /// Charging never decreases SoC; discharging never increases it
        /// (ignoring the tiny self-discharge term by bounding step size).
        #[test]
        fn monotone_response(soc0 in 0.05f64..0.95, i in 0.1f64..5.0) {
            let mut b = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            b.step(SimDuration::from_mins(10), Amps(i), Celsius(10.0));
            prop_assert!(b.state_of_charge() >= soc0 - 1e-6);
            let mut b2 = LeadAcidBattery::with_state(AmpHours(36.0), soc0);
            b2.step(SimDuration::from_mins(10), Amps(-i), Celsius(10.0));
            prop_assert!(b2.state_of_charge() <= soc0 + 1e-9);
        }
    }
}
