//! Charging sources: solar panel, wind generator, café mains.

use glacsweb_env::Environment;
use glacsweb_sim::{SimTime, Volts, Watts};
use serde::{Deserialize, Serialize};

/// A photovoltaic panel (the base station carries 10 W).
///
/// Output is the rated power scaled by the environment's
/// [`solar_factor`](Environment::solar_factor), which already folds in
/// solar elevation, cloud and snow burial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolarPanel {
    rated: Watts,
}

impl SolarPanel {
    /// Creates a panel with the given rated output.
    ///
    /// # Panics
    ///
    /// Panics if `rated` is negative.
    pub fn new(rated: Watts) -> Self {
        assert!(rated.value() >= 0.0, "rated power must be non-negative");
        SolarPanel { rated }
    }

    /// Rated output at full sun.
    pub fn rated(&self) -> Watts {
        self.rated
    }

    /// Instantaneous output.
    pub fn output(&self, env: &Environment, t: SimTime) -> Watts {
        self.rated * env.solar_factor(t)
    }
}

/// A small wind generator (the base station carries 50 W).
///
/// Standard power curve: zero below cut-in, cubic between cut-in and rated
/// speed, rated up to cut-out, zero beyond (furling). Snow burial derating
/// is applied by the environment's wind query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindTurbine {
    rated: Watts,
    cut_in_ms: f64,
    rated_speed_ms: f64,
    cut_out_ms: f64,
}

impl WindTurbine {
    /// Creates a turbine with a conventional small-turbine curve
    /// (cut-in 3 m/s, rated 12 m/s, cut-out 25 m/s).
    ///
    /// # Panics
    ///
    /// Panics if `rated` is negative.
    pub fn new(rated: Watts) -> Self {
        Self::with_curve(rated, 3.0, 12.0, 25.0)
    }

    /// Creates a turbine with an explicit power curve.
    ///
    /// # Panics
    ///
    /// Panics if the curve speeds are not strictly increasing or `rated`
    /// is negative.
    pub fn with_curve(rated: Watts, cut_in_ms: f64, rated_speed_ms: f64, cut_out_ms: f64) -> Self {
        assert!(rated.value() >= 0.0, "rated power must be non-negative");
        assert!(
            0.0 < cut_in_ms && cut_in_ms < rated_speed_ms && rated_speed_ms < cut_out_ms,
            "power curve speeds must be increasing"
        );
        WindTurbine {
            rated,
            cut_in_ms,
            rated_speed_ms,
            cut_out_ms,
        }
    }

    /// Rated output.
    pub fn rated(&self) -> Watts {
        self.rated
    }

    /// Output at a given wind speed.
    pub fn output_at_speed(&self, speed_ms: f64) -> Watts {
        if speed_ms < self.cut_in_ms || speed_ms >= self.cut_out_ms {
            Watts::ZERO
        } else if speed_ms >= self.rated_speed_ms {
            self.rated
        } else {
            let x = (speed_ms - self.cut_in_ms) / (self.rated_speed_ms - self.cut_in_ms);
            self.rated * x.powi(3)
        }
    }

    /// Instantaneous output in the given environment.
    pub fn output(&self, env: &Environment, t: SimTime) -> Watts {
        self.output_at_speed(env.wind_speed_ms(t))
    }
}

/// A mains-powered charger, live only while the café has power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MainsCharger {
    output: Watts,
}

impl MainsCharger {
    /// Creates a charger with the given output when mains is live.
    ///
    /// # Panics
    ///
    /// Panics if `output` is negative.
    pub fn new(output: Watts) -> Self {
        assert!(output.value() >= 0.0, "output must be non-negative");
        MainsCharger { output }
    }

    /// Instantaneous output.
    pub fn output(&self, env: &Environment, t: SimTime) -> Watts {
        if env.cafe_mains_available(t) {
            self.output
        } else {
            Watts::ZERO
        }
    }
}

/// Any charging source attachable to a [`PowerRail`](crate::PowerRail).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Charger {
    /// Photovoltaic panel.
    Solar(SolarPanel),
    /// Wind generator.
    Wind(WindTurbine),
    /// Café mains charger.
    Mains(MainsCharger),
}

impl Charger {
    /// Instantaneous raw output before charge-controller taper.
    pub fn output(&self, env: &Environment, t: SimTime) -> Watts {
        match self {
            Charger::Solar(s) => s.output(env, t),
            Charger::Wind(w) => w.output(env, t),
            Charger::Mains(m) => m.output(env, t),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Charger::Solar(_) => "solar",
            Charger::Wind(_) => "wind",
            Charger::Mains(_) => "mains",
        }
    }
}

/// Charge-controller taper: full current in bulk, linear taper between the
/// absorb and float set-points so the battery is never driven past ~14.4 V.
pub(crate) fn controller_taper(battery_voltage: Volts) -> f64 {
    const ABSORB: f64 = 13.8;
    const FLOAT: f64 = 14.4;
    if battery_voltage.value() <= ABSORB {
        1.0
    } else if battery_voltage.value() >= FLOAT {
        0.05
    } else {
        1.0 - 0.95 * (battery_voltage.value() - ABSORB) / (FLOAT - ABSORB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glacsweb_env::EnvConfig;

    fn env_at(y: i32, mo: u32, d: u32, h: u32) -> (Environment, SimTime) {
        let mut e = Environment::new(EnvConfig::vatnajokull(), 11);
        let t = SimTime::from_ymd_hms(y, mo, d, h, 0, 0);
        e.advance_to(t);
        (e, t)
    }

    #[test]
    fn solar_panel_follows_sun() {
        let p = SolarPanel::new(Watts(10.0));
        let (e, noon) = env_at(2009, 6, 21, 12);
        let (e2, night) = env_at(2009, 6, 21, 1);
        assert!(p.output(&e, noon) > Watts(1.0));
        assert!(p.output(&e2, night) < p.output(&e, noon));
        assert!(p.output(&e, noon) <= p.rated());
    }

    #[test]
    fn turbine_power_curve_shape() {
        let w = WindTurbine::new(Watts(50.0));
        assert_eq!(w.output_at_speed(2.0), Watts::ZERO);
        assert_eq!(w.output_at_speed(12.0), Watts(50.0));
        assert_eq!(w.output_at_speed(20.0), Watts(50.0));
        assert_eq!(w.output_at_speed(30.0), Watts::ZERO, "furled in a storm");
        let half = w.output_at_speed(7.5); // halfway: (0.5)^3 = 12.5%
        assert!((half.value() - 6.25).abs() < 0.01, "{half}");
        // Monotone between cut-in and rated.
        let mut last = -1.0;
        for i in 0..=90 {
            let v = w.output_at_speed(3.0 + 0.1 * f64::from(i)).value();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn mains_follows_cafe_season() {
        let m = MainsCharger::new(Watts(30.0));
        let (e_winter, jan) = env_at(2009, 1, 15, 12);
        let (e_summer, jul) = env_at(2009, 7, 15, 12);
        assert_eq!(m.output(&e_winter, jan), Watts::ZERO);
        assert_eq!(m.output(&e_summer, jul), Watts(30.0));
    }

    #[test]
    fn charger_enum_dispatch_and_labels() {
        let (e, t) = env_at(2009, 7, 15, 12);
        let chargers = [
            Charger::Solar(SolarPanel::new(Watts(10.0))),
            Charger::Wind(WindTurbine::new(Watts(50.0))),
            Charger::Mains(MainsCharger::new(Watts(30.0))),
        ];
        let labels: Vec<_> = chargers.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["solar", "wind", "mains"]);
        for c in &chargers {
            assert!(c.output(&e, t).value() >= 0.0);
        }
    }

    #[test]
    fn taper_protects_the_battery() {
        assert_eq!(controller_taper(Volts(12.5)), 1.0);
        assert_eq!(controller_taper(Volts(14.5)), 0.05);
        let mid = controller_taper(Volts(14.1));
        assert!(mid > 0.05 && mid < 1.0);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn rejects_bad_power_curve() {
        let _ = WindTurbine::with_curve(Watts(50.0), 12.0, 3.0, 25.0);
    }
}
