//! Analytic power-budget helpers.
//!
//! These closed-form calculations reproduce the paper's §III in-text
//! arithmetic: a 3.6 W dGPS drains 36 Ah in five days run continuously,
//! but lasts ~117 days duty-cycled as in power state 3 (12 readings of
//! roughly five minutes per day). They are also used by the ablation
//! benches to sanity-check the simulated results.

use glacsweb_sim::{AmpHours, SimDuration, Volts, WattHours, Watts};

/// Time for a constant load to deplete a bank, ignoring every other
/// consumer (the paper's own simplification: "for simplicity these figures
/// do not include the consumption of any other component").
///
/// # Panics
///
/// Panics if the load is not strictly positive.
///
/// ```
/// use glacsweb_power::budget::time_to_deplete;
/// use glacsweb_sim::{AmpHours, Volts, Watts};
///
/// let t = time_to_deplete(AmpHours(36.0), Volts(12.0), Watts(3.6));
/// assert_eq!(t.as_days_f64().round() as u32, 5);
/// ```
pub fn time_to_deplete(bank: AmpHours, nominal: Volts, load: Watts) -> SimDuration {
    assert!(load.value() > 0.0, "load must be positive");
    let hours = bank.energy_at(nominal).value() / load.value();
    SimDuration::from_secs_f64(hours * 3600.0)
}

/// Time for a duty-cycled load (on for `on_per_day` out of every day) to
/// deplete a bank.
///
/// # Panics
///
/// Panics if the load is not positive or the duty exceeds 24 h/day.
pub fn time_to_deplete_duty(
    bank: AmpHours,
    nominal: Volts,
    load: Watts,
    on_per_day: SimDuration,
) -> SimDuration {
    assert!(load.value() > 0.0, "load must be positive");
    assert!(
        on_per_day <= SimDuration::from_days(1),
        "duty cannot exceed one day per day"
    );
    let daily = daily_energy(load, on_per_day);
    if daily.value() <= 0.0 {
        // Never depletes; saturate far beyond any simulation horizon.
        return SimDuration::from_days(36_500);
    }
    let days = bank.energy_at(nominal).value() / daily.value();
    SimDuration::from_secs_f64(days * 86_400.0)
}

/// Energy consumed per day by a load that is on for `on_per_day` each day.
pub fn daily_energy(load: Watts, on_per_day: SimDuration) -> WattHours {
    load.over(on_per_day)
}

/// Average power of a duty-cycled load.
pub fn average_power(load: Watts, on_per_day: SimDuration) -> Watts {
    daily_energy(load, on_per_day).average_over(SimDuration::from_days(1))
}

/// Days of backlog at which accumulated dGPS data exceeds what one
/// communications window can move (the §VI bound: ≈21 days in state 3,
/// ≈259 days in state 2).
///
/// # Panics
///
/// Panics if any rate or size is zero.
pub fn backlog_days_to_overflow(
    window: SimDuration,
    link_bytes_per_sec: f64,
    readings_per_day: u32,
    bytes_per_reading: u64,
) -> f64 {
    assert!(link_bytes_per_sec > 0.0, "link rate must be positive");
    assert!(
        readings_per_day > 0 && bytes_per_reading > 0,
        "workload must be non-zero"
    );
    let window_capacity = link_bytes_per_sec * window.as_secs() as f64;
    let daily_bytes = f64::from(readings_per_day) * bytes_per_reading as f64;
    window_capacity / daily_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §III worked example, to the paper's own rounding.
    #[test]
    fn paper_depletion_numbers() {
        let continuous = time_to_deplete(AmpHours(36.0), Volts(12.0), Watts(3.6));
        assert!((continuous.as_days_f64() - 5.0).abs() < 1e-9);

        // State 3: 12 readings/day. A ~5.1-minute reading session gives
        // the paper's 117 days.
        let duty = SimDuration::from_secs(12 * 308);
        let state3 = time_to_deplete_duty(AmpHours(36.0), Volts(12.0), Watts(3.6), duty);
        assert!(
            (state3.as_days_f64() - 117.0).abs() < 1.0,
            "state 3 lifetime {} days",
            state3.as_days_f64()
        );
    }

    #[test]
    fn paper_backlog_bounds() {
        // §VI: a 2-hour window, RS-232 effective ≈5.93 KB/s, 165 KB
        // readings → ≈21 days at 12/day, ≈259 days at 1/day.
        let window = SimDuration::from_hours(2);
        let rate = 5_935.0;
        let s3 = backlog_days_to_overflow(window, rate, 12, 165 * 1024);
        let s2 = backlog_days_to_overflow(window, rate, 1, 165 * 1024);
        assert!((s3 - 21.0).abs() < 1.5, "state 3 bound {s3}");
        assert!((s2 - 259.0).abs() < 15.0, "state 2 bound {s2}");
        // And the paper's internal consistency: s2 = 12 × s3.
        assert!((s2 / s3 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_scales_with_duty() {
        let avg = average_power(Watts(3.6), SimDuration::from_hours(1));
        assert!((avg.value() - 0.15).abs() < 1e-12);
        let full = average_power(Watts(3.6), SimDuration::from_days(1));
        assert!((full.value() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn zero_duty_never_depletes() {
        let t = time_to_deplete_duty(AmpHours(36.0), Volts(12.0), Watts(3.6), SimDuration::ZERO);
        assert!(t.as_days_f64() > 10_000.0);
    }

    #[test]
    fn duty_lifetime_is_monotone_in_duty() {
        let mk = |mins| {
            time_to_deplete_duty(
                AmpHours(36.0),
                Volts(12.0),
                Watts(3.6),
                SimDuration::from_mins(mins),
            )
        };
        assert!(mk(30) > mk(60));
        assert!(mk(60) > mk(120));
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn rejects_zero_load() {
        let _ = time_to_deplete(AmpHours(36.0), Volts(12.0), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "one day per day")]
    fn rejects_impossible_duty() {
        let _ = time_to_deplete_duty(
            AmpHours(36.0),
            Volts(12.0),
            Watts(1.0),
            SimDuration::from_hours(25),
        );
    }
}
