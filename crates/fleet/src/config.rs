//! Fleet configuration and validation.

use std::fmt;

use glacsweb_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Configuration for a [`Fleet`](crate::Fleet): how many sites and
/// stations, the seed, and the fleet-level disturbance schedule.
///
/// Build one with [`FleetConfig::new`] and the chained setters, then
/// hand it to [`Fleet::new`](crate::Fleet::new), which validates it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of independent glacier sites.
    pub sites: u32,
    /// Stations deployed per site.
    pub stations_per_site: u32,
    /// Master seed; every site and station stream forks from it.
    pub seed: u64,
    /// Simulation start instant (tick-grid aligned by the builder).
    pub start: SimTime,
    /// Server-side base-station-hopping period in days (`0` disables):
    /// every `rotation_days` days at 03:00 the server overrides every
    /// station's schedule to rotate its comms-relay role.
    pub rotation_days: u32,
    /// Mean gap between storms per site, in days (`0.0` disables storms).
    pub storm_mean_gap_days: f64,
    /// Mean storm duration in hours.
    pub storm_mean_hours: f64,
    /// Quiescent-station leaping. `true` (the default) advances sleeping
    /// stations with the closed-form leap calls; `false` runs the naive
    /// per-tick reference kernel. Both produce bit-identical telemetry.
    pub leaping: bool,
}

impl FleetConfig {
    /// A fleet of `sites` glaciers with `stations_per_site` stations
    /// each, with the default disturbance schedule: a storm roughly
    /// every five days lasting about twelve hours, and a fourteen-day
    /// role-rotation override.
    pub fn new(sites: u32, stations_per_site: u32) -> Self {
        FleetConfig {
            sites,
            stations_per_site,
            seed: 0,
            start: SimTime::from_ymd_hms(2008, 9, 1, 0, 0, 0),
            rotation_days: 14,
            storm_mean_gap_days: 5.0,
            storm_mean_hours: 12.0,
            leaping: true,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the start instant (snapped down to the half-hour tick grid).
    #[must_use]
    pub fn start(mut self, start: SimTime) -> Self {
        let tick = crate::site::TICK.as_secs();
        self.start = SimTime::from_unix((start.unix() / tick) * tick);
        self
    }

    /// Sets the base-station-hopping rotation period (`0` disables).
    #[must_use]
    pub fn rotation_days(mut self, days: u32) -> Self {
        self.rotation_days = days;
        self
    }

    /// Sets the storm schedule (`gap_days == 0.0` disables storms).
    #[must_use]
    pub fn storms(mut self, gap_days: f64, mean_hours: f64) -> Self {
        self.storm_mean_gap_days = gap_days;
        self.storm_mean_hours = mean_hours;
        self
    }

    /// Enables or disables quiescent-station leaping.
    #[must_use]
    pub fn leaping(mut self, on: bool) -> Self {
        self.leaping = on;
        self
    }

    /// Checks every cross-field invariant the kernel relies on.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.sites == 0 {
            return Err(FleetConfigError::NoSites);
        }
        if self.stations_per_site == 0 {
            return Err(FleetConfigError::NoStations);
        }
        let total = u64::from(self.sites) * u64::from(self.stations_per_site);
        if total > 10_000_000 {
            return Err(FleetConfigError::TooManyStations { total });
        }
        if !self.storm_mean_gap_days.is_finite()
            || self.storm_mean_gap_days < 0.0
            || !self.storm_mean_hours.is_finite()
            || self.storm_mean_hours < 0.0
        {
            return Err(FleetConfigError::BadStormSchedule {
                gap_days: self.storm_mean_gap_days,
                mean_hours: self.storm_mean_hours,
            });
        }
        if self.storm_mean_gap_days > 0.0 && self.storm_mean_hours <= 0.0 {
            return Err(FleetConfigError::BadStormSchedule {
                gap_days: self.storm_mean_gap_days,
                mean_hours: self.storm_mean_hours,
            });
        }
        if !self
            .start
            .unix()
            .is_multiple_of(crate::site::TICK.as_secs())
        {
            return Err(FleetConfigError::UnalignedStart { start: self.start });
        }
        Ok(())
    }
}

/// A [`FleetConfig`] that cannot describe a runnable fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetConfigError {
    /// `sites == 0`.
    NoSites,
    /// `stations_per_site == 0`.
    NoStations,
    /// The station count exceeds the kernel's sanity ceiling.
    TooManyStations {
        /// Requested total station count.
        total: u64,
    },
    /// Storm gap/duration are negative, non-finite, or inconsistent.
    BadStormSchedule {
        /// Configured mean gap in days.
        gap_days: f64,
        /// Configured mean duration in hours.
        mean_hours: f64,
    },
    /// The start instant does not lie on the half-hour tick grid.
    UnalignedStart {
        /// Configured start.
        start: SimTime,
    },
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoSites => write!(f, "fleet has no sites"),
            FleetConfigError::NoStations => write!(f, "fleet sites have no stations"),
            FleetConfigError::TooManyStations { total } => {
                write!(f, "{total} stations exceeds the 10M kernel ceiling")
            }
            FleetConfigError::BadStormSchedule {
                gap_days,
                mean_hours,
            } => write!(
                f,
                "storm schedule gap {gap_days} days / duration {mean_hours} h is not usable"
            ),
            FleetConfigError::UnalignedStart { start } => write!(
                f,
                "start {start:?} is not aligned to the half-hour tick grid"
            ),
        }
    }
}

impl std::error::Error for FleetConfigError {}
