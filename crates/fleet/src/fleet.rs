//! The fleet: a vector of independent sites sharded across the sweep
//! thread pool, with index-ordered merges for telemetry and summaries.

use std::path::Path;

use glacsweb_obs::{intern, merge_all, MemoryRecorder, Origin, Recorder};
use glacsweb_sim::{SimDuration, SimRng, SimTime};
use glacsweb_snapshot::SnapshotError;
use serde::{Deserialize, Serialize};

use crate::config::{FleetConfig, FleetConfigError};
use crate::site::{ExecCounters, Site, SiteEvent, TICK};

/// Kernel cost accounting for a fleet run (aggregated over sites).
///
/// These are *execution* statistics: tick mode and leap mode produce
/// identical telemetry but legitimately different numbers here, so they
/// are never part of summaries or digests.
pub type ExecStats = ExecCounters;

/// A fleet of N independent glacier sites × M stations each.
///
/// See the crate docs for the architecture. The fleet owns its sites;
/// [`Fleet::run_until`] shards them across the
/// [`glacsweb_sweep`] thread pool and reassembles them in index order,
/// so results are byte-identical at any thread count.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    sites: Vec<Site>,
    /// Interned per-site telemetry origins (derived; rebuilt on restore).
    origins: Vec<Origin>,
    now: SimTime,
    threads: usize,
}

impl Fleet {
    /// Builds a fleet from a validated configuration.
    pub fn new(config: FleetConfig) -> Result<Fleet, FleetConfigError> {
        config.validate()?;
        let mut master = SimRng::seed_from(config.seed);
        let sites: Vec<Site> = (0..config.sites)
            .map(|i| Site::new(&config, i, &mut master))
            .collect();
        let origins = site_origins(config.sites);
        let now = config.start;
        Ok(Fleet {
            config,
            sites,
            origins,
            now,
            threads: glacsweb_sweep::threads(),
        })
    }

    /// Sets the worker-thread count for subsequent runs (results are
    /// byte-identical whatever the value).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Current fleet clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Advances every site to `until` (snapped down to the tick grid),
    /// sharding sites across the worker pool.
    pub fn run_until(&mut self, until: SimTime) {
        let tick = TICK.as_secs();
        let h = SimTime::from_unix((until.unix() / tick) * tick);
        if h <= self.now {
            return;
        }
        let sites = std::mem::take(&mut self.sites);
        self.sites = glacsweb_sweep::run_cells(sites, self.threads, |mut site| {
            site.advance_to(h);
            site
        });
        self.now = h;
    }

    /// Runs `days` further days.
    pub fn run_days(&mut self, days: u64) {
        self.run_until(self.now + SimDuration::from_days(days));
    }

    /// Aggregated service summary, built in site-index order.
    pub fn summary(&self) -> FleetSummary {
        let per_site: Vec<SiteSummary> = self.sites.iter().map(SiteSummary::from_site).collect();
        let mut total = SiteSummary::zero();
        for s in &per_site {
            total.absorb(s);
        }
        FleetSummary {
            sites: self.sites.len() as u64,
            stations: total.stations,
            days: self.now.saturating_since(self.config.start).as_days_f64(),
            windows_healthy: total.windows_healthy,
            windows_degraded: total.windows_degraded,
            windows_lost: total.windows_lost,
            deaths: total.deaths,
            restarts: total.restarts,
            overrides: total.overrides,
            storm_wakes: total.storm_wakes,
            sample_wakes: total.sample_wakes,
            alive: total.alive,
            mean_soc: if total.stations == 0 {
                0.0
            } else {
                total.soc_sum / total.stations as f64
            },
            energy_charged_wh: total.energy_charged_wh,
            energy_discharged_wh: total.energy_discharged_wh,
            per_site,
        }
    }

    /// Merged fleet telemetry: per-site recorders materialised from the
    /// service counters and the final state-of-charge distribution, then
    /// combined in site-index order. Recorders are built here, at export
    /// time, rather than fed on the wake hot path — the counters are a
    /// complete summary of what a recorder would have accumulated, so
    /// the export stays byte-identical at any thread count (and in
    /// either kernel mode) without a `BTreeMap` write per wake.
    pub fn telemetry(&self) -> MemoryRecorder {
        merge_all(
            self.sites
                .iter()
                .zip(self.origins.iter().copied())
                .map(|(site, origin)| {
                    let mut rec = MemoryRecorder::default();
                    let at = site.now;
                    let c = &site.counters;
                    for (name, v) in [
                        ("windows_healthy", c.windows_healthy),
                        ("windows_degraded", c.windows_degraded),
                        ("windows_lost", c.windows_lost),
                        ("deaths", c.deaths),
                        ("restarts", c.restarts),
                        ("overrides", c.overrides),
                        ("storm_wakes", c.storm_wakes),
                        ("sample_wakes", c.sample_wakes),
                    ] {
                        rec.counter(at, origin, name, v);
                    }
                    for b in &site.st.battery {
                        let pct = (b.state_of_charge() * 100.0) as u64;
                        rec.observe(origin, "final_soc_pct", pct);
                    }
                    rec
                }),
        )
    }

    /// Kernel execution statistics aggregated over sites.
    pub fn exec_stats(&self) -> ExecStats {
        let mut total = ExecCounters::default();
        for site in &self.sites {
            total.absorb(site.exec);
        }
        total
    }

    /// A canonical digest of the complete mutable fleet state — every
    /// battery/meter bit, OU anomaly, RNG position, schedule cursor and
    /// counter. Two fleets with equal digests took bit-identical
    /// trajectories; the leap-equivalence and thread-count tests pin it.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for site in &self.sites {
            h.u64(u64::from(site.index));
            h.u64(site.now.unix());
            h.u64(site.storms.rng_position());
            let st = &site.st;
            for s in 0..st.len() {
                h.f64(st.battery[s].state_of_charge());
                h.f64(st.battery[s].total_charged().value());
                h.f64(st.battery[s].total_discharged().value());
                h.f64(st.ou[s]);
                h.u64(st.rng[s].position());
                h.u64(st.tier[s] as u64);
                h.u64(u64::from(st.role[s]));
                h.u64(st.cursor[s].unix());
                h.u64(st.next_wake[s].unix());
                h.u64(u64::from(st.wake_kinds[s]));
                h.f64(st.sleep_load[s]);
                h.f64(st.sleep_harvest[s]);
                h.f64(st.sleep_temp[s]);
                for bits in st.glide[s].digest_bits() {
                    h.u64(bits);
                }
                h.u64(st.glide_start[s].unix());
                h.u64(u64::from(st.glide_storm[s]));
            }
            let c = &site.counters;
            for v in [
                c.windows_healthy,
                c.windows_degraded,
                c.windows_lost,
                c.deaths,
                c.restarts,
                c.overrides,
                c.storm_wakes,
                c.sample_wakes,
            ] {
                h.u64(v);
            }
        }
        h.finish()
    }

    /// Captures the complete fleet state for persistence.
    pub fn snapshot(&self) -> FleetState {
        FleetState {
            config: self.config.clone(),
            sites: self.sites.clone(),
            now: self.now,
        }
    }

    /// Rebuilds a fleet from a captured state, re-imposing every
    /// cross-field invariant (a crafted snapshot yields a typed error,
    /// never a panicking world).
    pub fn restore(state: FleetState) -> Result<Fleet, SnapshotError> {
        state
            .config
            .validate()
            .map_err(|e| SnapshotError::invalid(format!("fleet config: {e}")))?;
        if state.sites.len() != state.config.sites as usize {
            return Err(SnapshotError::invalid(format!(
                "snapshot carries {} sites but the config declares {}",
                state.sites.len(),
                state.config.sites
            )));
        }
        if state.now < state.config.start {
            return Err(SnapshotError::invalid(format!(
                "clock {:?} precedes the fleet start {:?}",
                state.now, state.config.start
            )));
        }
        let stations = state.config.stations_per_site as usize;
        for (i, site) in state.sites.iter().enumerate() {
            if site.index as usize != i {
                return Err(SnapshotError::invalid(format!(
                    "site at position {i} carries index {}",
                    site.index
                )));
            }
            if !site.st.columns_consistent(stations) {
                return Err(SnapshotError::invalid(format!(
                    "site {i} station columns are inconsistent with {stations} stations"
                )));
            }
            for (t, event) in site.wheel.iter() {
                let (SiteEvent::Tick(s) | SiteEvent::Wake(s)) = *event;
                if s as usize >= stations {
                    return Err(SnapshotError::invalid(format!(
                        "site {i} queues an event for station {s} of {stations}"
                    )));
                }
                if t < site.now && site.now > state.config.start {
                    return Err(SnapshotError::invalid(format!(
                        "site {i} queues an event at {t:?} before its clock {:?}",
                        site.now
                    )));
                }
            }
            for s in 0..stations {
                if site.st.next_wake[s] < site.st.cursor[s] {
                    return Err(SnapshotError::invalid(format!(
                        "site {i} station {s} wake precedes its cursor"
                    )));
                }
                if site.st.glide_start[s] > site.st.cursor[s] {
                    return Err(SnapshotError::invalid(format!(
                        "site {i} station {s} glide anchor lies past its cursor"
                    )));
                }
            }
        }
        let origins = site_origins(state.config.sites);
        Ok(Fleet {
            now: state.now,
            origins,
            config: state.config,
            sites: state.sites,
            threads: glacsweb_sweep::threads(),
        })
    }

    /// Writes a verified snapshot to `path` (atomic write-then-rename).
    pub fn checkpoint(&self, path: &Path) -> Result<(), SnapshotError> {
        glacsweb_snapshot::save(&self.snapshot(), path)
    }

    /// Loads a snapshot from `path` and rebuilds the fleet.
    pub fn resume(path: &Path) -> Result<Fleet, SnapshotError> {
        Fleet::restore(glacsweb_snapshot::load(path)?)
    }
}

fn site_origins(sites: u32) -> Vec<Origin> {
    (0..sites)
        .map(|i| Origin::new("fleet", intern(&format!("site{i:04}"))))
        .collect()
}

/// Complete serialisable fleet state (the snapshot payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetState {
    /// The configuration the fleet was built from.
    pub config: FleetConfig,
    /// Every site's full state.
    pub sites: Vec<Site>,
    /// The fleet clock.
    pub now: SimTime,
}

/// Service summary for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSummary {
    /// Site index.
    pub site: u64,
    /// Stations deployed.
    pub stations: u64,
    /// Comms windows attached first try.
    pub windows_healthy: u64,
    /// Comms windows attached on retry.
    pub windows_degraded: u64,
    /// Comms windows never attached.
    pub windows_lost: u64,
    /// Stations declared dead at a wake.
    pub deaths: u64,
    /// Recoveries past the restart threshold.
    pub restarts: u64,
    /// Server role rotations applied.
    pub overrides: u64,
    /// Comms windows attempted inside a storm.
    pub storm_wakes: u64,
    /// Sampling wakes (restart checks included).
    pub sample_wakes: u64,
    /// Stations not currently dead.
    pub alive: u64,
    /// Sum of final state-of-charge over stations.
    pub soc_sum: f64,
    /// Total energy charged into batteries, Wh.
    pub energy_charged_wh: f64,
    /// Total energy discharged from batteries, Wh.
    pub energy_discharged_wh: f64,
}

impl SiteSummary {
    fn zero() -> Self {
        SiteSummary {
            site: 0,
            stations: 0,
            windows_healthy: 0,
            windows_degraded: 0,
            windows_lost: 0,
            deaths: 0,
            restarts: 0,
            overrides: 0,
            storm_wakes: 0,
            sample_wakes: 0,
            alive: 0,
            soc_sum: 0.0,
            energy_charged_wh: 0.0,
            energy_discharged_wh: 0.0,
        }
    }

    fn from_site(site: &Site) -> Self {
        let mut soc_sum = 0.0;
        let mut charged = 0.0;
        let mut discharged = 0.0;
        for b in &site.st.battery {
            soc_sum += b.state_of_charge();
            charged += b.total_charged().value();
            discharged += b.total_discharged().value();
        }
        let c = &site.counters;
        SiteSummary {
            site: u64::from(site.index),
            stations: site.stations() as u64,
            windows_healthy: c.windows_healthy,
            windows_degraded: c.windows_degraded,
            windows_lost: c.windows_lost,
            deaths: c.deaths,
            restarts: c.restarts,
            overrides: c.overrides,
            storm_wakes: c.storm_wakes,
            sample_wakes: c.sample_wakes,
            alive: site.alive() as u64,
            soc_sum,
            energy_charged_wh: charged,
            energy_discharged_wh: discharged,
        }
    }

    fn absorb(&mut self, other: &SiteSummary) {
        self.stations += other.stations;
        self.windows_healthy += other.windows_healthy;
        self.windows_degraded += other.windows_degraded;
        self.windows_lost += other.windows_lost;
        self.deaths += other.deaths;
        self.restarts += other.restarts;
        self.overrides += other.overrides;
        self.storm_wakes += other.storm_wakes;
        self.sample_wakes += other.sample_wakes;
        self.alive += other.alive;
        self.soc_sum += other.soc_sum;
        self.energy_charged_wh += other.energy_charged_wh;
        self.energy_discharged_wh += other.energy_discharged_wh;
    }
}

/// Fleet-wide service summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Number of sites.
    pub sites: u64,
    /// Total stations.
    pub stations: u64,
    /// Simulated days.
    pub days: f64,
    /// Comms windows attached first try.
    pub windows_healthy: u64,
    /// Comms windows attached on retry.
    pub windows_degraded: u64,
    /// Comms windows never attached.
    pub windows_lost: u64,
    /// Stations declared dead at a wake.
    pub deaths: u64,
    /// Recoveries past the restart threshold.
    pub restarts: u64,
    /// Server role rotations applied.
    pub overrides: u64,
    /// Comms windows attempted inside a storm.
    pub storm_wakes: u64,
    /// Sampling wakes.
    pub sample_wakes: u64,
    /// Stations not currently dead.
    pub alive: u64,
    /// Mean final state of charge.
    pub mean_soc: f64,
    /// Total energy charged, Wh.
    pub energy_charged_wh: f64,
    /// Total energy discharged, Wh.
    pub energy_discharged_wh: f64,
    /// Per-site rows in index order.
    pub per_site: Vec<SiteSummary>,
}

impl FleetSummary {
    /// Total comms windows attempted.
    pub fn comms_windows(&self) -> u64 {
        self.windows_healthy + self.windows_degraded + self.windows_lost
    }

    /// Fraction of comms windows that were healthy.
    pub fn healthy_fraction(&self) -> f64 {
        let total = self.comms_windows();
        if total == 0 {
            0.0
        } else {
            self.windows_healthy as f64 / total as f64
        }
    }

    /// Deterministic JSON export of the fleet-wide row plus every
    /// per-site row, with floats printed bit-exactly (hex bit pattern
    /// alongside a human-readable rounding) so byte equality of two
    /// exports implies bit equality of the states.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.per_site.len() * 256);
        out.push_str("{\n  \"schema\": \"glacsweb-fleet/1\",\n");
        out.push_str(&format!("  \"sites\": {},\n", self.sites));
        out.push_str(&format!("  \"stations\": {},\n", self.stations));
        out.push_str(&format!("  \"days\": {},\n", fmt_f64(self.days)));
        out.push_str(&format!(
            "  \"windows_healthy\": {},\n",
            self.windows_healthy
        ));
        out.push_str(&format!(
            "  \"windows_degraded\": {},\n",
            self.windows_degraded
        ));
        out.push_str(&format!("  \"windows_lost\": {},\n", self.windows_lost));
        out.push_str(&format!("  \"deaths\": {},\n", self.deaths));
        out.push_str(&format!("  \"restarts\": {},\n", self.restarts));
        out.push_str(&format!("  \"overrides\": {},\n", self.overrides));
        out.push_str(&format!("  \"storm_wakes\": {},\n", self.storm_wakes));
        out.push_str(&format!("  \"sample_wakes\": {},\n", self.sample_wakes));
        out.push_str(&format!("  \"alive\": {},\n", self.alive));
        out.push_str(&format!("  \"mean_soc\": {},\n", fmt_f64(self.mean_soc)));
        out.push_str(&format!(
            "  \"energy_charged_wh\": {},\n",
            fmt_f64(self.energy_charged_wh)
        ));
        out.push_str(&format!(
            "  \"energy_discharged_wh\": {},\n",
            fmt_f64(self.energy_discharged_wh)
        ));
        out.push_str("  \"per_site\": [\n");
        for (i, s) in self.per_site.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"site\": {}, \"stations\": {}, \"healthy\": {}, \"degraded\": {}, \
                 \"lost\": {}, \"deaths\": {}, \"restarts\": {}, \"overrides\": {}, \
                 \"storm_wakes\": {}, \"alive\": {}, \"soc_sum\": {}}}{}\n",
                s.site,
                s.stations,
                s.windows_healthy,
                s.windows_degraded,
                s.windows_lost,
                s.deaths,
                s.restarts,
                s.overrides,
                s.storm_wakes,
                s.alive,
                fmt_f64(s.soc_sum),
                if i + 1 == self.per_site.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Formats an f64 so that byte equality implies bit equality: the exact
/// bit pattern, tagged with a readable rounding.
fn fmt_f64(v: f64) -> String {
    format!(
        "{{\"bits\": \"{:016x}\", \"approx\": {:.6}}}",
        v.to_bits(),
        v
    )
}

/// FNV-1a 64-bit, used for the canonical state digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
