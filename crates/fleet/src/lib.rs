//! Fleet-scale simulation kernel for the Glacsweb reproduction.
//!
//! The paper deploys a handful of Gumsense nodes on one glacier; the
//! design space it opens — base-station hopping to equalise drain,
//! harvest-aware adaptive duty cycling — only matters at many-station
//! scale. This crate grows the reproduction from the two-station
//! [`Deployment`](https://docs.rs/glacsweb) world to **N sites × M
//! stations** (100k+ stations) while keeping the workspace's
//! reproducibility contract: same seed → bit-identical telemetry and
//! summaries, at any thread count, with or without leaping.
//!
//! # Architecture
//!
//! * **Struct-of-arrays station state** ([`Site`]): each per-station
//!   field (battery, RNG stream, microclimate anomaly, schedule cursor)
//!   lives in its own column vector, so batch advancing sweeps cache
//!   lines instead of chasing pointers through 100k station objects.
//! * **Per-site event wheels**: sites are fully independent — their own
//!   [`EventWheel`](glacsweb_sim::EventWheel), climate, storm timeline
//!   and RNG streams — so the fleet shards site-by-site across the
//!   [`glacsweb_sweep`] thread pool with an index-ordered merge.
//! * **Quiescent-station leaping**: a sleeping station whose next event
//!   is its own wake-up is advanced over the whole sleep window with the
//!   closed-form leap entry points pinned in PR 5 —
//!   [`LeadAcidBattery::leap`](glacsweb_power::LeadAcidBattery::leap),
//!   [`OuStepCache::decay_leap`](glacsweb_env::stepcache::OuStepCache::decay_leap)
//!   and [`SimRng::skip_raw`](glacsweb_sim::SimRng::skip_raw) — each of
//!   which replays the exact per-tick recurrence, so leaping is
//!   **bit-identical** to ticking (asserted by this crate's equivalence
//!   tests on top of the existing `leap(n) ≡ n×step` proptests).
//!
//! # Quick start
//!
//! ```
//! use glacsweb_fleet::{Fleet, FleetConfig};
//!
//! // Ten glaciers, fifty stations each, one simulated week.
//! let config = FleetConfig::new(10, 50).seed(2008);
//! let mut fleet = Fleet::new(config).expect("valid config");
//! fleet.run_days(7);
//! let summary = fleet.summary();
//! assert_eq!(summary.stations, 500);
//! assert!(summary.comms_windows() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fleet;
mod kernel;
mod site;
mod trace;

pub use config::{FleetConfig, FleetConfigError};
pub use fleet::{ExecStats, Fleet, FleetState, FleetSummary, SiteSummary};
pub use site::{Site, SiteEvent, Tier, KIND_COMMS, KIND_OVERRIDE, KIND_SAMPLE, TICK};
pub use trace::{WakeEntry, WakeTrace};
