//! Per-site state: climate parameters, storm timeline, and the
//! struct-of-arrays station columns.
//!
//! Everything in this module is either cold setup code or pure
//! parameter math; the hot event loop lives in [`crate::kernel`].

use glacsweb_env::stepcache::OuStepCache;
use glacsweb_power::{LeadAcidBattery, SleepGlide};
use glacsweb_sim::{AmpHours, Amps, Celsius, EventWheel, SimDuration, SimRng, SimTime};
use serde::{de, Deserialize, Serialize, Value};

use crate::config::FleetConfig;

/// The fleet tick: the five-minute MSP430 duty-cycle grid every station
/// schedule lives on. Sleep spans, wake instants and storm boundaries
/// are all whole multiples of this. Five minutes is the paper's own
/// wake-slot scale — the §III power budget prices a duty-cycled reading
/// at 308 s — and a fine grid is exactly where event leaping pays,
/// because a naive stepper's cost scales with the grid and a leap's
/// does not.
pub const TICK: SimDuration = SimDuration::from_mins(5);

/// One tick in hours, the `dt` of every per-tick recurrence.
pub const DT_HOURS: f64 = 1.0 / 12.0;

/// Raw RNG draws budgeted per wake. Every wake consumes exactly this
/// many raw draws — the handler uses what its branches need and
/// [`SimRng::skip_raw`](glacsweb_sim::SimRng::skip_raw) retires the
/// rest — so a station's stream position is a pure function of its wake
/// count, independent of attach outcomes or tier branches.
pub const RAW_DRAWS_PER_WAKE: u64 = 4;

/// State of charge below which a station is declared dead at wake.
pub const DEAD_SOC: f64 = 0.03;

/// State of charge a dead station must recover before restarting.
pub const RESTART_SOC: f64 = 0.15;

/// Wake-kind bit: scheduled sampling wake (or restart check when dead).
pub const KIND_SAMPLE: u8 = 1;
/// Wake-kind bit: daily communications window.
pub const KIND_COMMS: u8 = 2;
/// Wake-kind bit: server-scheduled role-rotation override.
pub const KIND_OVERRIDE: u8 = 4;

/// Power tier of a fleet station — the Table II ladder collapsed to the
/// three running tiers plus `Dead`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Full duty cycle: frequent sampling, best radio.
    S3,
    /// Reduced duty cycle.
    S2,
    /// Survival duty cycle: daily window only.
    S1,
    /// Battery exhausted; recharging with the controller off.
    Dead,
}

impl Tier {
    /// Sampling cadence in ticks (dead stations check for restart).
    pub fn sample_cadence_ticks(self) -> u64 {
        match self {
            Tier::S3 => 72,  // every 6 h
            Tier::S2 => 144, // every 12 h
            Tier::S1 => 288, // daily
            Tier::Dead => 144,
        }
    }

    /// Continuous draw while asleep, in amps.
    pub fn sleep_draw_amps(self) -> f64 {
        match self {
            Tier::S3 => 0.012,
            Tier::S2 => 0.009,
            Tier::S1 => 0.006,
            Tier::Dead => 0.0,
        }
    }

    /// Draw over a wake slot, in amps (before any comms surcharge).
    pub fn wake_draw_amps(self) -> f64 {
        match self {
            Tier::S3 => 0.90,
            Tier::S2 => 0.60,
            Tier::S1 => 0.35,
            Tier::Dead => 0.02,
        }
    }

    /// Baseline GPRS attach success probability.
    pub fn attach_p(self) -> f64 {
        match self {
            Tier::S3 => 0.97,
            Tier::S2 => 0.92,
            Tier::S1 => 0.84,
            Tier::Dead => 0.0,
        }
    }
}

/// Deterministic per-site climate parameters, drawn once at
/// construction from the site's fork of the master seed.
///
/// The site climate is a *pure function of time*: the stochastic parts
/// of a site's weather live in the storm timeline and each station's
/// microclimate OU anomaly, both of which advance on well-defined
/// draws. That split is what makes sleep windows exactly leapable —
/// a sleeping station's inputs are piecewise constant between events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteParams {
    /// Annual mean air temperature, °C.
    pub mean_temp_c: f64,
    /// Seasonal swing amplitude, °C.
    pub season_amp_c: f64,
    /// Diurnal swing amplitude, °C.
    pub diurnal_amp_c: f64,
    /// Solar panel peak output, amps.
    pub panel_amps: f64,
    /// Daily communications slot hour (local).
    pub slot_hour: u32,
    /// Microclimate OU anomaly mean-reversion rate, per hour.
    pub ou_theta: f64,
    /// Microclimate OU anomaly stationary standard deviation, °C.
    pub ou_sd: f64,
}

impl SiteParams {
    fn draw(index: u32, rng: &mut SimRng) -> Self {
        SiteParams {
            mean_temp_c: rng.uniform(-6.0, 2.0),
            season_amp_c: rng.uniform(6.0, 12.0),
            diurnal_amp_c: rng.uniform(2.0, 5.0),
            panel_amps: rng.uniform(0.9, 1.6),
            slot_hour: 9 + index % 6,
            ou_theta: 0.08,
            ou_sd: rng.uniform(0.8, 1.8),
        }
    }

    /// Seasonal insolation factor in `[0.25, 1.0]` (June solstice peak).
    pub fn season_factor(&self, t: SimTime) -> f64 {
        let doy = f64::from(t.day_of_year());
        let phase = (doy - 172.0) / 365.0 * std::f64::consts::TAU;
        (0.25 + 0.75 * phase.cos()).clamp(0.25, 1.0)
    }

    /// Deterministic site air temperature at `t`, °C (before the
    /// per-station microclimate anomaly).
    pub fn temp_c(&self, t: SimTime) -> f64 {
        let doy = f64::from(t.day_of_year());
        let season = ((doy - 200.0) / 365.0 * std::f64::consts::TAU).cos();
        let hour = t.hour_of_day_f64();
        let diurnal = ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        self.mean_temp_c + self.season_amp_c * season + self.diurnal_amp_c * diurnal
    }

    /// Clear-sky panel current over a wake slot at `t`, amps.
    pub fn wake_harvest_amps(&self, t: SimTime) -> f64 {
        let hour = t.hour_of_day_f64();
        let elevation = ((hour - 13.0) / 12.0 * std::f64::consts::PI).cos().max(0.0);
        self.panel_amps * self.season_factor(t) * elevation
    }

    /// Mean clear-sky panel current frozen over a sleep span starting
    /// near `t`, amps — the diurnal-average credit a sleeping charger
    /// banks per tick.
    pub fn sleep_harvest_amps(&self, t: SimTime) -> f64 {
        self.panel_amps * self.season_factor(t) * 0.18
    }
}

/// One-slot memo of the site climate at a single instant.
///
/// [`SiteParams::temp_c`] and friends cost several trig calls and
/// civil-date conversions, and a site's stations wake in tight clusters
/// at the same grid instants — so the wake handler funnels every
/// climate read through this memo instead of re-deriving per station.
/// The memo is *derived state*: a pure function of `(params, t)` used
/// identically by both kernel modes, excluded from equality, and
/// serialised as `Null` (restores rebuild it on first use with the
/// exact same bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClimateMemo {
    at_unix: u64,
    valid: bool,
    temp_c: f64,
    wake_harvest: f64,
    sleep_harvest: f64,
}

impl Serialize for ClimateMemo {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for ClimateMemo {
    fn from_value(_: &Value) -> Result<Self, de::Error> {
        Ok(ClimateMemo::default())
    }
}

impl ClimateMemo {
    /// `(temp_c, wake_harvest_amps, sleep_harvest_amps)` at `t`,
    /// recomputed only when `t` differs from the memoised instant. Each
    /// value is produced by exactly the corresponding [`SiteParams`]
    /// formula, so a hit and a recompute are bit-identical.
    pub fn at(&mut self, params: &SiteParams, t: SimTime) -> (f64, f64, f64) {
        if !self.valid || self.at_unix != t.unix() {
            self.at_unix = t.unix();
            self.temp_c = params.temp_c(t);
            self.wake_harvest = params.wake_harvest_amps(t);
            self.sleep_harvest = params.sleep_harvest_amps(t);
            self.valid = true;
        }
        (self.temp_c, self.wake_harvest, self.sleep_harvest)
    }
}

/// One storm interval on a site's timeline (`[on, off)`, grid-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormSpan {
    /// First tick instant the storm is active.
    pub on: SimTime,
    /// First tick instant after the storm clears.
    pub off: SimTime,
}

/// A site's storm timeline: a lazily extended, chronologically drawn
/// list of grid-aligned storm intervals.
///
/// Extension is driven by queries but the *contents* are a pure
/// function of the site's storm stream — whichever order tick-mode and
/// leap-mode code ask about instants, they materialise the identical
/// list, which is what lets a leap segment a sleep span at exactly the
/// boundaries the per-tick path would have observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormTimeline {
    rng: SimRng,
    spans: Vec<StormSpan>,
    covered_until: SimTime,
    mean_gap_secs: f64,
    mean_len_secs: f64,
    enabled: bool,
}

impl StormTimeline {
    fn new(config: &FleetConfig, start: SimTime, rng: SimRng) -> Self {
        let enabled = config.storm_mean_gap_days > 0.0;
        StormTimeline {
            rng,
            spans: Vec::new(),
            covered_until: start,
            mean_gap_secs: config.storm_mean_gap_days * 86_400.0,
            mean_len_secs: config.storm_mean_hours * 3_600.0,
            enabled,
        }
    }

    /// Materialises every span starting before `until`.
    pub fn ensure(&mut self, until: SimTime) {
        if !self.enabled {
            return;
        }
        let tick = TICK.as_secs();
        while self.covered_until < until {
            let gap = self.rng.exponential(1.0 / self.mean_gap_secs);
            let len = self.rng.exponential(1.0 / self.mean_len_secs);
            let gap_ticks = ((gap / tick as f64).round() as u64).max(1);
            let len_ticks = ((len / tick as f64).round() as u64).max(1);
            let on = self.covered_until + SimDuration::from_secs(gap_ticks * tick);
            let off = on + SimDuration::from_secs(len_ticks * tick);
            self.spans.push(StormSpan { on, off });
            self.covered_until = off;
        }
    }

    /// `true` if a storm is active over the slot starting at `t`.
    /// Requires `ensure(t + TICK)` to have been called.
    pub fn active_at(&self, t: SimTime) -> bool {
        let idx = self.spans.partition_point(|s| s.on <= t);
        idx > 0 && self.spans.get(idx - 1).is_some_and(|s| s.off > t)
    }

    /// Raw-draw position of the storm stream (for state digests).
    pub fn rng_position(&self) -> u64 {
        self.rng.position()
    }

    /// The storm phase at `t` and the instant it ends, capped at `cap`.
    /// Requires `ensure(cap)` to have been called.
    pub fn segment_end(&self, t: SimTime, cap: SimTime) -> (bool, SimTime) {
        let idx = self.spans.partition_point(|s| s.on <= t);
        if idx > 0 {
            if let Some(prev) = self.spans.get(idx - 1) {
                if prev.off > t {
                    return (true, prev.off.min(cap));
                }
            }
        }
        match self.spans.get(idx) {
            Some(next) if next.on < cap => (false, next.on),
            _ => (false, cap),
        }
    }
}

/// Struct-of-arrays station state: one column vector per field, indexed
/// by station number within the site.
///
/// The columns a batch advance touches (`battery`, `ou`, `rng`) are
/// contiguous, so leaping a quiescent fleet walks memory linearly
/// instead of chasing 100k heap objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationArrays {
    /// Battery bank per station, committed up to the glide cursor.
    pub battery: Vec<LeadAcidBattery>,
    /// Microclimate temperature anomaly (OU state) **at the glide
    /// anchor**, °C; the value at tick `k` past the anchor is
    /// `ou · decayᵏ`, evaluated identically by both kernel modes.
    pub ou: Vec<f64>,
    /// Per-station RNG stream (sensing noise, comms attach; exactly
    /// [`RAW_DRAWS_PER_WAKE`] raw draws retired per wake).
    pub rng: Vec<SimRng>,
    /// Current power tier.
    pub tier: Vec<Tier>,
    /// Comms-relay role index (rotated by server overrides).
    pub role: Vec<u32>,
    /// End of the covered timeline: state reflects every tick slot
    /// strictly before this instant.
    pub cursor: Vec<SimTime>,
    /// Next scheduled wake instant.
    pub next_wake: Vec<SimTime>,
    /// Wake-kind bitmask for the scheduled wake.
    pub wake_kinds: Vec<u8>,
    /// Continuous draw while asleep, amps (frozen at the last wake).
    pub sleep_load: Vec<f64>,
    /// Clear-sky harvest credit while asleep, amps (frozen).
    pub sleep_harvest: Vec<f64>,
    /// Battery temperature over the sleep span, °C (frozen).
    pub sleep_temp: Vec<f64>,
    /// Closed-form sleep trajectory for the current constant-current
    /// segment (anchored battery state + per-tick delta).
    pub glide: Vec<SleepGlide>,
    /// Instant the current glide (and OU anchor) was anchored at.
    pub glide_start: Vec<SimTime>,
    /// Storm phase the current glide was anchored in.
    pub glide_storm: Vec<bool>,
}

impl StationArrays {
    /// Number of stations.
    pub fn len(&self) -> usize {
        self.battery.len()
    }

    /// `true` if the site has no stations.
    pub fn is_empty(&self) -> bool {
        self.battery.is_empty()
    }

    /// Checks that every column has exactly `n` rows.
    pub fn columns_consistent(&self, n: usize) -> bool {
        self.battery.len() == n
            && self.ou.len() == n
            && self.rng.len() == n
            && self.tier.len() == n
            && self.role.len() == n
            && self.cursor.len() == n
            && self.next_wake.len() == n
            && self.wake_kinds.len() == n
            && self.sleep_load.len() == n
            && self.sleep_harvest.len() == n
            && self.sleep_temp.len() == n
            && self.glide.len() == n
            && self.glide_start.len() == n
            && self.glide_storm.len() == n
    }
}

/// Aggregate service counters for one site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteCounters {
    /// Comms windows that attached first try.
    pub windows_healthy: u64,
    /// Comms windows that attached on the retry.
    pub windows_degraded: u64,
    /// Comms windows that never attached.
    pub windows_lost: u64,
    /// Stations declared dead at a wake.
    pub deaths: u64,
    /// Dead stations that recovered past the restart threshold.
    pub restarts: u64,
    /// Server role-rotation overrides applied.
    pub overrides: u64,
    /// Comms windows attempted during an active storm.
    pub storm_wakes: u64,
    /// Sampling wakes (restart checks included).
    pub sample_wakes: u64,
}

/// Kernel execution counters for one site — cost accounting only, so
/// they are *excluded* from summaries, telemetry and digests (tick mode
/// and leap mode legitimately differ here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecCounters {
    /// Events popped from the site wheel.
    pub events: u64,
    /// Ticks advanced one at a time (naive path).
    pub ticks_stepped: u64,
    /// Ticks advanced via closed-form leaps.
    pub ticks_leapt: u64,
    /// Leap calls issued.
    pub leaps: u64,
    /// Constant-current segments those leaps split into.
    pub segments: u64,
    /// Wake handlers run.
    pub wakes: u64,
}

impl ExecCounters {
    /// Accumulates another site's counters.
    pub fn absorb(&mut self, other: ExecCounters) {
        self.events += other.events;
        self.ticks_stepped += other.ticks_stepped;
        self.ticks_leapt += other.ticks_leapt;
        self.leaps += other.leaps;
        self.segments += other.segments;
        self.wakes += other.wakes;
    }
}

/// Events on a site's wheel.
///
/// Leap mode schedules only [`SiteEvent::Wake`]s — the wheel holds one
/// event per station. The naive reference kernel schedules a
/// [`SiteEvent::Tick`] per station per five-minute slot instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteEvent {
    /// Naive-mode per-tick advance for one station.
    Tick(u32),
    /// A station's scheduled wake-up.
    Wake(u32),
}

/// One glacier site: independent climate, storm timeline, RNG streams,
/// event wheel and station columns.
///
/// Sites never read each other's state, which is what lets the fleet
/// shard them across the sweep pool and merge results in index order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Site index within the fleet.
    pub index: u32,
    /// Deterministic climate parameters.
    pub params: SiteParams,
    /// Storm timeline.
    pub storms: StormTimeline,
    /// Pending events.
    pub wheel: EventWheel<SiteEvent>,
    /// Station state columns.
    pub st: StationArrays,
    /// Memoised OU step coefficients (derived state; serialises null).
    pub ou_cache: OuStepCache,
    /// Memoised climate at the last-touched instant (derived state).
    pub climate: ClimateMemo,
    /// Aggregate service counters.
    pub counters: SiteCounters,
    /// Kernel cost counters (mode-dependent; never in telemetry).
    pub exec: ExecCounters,
    /// Simulation start.
    pub start: SimTime,
    /// Horizon this site has been advanced to.
    pub now: SimTime,
    /// Whether this site leaps quiescent stations.
    pub leaping: bool,
    /// Server rotation period in days (0 = off).
    pub rotation_days: u32,
}

impl Site {
    /// Builds site `index` of a fleet, forking its streams from the
    /// fleet master RNG.
    pub fn new(config: &FleetConfig, index: u32, master: &mut SimRng) -> Self {
        let mut site_rng = master.fork(u64::from(index));
        let params = SiteParams::draw(index, &mut site_rng);
        let storm_rng = site_rng.fork(1);
        let stations = config.stations_per_site as usize;
        let mut st = StationArrays {
            battery: Vec::with_capacity(stations),
            ou: vec![0.0; stations],
            rng: Vec::with_capacity(stations),
            tier: Vec::with_capacity(stations),
            role: Vec::with_capacity(stations),
            cursor: vec![config.start; stations],
            next_wake: Vec::with_capacity(stations),
            wake_kinds: Vec::with_capacity(stations),
            sleep_load: Vec::with_capacity(stations),
            sleep_harvest: Vec::with_capacity(stations),
            sleep_temp: Vec::with_capacity(stations),
            glide: Vec::with_capacity(stations),
            glide_start: vec![config.start; stations],
            glide_storm: Vec::with_capacity(stations),
        };
        let start = config.start;
        let sleep_temp0 = params.temp_c(start);
        let sleep_harvest0 = params.sleep_harvest_amps(start);
        let mut storms = StormTimeline::new(config, start, storm_rng);
        storms.ensure(start + TICK);
        let storm0 = storms.active_at(start);
        for s in 0..stations {
            let mut rng = site_rng.fork(2 + s as u64);
            let capacity = rng.uniform(30.0, 42.0);
            let soc = rng.uniform(0.5, 0.95);
            let battery = LeadAcidBattery::with_state(AmpHours(capacity), soc);
            let volts = battery.open_circuit_voltage().value();
            let tier = classify_tier(volts);
            let load = tier.sleep_draw_amps();
            let i = if storm0 { -load } else { sleep_harvest0 - load };
            let glide = battery.glide(TICK, Amps(i), Celsius(sleep_temp0));
            st.battery.push(battery);
            st.rng.push(rng);
            st.tier.push(tier);
            st.role.push(s as u32);
            st.wake_kinds.push(KIND_SAMPLE);
            st.sleep_load.push(load);
            st.sleep_harvest.push(sleep_harvest0);
            st.sleep_temp.push(sleep_temp0);
            st.glide.push(glide);
            st.glide_storm.push(storm0);
            st.next_wake.push(start); // placeholder; scheduled below
        }
        let mut site = Site {
            index,
            params,
            storms,
            wheel: EventWheel::new(),
            st,
            ou_cache: OuStepCache::default(),
            climate: ClimateMemo::default(),
            counters: SiteCounters::default(),
            exec: ExecCounters::default(),
            start,
            now: start,
            leaping: config.leaping,
            rotation_days: config.rotation_days,
        };
        for s in 0..stations {
            let tier = site.st.tier[s];
            let role = site.st.role[s];
            let (next, kinds) = site.next_wake_for(start, tier, role);
            site.st.next_wake[s] = next;
            site.st.wake_kinds[s] = kinds;
            let s32 = s as u32;
            if site.leaping {
                site.wheel.push(next, SiteEvent::Wake(s32));
            } else {
                site.wheel.push(start, SiteEvent::Tick(s32));
            }
        }
        site
    }

    /// Number of stations on this site.
    pub fn stations(&self) -> usize {
        self.st.len()
    }

    /// Stations not currently dead.
    pub fn alive(&self) -> usize {
        self.st.tier.iter().filter(|&&t| t != Tier::Dead).count()
    }
}

/// Table II-flavoured tier ladder on the wake terminal voltage.
pub(crate) fn classify_tier(volts: f64) -> Tier {
    if volts >= 12.4 {
        Tier::S3
    } else if volts >= 12.0 {
        Tier::S2
    } else {
        Tier::S1
    }
}
