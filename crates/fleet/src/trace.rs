//! Wake-trace export: the fleet kernel's wake schedule as a flat,
//! replayable request sequence.
//!
//! The service load harness needs to hammer the coordination server the
//! way a real fleet would — thousands of stations waking on the
//! five-minute duty-cycle grid, clustered into daily comms slots, with
//! periodic server-override checks — and it needs the *same* sequence
//! every run so latency comparisons are apples-to-apples. A
//! [`WakeTrace`] is exactly that: every wake instant a fleet would
//! schedule over a horizon, derived from a [`FleetConfig`] without
//! running the power kernel at all.
//!
//! # What a trace is (and is not)
//!
//! The trace freezes each station at the power tier it boots in:
//! [`Site::new`] draws the initial batteries and classifies tiers from
//! the same seed-derived streams the kernel uses, and the schedule walk
//! then applies the kernel's own `next_wake_for` recurrence with that
//! tier and the station's initial comms role. Tier transitions, deaths
//! and role rotations that a *full* simulation would apply are
//! deliberately left out — they depend on battery trajectories, which
//! would force a kernel run just to generate load. What matters for the
//! harness is preserved: the grid alignment, the per-tier cadence mix,
//! the comms-slot clustering (the thundering herd at `slot_hour`), and
//! the rotation-override instants. What is lost is only drift in that
//! mix over time.
//!
//! Determinism: `derive` is a pure function of `(config, days)` — same
//! inputs, same entries, bit for bit.

use glacsweb_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::{FleetConfig, FleetConfigError};
use crate::site::Site;

/// One scheduled wake in a [`WakeTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeEntry {
    /// Wake instant (on the five-minute tick grid).
    pub at: SimTime,
    /// Fleet-global station id:
    /// `site_index * stations_per_site + station_within_site`.
    pub station: u64,
    /// Wake-kind bitmask ([`crate::site::KIND_SAMPLE`] /
    /// [`crate::site::KIND_COMMS`] / [`crate::site::KIND_OVERRIDE`]).
    pub kinds: u8,
}

/// A fleet's wake schedule over a horizon, flattened to one
/// chronologically sorted sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WakeTrace {
    /// Simulation start the entries are relative to.
    pub start: SimTime,
    /// Total stations in the generating fleet.
    pub stations: u64,
    /// Every wake in `[start, start + days)`, sorted by
    /// `(at, station)` — the canonical replay order.
    pub entries: Vec<WakeEntry>,
}

impl WakeTrace {
    /// Derives the wake schedule of the fleet `config` describes over
    /// `days` days.
    ///
    /// Costs O(total wakes): sites are constructed one at a time (their
    /// station columns reuse the kernel's seeding exactly) and dropped
    /// after their stations' schedules are walked.
    pub fn derive(config: &FleetConfig, days: u64) -> Result<WakeTrace, FleetConfigError> {
        config.validate()?;
        let horizon = config.start + SimDuration::from_days(days);
        let mut master = SimRng::seed_from(config.seed);
        let mut entries = Vec::new();
        for i in 0..config.sites {
            let site = Site::new(config, i, &mut master);
            for s in 0..site.stations() {
                let tier = site.st.tier[s];
                let role = site.st.role[s];
                let station = u64::from(i) * u64::from(config.stations_per_site) + s as u64;
                let mut at = site.st.next_wake[s];
                let mut kinds = site.st.wake_kinds[s];
                while at < horizon {
                    entries.push(WakeEntry { at, station, kinds });
                    let (next, next_kinds) = site.next_wake_for(at, tier, role);
                    at = next;
                    kinds = next_kinds;
                }
            }
        }
        entries.sort_by_key(|e| (e.at, e.station));
        Ok(WakeTrace {
            start: config.start,
            stations: u64::from(config.sites) * u64::from(config.stations_per_site),
            entries,
        })
    }

    /// Number of wakes in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the horizon contained no wakes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{KIND_COMMS, KIND_OVERRIDE, KIND_SAMPLE, TICK};

    fn config() -> FleetConfig {
        FleetConfig::new(3, 8).seed(2008)
    }

    #[test]
    fn derive_is_deterministic() {
        let a = WakeTrace::derive(&config(), 3).expect("valid config");
        let b = WakeTrace::derive(&config(), 3).expect("valid config");
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(a.stations, 24);
    }

    #[test]
    fn entries_are_sorted_grid_aligned_and_in_horizon() {
        let trace = WakeTrace::derive(&config(), 2).expect("valid config");
        let horizon = trace.start + SimDuration::from_days(2);
        let tick = TICK.as_secs();
        for pair in trace.entries.windows(2) {
            assert!((pair[0].at, pair[0].station) < (pair[1].at, pair[1].station));
        }
        for e in &trace.entries {
            assert!(e.at >= trace.start && e.at < horizon);
            assert_eq!(e.at.unix() % tick, 0, "wakes live on the tick grid");
            assert!(e.station < trace.stations);
            assert_ne!(e.kinds & (KIND_SAMPLE | KIND_COMMS | KIND_OVERRIDE), 0);
        }
    }

    #[test]
    fn every_station_wakes_and_comms_slots_appear_daily() {
        let trace = WakeTrace::derive(&config(), 3).expect("valid config");
        let mut saw = vec![false; trace.stations as usize];
        let mut comms_per_station = vec![0u32; trace.stations as usize];
        for e in &trace.entries {
            if let Some(slot) = saw.get_mut(e.station as usize) {
                *slot = true;
            }
            if e.kinds & KIND_COMMS != 0 {
                if let Some(c) = comms_per_station.get_mut(e.station as usize) {
                    *c += 1;
                }
            }
        }
        assert!(saw.iter().all(|&s| s), "every station appears");
        assert!(
            comms_per_station.iter().all(|&c| c >= 2),
            "every station hits its daily comms slot (3-day horizon)"
        );
    }

    #[test]
    fn rotation_overrides_land_in_the_trace() {
        let cfg = FleetConfig::new(1, 4).seed(7).rotation_days(1);
        let trace = WakeTrace::derive(&cfg, 3).expect("valid config");
        let overrides = trace
            .entries
            .iter()
            .filter(|e| e.kinds & KIND_OVERRIDE != 0)
            .count();
        assert!(overrides >= 4, "daily rotation × 4 stations over 3 days");
    }

    #[test]
    fn trace_matches_the_kernel_boot_schedule() {
        // The first wake of every station is exactly what Site::new
        // scheduled — the trace reuses the kernel's own seeding.
        let cfg = config();
        let trace = WakeTrace::derive(&cfg, 2).expect("valid config");
        let mut master = SimRng::seed_from(cfg.seed);
        let mut firsts = std::collections::BTreeMap::new();
        for e in &trace.entries {
            firsts.entry(e.station).or_insert((e.at, e.kinds));
        }
        for i in 0..cfg.sites {
            let site = Site::new(&cfg, i, &mut master);
            for s in 0..site.stations() {
                let station = u64::from(i) * u64::from(cfg.stations_per_site) + s as u64;
                assert_eq!(
                    firsts.get(&station),
                    Some(&(site.st.next_wake[s], site.st.wake_kinds[s]))
                );
            }
        }
    }
}
