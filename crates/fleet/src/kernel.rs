//! The fleet event kernel: per-site event loop, the naive per-tick
//! reference path, and the quiescent-station leap dispatch.
//!
//! # Determinism boundary
//!
//! Tick mode and leap mode must be **bit-identical**. Earlier kernels
//! got that by *replaying* the stepped recurrence inside the leap —
//! bit-exact, but O(elided ticks), which caps the speedup near the
//! ratio of per-tick costs. This kernel instead *defines* the sleeping
//! recurrence as anchor-based closed forms, so both modes evaluate the
//! **same expressions** and the leap is O(storm segments) per window:
//!
//! * **Battery**: a [`SleepGlide`](glacsweb_power::SleepGlide) anchors
//!   the bank at the segment start; the state after `k` ticks is
//!   `clamp(soc₀ + k·δ)`. The per-tick path commits the glide at
//!   `k = 1, 2, …`; the leap commits once at `k = n`. Commits re-derive
//!   from the anchor, so any split of the window lands on the same bits.
//! * **Microclimate**: the OU anomaly decays noiselessly while asleep,
//!   `ou(k) = ou₀ · decayᵏ` via
//!   [`OuStepCache::decay_pow`](glacsweb_env::stepcache::OuStepCache::decay_pow)
//!   — again one expression, evaluated at whichever `k` a mode needs.
//! * **RNG**: a sleeping station draws nothing. Every wake retires
//!   exactly [`RAW_DRAWS_PER_WAKE`] raw draws — the handler's branches
//!   use what they need and
//!   [`SimRng::skip_raw`](glacsweb_sim::SimRng::skip_raw) skips the
//!   rest — so stream positions are a pure function of wake count,
//!   independent of attach outcomes or tier branches.
//! * Everything *observable* — counters, draws with consequences,
//!   schedule decisions — happens only inside the shared wake handler,
//!   which both modes call at identical instants.
//!
//! # Leap eligibility
//!
//! A station leaps from its cursor to its next event when that event is
//! its own scheduled wake-up. Pending server overrides and restart
//! checks bound the wake time itself (they are folded into
//! `next_wake_for`), and a storm boundary inside the span re-anchors
//! the glide at exactly the tick the stepped path would have switched
//! current on. Anything that cannot be expressed that way simply
//! schedules an earlier wake — the leap never crosses an observation.

use glacsweb_sim::{Amps, Celsius, SimTime};

use crate::site::{
    classify_tier, Site, SiteEvent, Tier, DEAD_SOC, DT_HOURS, KIND_COMMS, KIND_OVERRIDE,
    KIND_SAMPLE, RAW_DRAWS_PER_WAKE, RESTART_SOC, TICK,
};

/// Whole ticks between two grid-aligned instants.
fn ticks(from: SimTime, to: SimTime) -> u32 {
    u32::try_from(to.saturating_since(from).as_secs() / TICK.as_secs()).unwrap_or(u32::MAX)
}

impl Site {
    /// Advances the site to horizon `h` (tick-grid aligned), processing
    /// every event strictly before `h` and bringing every station's
    /// cursor up to `h`.
    pub fn advance_to(&mut self, h: SimTime) {
        while let Some(t) = self.wheel.peek_time() {
            if t >= h {
                break;
            }
            let Some((t, event)) = self.wheel.pop() else {
                break;
            };
            self.exec.events += 1;
            match event {
                SiteEvent::Tick(s) => {
                    let su = s as usize;
                    if t == self.st.next_wake[su] {
                        self.wake(su, t);
                    } else {
                        self.sleep_tick(su, t);
                    }
                    self.wheel.push(t + TICK, SiteEvent::Tick(s));
                }
                SiteEvent::Wake(s) => {
                    let su = s as usize;
                    self.leap_sleep(su, t);
                    self.wake(su, t);
                    self.wheel.push(self.st.next_wake[su], SiteEvent::Wake(s));
                }
            }
        }
        // Flush the quiescent tail: stations whose next wake lies beyond
        // the horizon still owe the ticks up to it. (In tick mode every
        // cursor already sits at `h`, so this is a no-op.)
        for s in 0..self.st.len() {
            if self.st.cursor[s] < h {
                self.leap_sleep(s, h);
            }
        }
        self.now = h;
    }

    /// One naive sleeping tick for station `s` over the slot
    /// `[t, t+TICK)`: check the storm phase, re-anchor on a boundary,
    /// and commit the glide at this slot's tick index.
    fn sleep_tick(&mut self, s: usize, t: SimTime) {
        self.storms.ensure(t + TICK);
        let storm = self.storms.active_at(t);
        if storm != self.st.glide_storm[s] {
            self.reanchor(s, t, storm);
        }
        let k = ticks(self.st.glide_start[s], t + TICK);
        self.st.glide[s].commit(&mut self.st.battery[s], k);
        self.st.cursor[s] = t + TICK;
        self.exec.ticks_stepped += 1;
    }

    /// Leaps station `s` from its cursor to `until`: one glide commit
    /// per constant-current storm segment, evaluating exactly the
    /// closed forms the per-tick path evaluates at `k = 1, 2, …` —
    /// once, at the segment's final tick index.
    fn leap_sleep(&mut self, s: usize, until: SimTime) {
        let from = self.st.cursor[s];
        if from >= until {
            return;
        }
        self.storms.ensure(until);
        let mut at = from;
        loop {
            let (storm, end) = self.storms.segment_end(at, until);
            if storm != self.st.glide_storm[s] {
                self.reanchor(s, at, storm);
            }
            let k = ticks(self.st.glide_start[s], end);
            self.st.glide[s].commit(&mut self.st.battery[s], k);
            self.exec.segments += 1;
            at = end;
            if at >= until {
                break;
            }
        }
        self.st.cursor[s] = until;
        self.exec.ticks_leapt += u64::from(ticks(from, until));
        self.exec.leaps += 1;
    }

    /// Re-anchors station `s`'s sleep recurrences at instant `t` (a
    /// storm boundary): settle the outgoing glide at `t`, fold the OU
    /// decay accrued since the old anchor, and open a new glide in the
    /// new storm phase. Both modes hit this at identical instants with
    /// identical state, so the re-anchored coefficients agree bitwise.
    fn reanchor(&mut self, s: usize, t: SimTime, storm: bool) {
        let k = ticks(self.st.glide_start[s], t);
        self.st.glide[s].commit(&mut self.st.battery[s], k);
        let decay_k = self
            .ou_cache
            .decay_pow(k, DT_HOURS, self.params.ou_theta, self.params.ou_sd);
        self.st.ou[s] *= decay_k;
        let i = if storm {
            -self.st.sleep_load[s]
        } else {
            self.st.sleep_harvest[s] - self.st.sleep_load[s]
        };
        self.st.glide[s] = self.st.battery[s].glide(TICK, Amps(i), Celsius(self.st.sleep_temp[s]));
        self.st.glide_start[s] = t;
        self.st.glide_storm[s] = storm;
    }

    /// The shared wake handler — the only place a station's state is
    /// observed or branches on randomness, so tick and leap mode call
    /// it with identical inputs at identical instants.
    ///
    /// glacsweb: draw-budget(4)
    fn wake(&mut self, s: usize, t: SimTime) {
        self.exec.wakes += 1;
        self.storms.ensure(t + TICK);
        let storm = self.storms.active_at(t);
        let kinds = self.st.wake_kinds[s];
        let theta = self.params.ou_theta;
        let sd = self.params.ou_sd;
        // Materialise the OU anomaly at the wake instant from its
        // anchor, then advance it across the wake slot itself — noisily
        // when this wake samples (sensing), noiselessly otherwise.
        let k = ticks(self.st.glide_start[s], t);
        let at_wake = self.st.ou[s] * self.ou_cache.decay_pow(k, DT_HOURS, theta, sd);
        let pos0 = self.st.rng[s].position();
        let entry = self.st.tier[s];
        let tier = if entry == Tier::Dead {
            self.wake_dead(s, t, storm, at_wake)
        } else {
            let (decay, step_sd) = self.ou_cache.coeffs(DT_HOURS, theta, sd);
            let ou = if kinds & KIND_SAMPLE != 0 {
                at_wake * decay + self.st.rng[s].normal(0.0, step_sd)
            } else {
                at_wake * decay
            };
            self.st.ou[s] = ou;
            let (site_temp, site_harvest, _) = self.climate.at(&self.params, t);
            let temp = site_temp + ou;
            let soc = self.st.battery[s].state_of_charge();
            let volts = self.st.battery[s]
                .terminal_voltage(Amps(-entry.wake_draw_amps()))
                .value();
            let tier = if soc < DEAD_SOC {
                Tier::Dead
            } else {
                classify_tier(volts)
            };
            let mut comms = false;
            if tier == Tier::Dead {
                self.counters.deaths += 1;
            } else {
                if kinds & KIND_COMMS != 0 {
                    comms = true;
                    self.comms_window(s, tier, storm);
                }
                if kinds & KIND_OVERRIDE != 0 {
                    self.st.role[s] = self.st.role[s].wrapping_add(1);
                    self.counters.overrides += 1;
                }
                if kinds & KIND_SAMPLE != 0 {
                    self.counters.sample_wakes += 1;
                }
            }
            let harvest = if storm { 0.0 } else { site_harvest };
            let gprs = if comms { 1.1 } else { 0.0 };
            let draw = tier.wake_draw_amps() + gprs;
            self.st.battery[s].step(TICK, Amps(harvest - draw), Celsius(temp));
            tier
        };
        // Retire the wake's full raw-draw budget: stream position is a
        // pure function of wake count, whatever branches ran above.
        let used = self.st.rng[s].position() - pos0;
        debug_assert!(used <= RAW_DRAWS_PER_WAKE, "wake overdrew its budget");
        self.st.rng[s].skip_raw(RAW_DRAWS_PER_WAKE - used);
        self.st.tier[s] = tier;
        self.finish_wake(s, t, tier);
    }

    /// Wake path for a station that entered the slot dead: a restart
    /// check on the recharging battery, no sensing, no comms, no draws.
    fn wake_dead(&mut self, s: usize, t: SimTime, storm: bool, at_wake: f64) -> Tier {
        self.counters.sample_wakes += 1;
        let (decay, _) = self
            .ou_cache
            .coeffs(DT_HOURS, self.params.ou_theta, self.params.ou_sd);
        let ou = at_wake * decay;
        self.st.ou[s] = ou;
        let soc = self.st.battery[s].state_of_charge();
        let (site_temp, site_harvest, _) = self.climate.at(&self.params, t);
        let temp = site_temp + ou;
        let tier = if soc >= RESTART_SOC {
            self.counters.restarts += 1;
            Tier::S1
        } else {
            Tier::Dead
        };
        let harvest = if storm { 0.0 } else { site_harvest };
        let draw = Tier::Dead.wake_draw_amps();
        self.st.battery[s].step(TICK, Amps(harvest - draw), Celsius(temp));
        tier
    }

    /// One daily communications window: GPRS attach with one retry,
    /// classified healthy / degraded / lost.
    fn comms_window(&mut self, s: usize, tier: Tier, storm: bool) {
        if storm {
            self.counters.storm_wakes += 1;
        }
        let storm_f = if storm { 0.55 } else { 1.0 };
        let ou_f = 1.0 - 0.012 * self.st.ou[s].abs();
        let p = (tier.attach_p() * storm_f * ou_f).clamp(0.01, 0.995);
        let rng = &mut self.st.rng[s];
        if rng.f64() < p {
            self.counters.windows_healthy += 1;
        } else if rng.f64() < p {
            self.counters.windows_degraded += 1;
        } else {
            self.counters.windows_lost += 1;
        }
    }

    /// Reschedules station `s` after a wake at `t`, freezes the sleep
    /// parameters the next span will run on, and anchors a fresh glide
    /// at the first sleeping tick.
    fn finish_wake(&mut self, s: usize, t: SimTime, tier: Tier) {
        let role = self.st.role[s];
        let (next, kinds) = self.next_wake_for(t, tier, role);
        self.st.next_wake[s] = next;
        self.st.wake_kinds[s] = kinds;
        let (site_temp, _, site_sleep_harvest) = self.climate.at(&self.params, t);
        self.st.sleep_load[s] = tier.sleep_draw_amps();
        self.st.sleep_harvest[s] = site_sleep_harvest;
        self.st.sleep_temp[s] = site_temp + self.st.ou[s];
        let anchor = t + TICK;
        self.storms.ensure(anchor + TICK);
        let storm = self.storms.active_at(anchor);
        let i = if storm {
            -self.st.sleep_load[s]
        } else {
            self.st.sleep_harvest[s] - self.st.sleep_load[s]
        };
        self.st.glide[s] = self.st.battery[s].glide(TICK, Amps(i), Celsius(self.st.sleep_temp[s]));
        self.st.glide_start[s] = anchor;
        self.st.glide_storm[s] = storm;
        self.st.cursor[s] = anchor;
    }

    /// The next wake instant after a wake at `t` for a station in
    /// `tier` with comms role `role`, and the wake kinds due then.
    ///
    /// Server overrides and restart checks are folded in here: anything
    /// that would interrupt a sleep span *bounds* it instead, which is
    /// what keeps every inter-event stretch exactly leapable.
    pub(crate) fn next_wake_for(&self, t: SimTime, tier: Tier, role: u32) -> (SimTime, u8) {
        let mut best = t + TICK * tier.sample_cadence_ticks();
        let mut kinds = KIND_SAMPLE;
        if tier != Tier::Dead {
            let comms = self.next_comms_after(t, role);
            if comms < best {
                best = comms;
                kinds = KIND_COMMS;
            } else if comms == best {
                kinds |= KIND_COMMS;
            }
            if let Some(ovr) = self.next_override_after(t) {
                if ovr < best {
                    best = ovr;
                    kinds = KIND_OVERRIDE;
                } else if ovr == best {
                    kinds |= KIND_OVERRIDE;
                }
            }
        }
        (best, kinds)
    }

    /// The next daily comms slot strictly after `t` for a given role.
    fn next_comms_after(&self, t: SimTime, role: u32) -> SimTime {
        let offset = u64::from(self.params.slot_hour) * 3_600 + u64::from(role % 8) * 1_800;
        let slot = t.start_of_day() + glacsweb_sim::SimDuration::from_secs(offset);
        if slot > t {
            slot
        } else {
            slot + glacsweb_sim::SimDuration::from_days(1)
        }
    }

    /// The next server role-rotation instant strictly after `t`.
    fn next_override_after(&self, t: SimTime) -> Option<SimTime> {
        if self.rotation_days == 0 {
            return None;
        }
        let period = u64::from(self.rotation_days) * 86_400;
        let first =
            self.start.start_of_day() + glacsweb_sim::SimDuration::from_secs(3 * 3_600 + period);
        if t < first {
            return Some(first);
        }
        let k = (t.unix() - first.unix()) / period + 1;
        Some(first + glacsweb_sim::SimDuration::from_secs(k * period))
    }
}
