//! Fleet persistence: `run(60)` is bit-identical to
//! `run(30) → checkpoint → resume → run(60)`, and crafted snapshots are
//! rejected with typed errors rather than restored into panicking worlds.

use glacsweb_fleet::{Fleet, FleetConfig};
use glacsweb_snapshot::{from_bytes, to_bytes};

fn config() -> FleetConfig {
    FleetConfig::new(2, 10).seed(41)
}

#[test]
fn resume_is_bit_identical_to_straight_run() {
    let mut straight = Fleet::new(config()).unwrap();
    straight.run_days(60);

    let mut first = Fleet::new(config()).unwrap();
    first.run_days(30);
    let dir = std::env::temp_dir().join("glacsweb-fleet-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet30.snap");
    first.checkpoint(&path).unwrap();
    let mut resumed = Fleet::resume(&path).unwrap();
    resumed.run_days(30);
    std::fs::remove_file(&path).ok();

    assert_eq!(straight.state_digest(), resumed.state_digest());
    assert_eq!(
        straight.telemetry().to_json(),
        resumed.telemetry().to_json()
    );
    assert_eq!(straight.summary().to_json(), resumed.summary().to_json());
}

#[test]
fn snapshot_round_trips_through_bytes() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(10);
    let bytes = to_bytes(&fleet.snapshot());
    let restored = Fleet::restore(from_bytes(&bytes).unwrap()).unwrap();
    assert_eq!(fleet.state_digest(), restored.state_digest());
}

#[test]
fn restore_rejects_wrong_site_count() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(1);
    let mut state = fleet.snapshot();
    state.sites.pop();
    let err = Fleet::restore(state).unwrap_err();
    assert!(err.to_string().contains("sites"), "{err}");
}

#[test]
fn restore_rejects_clock_before_start() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(1);
    let mut state = fleet.snapshot();
    state.now = state.config.start - glacsweb_sim::SimDuration::from_days(1);
    let err = Fleet::restore(state).unwrap_err();
    assert!(err.to_string().contains("precedes"), "{err}");
}

#[test]
fn restore_rejects_mangled_station_columns() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(1);
    let mut state = fleet.snapshot();
    state.sites[1].st.ou.pop();
    let err = Fleet::restore(state).unwrap_err();
    assert!(err.to_string().contains("columns"), "{err}");
}

#[test]
fn restore_rejects_out_of_range_station_event() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(1);
    let mut state = fleet.snapshot();
    let t = state.now + glacsweb_sim::SimDuration::from_days(1);
    state.sites[0]
        .wheel
        .push(t, glacsweb_fleet::SiteEvent::Wake(10_000));
    let err = Fleet::restore(state).unwrap_err();
    assert!(err.to_string().contains("station"), "{err}");
}

#[test]
fn restore_rejects_invalid_config() {
    let mut fleet = Fleet::new(config()).unwrap();
    fleet.run_days(1);
    let mut state = fleet.snapshot();
    state.config.sites = 0;
    assert!(Fleet::restore(state).is_err());
}
