//! The fleet kernel's load-bearing contract: quiescent-station leaping
//! is **bit-identical** to naive per-tick stepping, and sharding across
//! threads is byte-invisible in every exported artefact.

use glacsweb_fleet::{Fleet, FleetConfig};

fn small_config() -> FleetConfig {
    FleetConfig::new(3, 12).seed(2008)
}

/// Leap mode and naive tick mode walk bit-identical trajectories: every
/// battery/meter bit, OU anomaly, RNG position, schedule cursor and
/// service counter agrees after a 30-day run.
#[test]
fn leaping_is_bit_identical_to_ticking() {
    let mut leap = Fleet::new(small_config().leaping(true)).unwrap();
    let mut tick = Fleet::new(small_config().leaping(false)).unwrap();
    leap.run_days(30);
    tick.run_days(30);
    assert_eq!(
        leap.state_digest(),
        tick.state_digest(),
        "leap and tick kernels diverged"
    );
    assert_eq!(leap.telemetry().to_json(), tick.telemetry().to_json());
    assert_eq!(leap.summary().to_json(), tick.summary().to_json());
}

/// Equivalence holds across interleaved horizons too — leaping must not
/// depend on run_until boundaries lining up with wake instants.
#[test]
fn leaping_is_bit_identical_under_ragged_horizons() {
    let mut leap = Fleet::new(small_config().leaping(true)).unwrap();
    let mut tick = Fleet::new(small_config().leaping(false)).unwrap();
    for days in [1, 3, 2, 7, 1] {
        leap.run_days(days);
        tick.run_days(days);
        assert_eq!(
            leap.state_digest(),
            tick.state_digest(),
            "diverged at a ragged horizon"
        );
    }
}

/// The leap kernel actually leaps: on a quiescent fleet the bulk of
/// simulated ticks are covered by closed-form advances, not stepping.
#[test]
fn leap_mode_actually_leaps() {
    let mut fleet = Fleet::new(small_config().leaping(true)).unwrap();
    fleet.run_days(30);
    let exec = fleet.exec_stats();
    assert!(exec.leaps > 0, "no leap calls issued");
    assert!(
        exec.ticks_leapt > 10 * exec.ticks_stepped.max(1),
        "leap mode stepped too much: {exec:?}"
    );
    let mut naive = Fleet::new(small_config().leaping(false)).unwrap();
    naive.run_days(30);
    let nexec = naive.exec_stats();
    assert_eq!(nexec.leaps, 0, "naive mode must not leap");
    assert!(nexec.ticks_stepped > 0);
}

/// Thread count is byte-invisible: telemetry, summary and digest agree
/// between a single-threaded run and an eight-way sharded run.
#[test]
fn thread_count_is_byte_invisible() {
    let mut one = Fleet::new(small_config()).unwrap();
    one.set_threads(1);
    one.run_days(20);
    let mut eight = Fleet::new(small_config()).unwrap();
    eight.set_threads(8);
    eight.run_days(20);
    assert_eq!(one.state_digest(), eight.state_digest());
    assert_eq!(one.telemetry().to_json(), eight.telemetry().to_json());
    assert_eq!(one.summary().to_json(), eight.summary().to_json());
}

/// Fixed-seed golden digest: any change to fleet trajectory semantics
/// must be deliberate and update this constant (leaping on and off both
/// reproduce it, by the equivalence above).
#[test]
fn fixed_seed_golden_digest() {
    let mut fleet = Fleet::new(small_config()).unwrap();
    fleet.run_days(30);
    let digest = fleet.state_digest();
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "fleet trajectory changed: digest {digest:#018x} (update GOLDEN_DIGEST if deliberate)"
    );
    let mut naive = Fleet::new(small_config().leaping(false)).unwrap();
    naive.run_days(30);
    assert_eq!(naive.state_digest(), GOLDEN_DIGEST);
}

const GOLDEN_DIGEST: u64 = 0x8141_dbc0_0e24_7253;

/// Storms, deaths and recoveries all exercise the kernel's edge paths
/// in a modest run; make sure the scenario is not degenerate.
#[test]
fn scenario_is_not_degenerate() {
    let mut fleet = Fleet::new(FleetConfig::new(4, 25).seed(7).storms(2.0, 24.0)).unwrap();
    fleet.run_days(60);
    let summary = fleet.summary();
    assert!(summary.comms_windows() > 1000, "{summary:?}");
    assert!(summary.storm_wakes > 0, "storms never intersected a window");
    assert!(summary.windows_lost > 0, "attach failures never happened");
    assert!(summary.sample_wakes > 0);
}
