//! Property tests for the item parser: generated brace-balanced
//! Rust-shaped sources must round-trip exactly (every item emitted is
//! recovered, nothing else is), every token and item byte span must lie
//! within the file and slice cleanly, and the parser must stay total on
//! arbitrary balanced token soup. The generator deliberately salts the
//! sources with the things that break naive brace matching: braces and
//! quotes inside strings, line and block comments, and non-ASCII text.

use proptest::prelude::*;

use glacsweb_analyze::lexer::{lex, Tok};
use glacsweb_analyze::parser::{parse_items, Item, ItemKind};
use glacsweb_analyze::rules::test_mask;

const TYS: [&str; 5] = [
    "u32",
    "f64",
    "Vec<f64>",
    "BTreeMap<String, Load>",
    "Option<SimTime>",
];

/// What one generated item must parse back into.
struct Expected {
    kind: ItemKind,
    name: String,
    trait_name: Option<String>,
    children: usize,
    fields: Vec<String>,
}

/// Renders a spec list into source text plus the exact item table the
/// parser must recover. Each spec is `(kind selector, width, seed)`:
/// width sizes the item (field count, nesting depth, method count) and
/// the seed picks noise, derives, and type spellings.
fn render(specs: &[(u8, usize, u64)]) -> (String, Vec<Expected>) {
    let mut src = String::from("//! generated fixture — señor 🚀 unicode in a doc comment\n\n");
    let mut expected = Vec::new();
    for (i, &(sel, width, seed)) in specs.iter().enumerate() {
        // Inter-item noise the parser must skip without losing its place.
        if seed & 1 == 1 {
            src.push_str("// noise: stray } brace and a \"quote\" in a line comment\n");
        }
        if seed & 2 == 2 {
            src.push_str("use std::collections::BTreeMap; /* { unclosed-looking */\n");
        }
        match sel % 6 {
            0 => {
                let name = format!("S{i}");
                if seed & 4 == 4 {
                    src.push_str("#[derive(Debug, Clone, PartialEq)]\n");
                }
                let mut fields = Vec::new();
                if seed & 8 == 8 && width == 0 {
                    src.push_str(&format!("struct {name};\n"));
                } else {
                    src.push_str(&format!("struct {name} {{\n"));
                    for j in 0..=width {
                        let ty = TYS[(seed as usize).wrapping_add(j) % TYS.len()];
                        src.push_str(&format!("    f{j}: {ty},\n"));
                        fields.push(format!("f{j}"));
                    }
                    src.push_str("}\n");
                }
                expected.push(Expected {
                    kind: ItemKind::Struct,
                    name,
                    trait_name: None,
                    children: 0,
                    fields,
                });
            }
            1 => {
                let name = format!("E{i}");
                src.push_str(&format!(
                    "enum {name} {{ Idle, Burst(u32), Window {{ lo: u64, hi: u64 }} }}\n"
                ));
                expected.push(Expected {
                    kind: ItemKind::Enum,
                    name,
                    trait_name: None,
                    children: 0,
                    fields: Vec::new(),
                });
            }
            2 => {
                let name = format!("wake_{i}");
                src.push_str(&format!("fn {name}(x: u32) -> u32 {{\n"));
                for d in 0..width {
                    src.push_str(&format!("{}if x > {d} {{\n", "    ".repeat(d + 1)));
                }
                src.push_str("    let s = \"{ not a { brace\"; // } nor this\n");
                src.push_str("    let u = \"中 { 文 }\"; /* { mixed \" and } inside */\n");
                src.push_str("    let _ = (s, u);\n");
                for d in (0..width).rev() {
                    src.push_str(&format!("{}}}\n", "    ".repeat(d + 1)));
                }
                src.push_str("    x\n}\n");
                expected.push(Expected {
                    kind: ItemKind::Fn,
                    name,
                    trait_name: None,
                    children: 0,
                    fields: Vec::new(),
                });
            }
            3 => {
                let ty = format!("S{i}");
                let trait_name = if seed & 4 == 4 {
                    src.push_str(&format!("impl Serialize for {ty} {{\n"));
                    Some("Serialize".to_string())
                } else {
                    src.push_str(&format!("impl {ty} {{\n"));
                    None
                };
                for j in 0..width {
                    src.push_str(&format!(
                        "    fn m{j}(&self) -> u32 {{ self.inner.get({j}) }}\n"
                    ));
                }
                src.push_str("}\n");
                expected.push(Expected {
                    kind: ItemKind::Impl,
                    name: ty,
                    trait_name,
                    children: width,
                    fields: Vec::new(),
                });
            }
            4 => {
                let name = format!("sub{i}");
                src.push_str(&format!(
                    "mod {name} {{\n    struct Inner{i} {{ v: u32 }}\n}}\n"
                ));
                expected.push(Expected {
                    kind: ItemKind::Mod,
                    name,
                    trait_name: None,
                    children: 1,
                    fields: Vec::new(),
                });
            }
            _ => {
                let name = format!("mark{i}");
                src.push_str(&format!("{name}!(DayPair, SodTable);\n"));
                expected.push(Expected {
                    kind: ItemKind::MacroInvocation,
                    name,
                    trait_name: None,
                    children: 0,
                    fields: Vec::new(),
                });
            }
        }
        src.push('\n');
    }
    (src, expected)
}

/// Every token and item span must stay inside the file and land on char
/// boundaries, so `&src[lo..hi]` never panics.
fn assert_spans_in_bounds(src: &str, toks: &[Tok], items: &[Item]) -> Result<(), TestCaseError> {
    for t in toks {
        prop_assert!(t.lo <= t.hi, "token span inverted: {}..{}", t.lo, t.hi);
        prop_assert!(t.hi as usize <= src.len(), "token ends past EOF");
        prop_assert!(src.is_char_boundary(t.lo as usize));
        prop_assert!(src.is_char_boundary(t.hi as usize));
        let _ = &src[t.lo as usize..t.hi as usize];
    }
    let lines = src.lines().count() as u32;
    let mut stack: Vec<&Item> = items.iter().collect();
    while let Some(item) = stack.pop() {
        prop_assert!(item.lo <= item.hi);
        prop_assert!(item.hi as usize <= src.len());
        prop_assert!(src.is_char_boundary(item.lo as usize));
        prop_assert!(src.is_char_boundary(item.hi as usize));
        prop_assert!(item.line >= 1 && item.line <= lines.max(1));
        if let Some((open, close)) = item.body {
            prop_assert!(open <= close && close < toks.len());
            prop_assert_eq!(&toks[open].text, "{");
            prop_assert_eq!(&toks[close].text, "}");
        }
        stack.extend(item.children.iter());
    }
    Ok(())
}

proptest! {
    /// Items recovered = items emitted: the parser finds exactly the
    /// generated top-level items, in order, with the right kinds, names,
    /// impl traits, child counts, and struct field lists — and every
    /// span it reports is a valid slice of the source.
    #[test]
    fn items_recovered_equal_items_emitted(
        specs in proptest::collection::vec((0u8..6, 0usize..4, any::<u64>()), 0..10),
    ) {
        let (src, expected) = render(&specs);
        let toks = lex(&src);
        let (mask, _) = test_mask(&toks);
        let items = parse_items(&src, &toks, &mask);
        prop_assert_eq!(
            items.len(),
            expected.len(),
            "item count mismatch for source:\n{}",
            src
        );
        for (item, want) in items.iter().zip(&expected) {
            prop_assert_eq!(item.kind, want.kind, "kind of `{}`", want.name);
            prop_assert_eq!(&item.name, &want.name);
            prop_assert_eq!(&item.trait_name, &want.trait_name);
            prop_assert_eq!(
                item.children.len(),
                want.children,
                "children of `{}`",
                want.name
            );
            let got_fields: Vec<&str> = item.fields.iter().map(|f| f.name.as_str()).collect();
            let want_fields: Vec<&str> = want.fields.iter().map(String::as_str).collect();
            prop_assert_eq!(got_fields, want_fields, "fields of `{}`", want.name);
        }
        assert_spans_in_bounds(&src, &toks, &items)?;
    }

    /// Totality: on arbitrary brace-balanced token soup the parser never
    /// panics, and whatever items it does extract still carry in-bounds
    /// spans and well-formed body ranges.
    #[test]
    fn parser_is_total_on_balanced_token_soup(
        picks in proptest::collection::vec(any::<u64>(), 0..160),
    ) {
        const ALPHABET: [&str; 30] = [
            "struct", "enum", "fn", "impl", "trait", "mod", "macro_rules", "for",
            "pub", "where", "ident", "x7", "self",
            "!", "#", "::", "=>", ",", ";", "<", ">", "=", ".", "&", "->",
            "42", "1.5", "\"s{t}r\"", "'a'", "\"中 } 文\"",
        ];
        const OPENERS: [&str; 3] = ["{", "(", "["];
        // Build a balanced stream: openers and closers are dealt from the
        // same picks, mismatched closers are dropped, and every opener
        // still unmatched at the end is closed in LIFO order.
        let mut words: Vec<&str> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for &p in &picks {
            match p % 5 {
                0 => {
                    let d = (p / 5) as usize % OPENERS.len();
                    stack.push(d);
                    words.push(OPENERS[d]);
                }
                1 => {
                    if let Some(d) = stack.pop() {
                        words.push(["}", ")", "]"][d]);
                    }
                }
                _ => words.push(ALPHABET[(p / 5) as usize % ALPHABET.len()]),
            }
        }
        while let Some(d) = stack.pop() {
            words.push(["}", ")", "]"][d]);
        }
        let src = words.join(" ");
        let toks = lex(&src);
        let (mask, _) = test_mask(&toks);
        let items = parse_items(&src, &toks, &mask);
        assert_spans_in_bounds(&src, &toks, &items)?;
    }
}
