//! Engine-level acceptance tests: seeded mutations prove each semantic
//! pack fires on the live workspace, the parallel runner is
//! byte-identical at any thread count, and a warm incremental run
//! re-analyzes zero files while producing the identical report.

use std::path::{Path, PathBuf};

use glacsweb_analyze::{
    analyze_sources, analyze_workspace_with, workspace_sources, Options, Report, RuleId,
};

fn workspace_root() -> PathBuf {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_default()
}

fn live_sources() -> Vec<(String, String)> {
    workspace_sources(&workspace_root()).expect("workspace readable")
}

fn count(report: &Report, rule: RuleId) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

/// Applies one textual mutation to one live file and returns the
/// resulting report plus the baseline. Asserts the anchor text exists so
/// a refactor that moves it fails loudly here instead of silently
/// weakening the mutation.
fn mutate(rel: &str, from: &str, to: &str) -> (Report, Report) {
    let mut files = live_sources();
    let baseline = analyze_sources("live", &files);
    let entry = files
        .iter_mut()
        .find(|(r, _)| r == rel)
        .unwrap_or_else(|| panic!("{rel} not in workspace"));
    assert!(
        entry.1.contains(from),
        "mutation anchor {from:?} missing from {rel}; update the test"
    );
    entry.1 = entry.1.replace(from, to);
    let mutated = analyze_sources("live", &files);
    (baseline, mutated)
}

#[test]
fn live_baseline_is_clean_and_all_packs_are_active() {
    let report = analyze_sources("live", &live_sources());
    let remaining: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        remaining.is_empty(),
        "unsuppressed findings:\n{}",
        remaining.join("\n")
    );
}

#[test]
fn deleting_a_field_from_a_serialize_path_fires_snapshot_coverage_once() {
    let (baseline, mutated) = mutate(
        "crates/power/src/rail.rs",
        "self.harvested.to_value()",
        "Value::Null",
    );
    assert_eq!(
        count(&mutated, RuleId::SnapshotCoverage),
        count(&baseline, RuleId::SnapshotCoverage) + 1
    );
    let finding = mutated
        .findings
        .iter()
        .find(|f| f.rule == RuleId::SnapshotCoverage)
        .expect("coverage finding");
    assert!(!finding.suppressed);
    assert_eq!(finding.file, "crates/power/src/rail.rs");
    assert!(
        finding.message.contains("`harvested`"),
        "{}",
        finding.message
    );
    // No collateral findings from the other packs.
    assert_eq!(
        count(&mutated, RuleId::DerivedState),
        count(&baseline, RuleId::DerivedState)
    );
    assert_eq!(
        count(&mutated, RuleId::RngDrawBudget),
        count(&baseline, RuleId::RngDrawBudget)
    );
}

#[test]
fn unbalancing_a_wake_branch_fires_rng_draw_budget_once() {
    let (baseline, mutated) = mutate(
        "crates/fleet/src/kernel.rs",
        "self.counters.windows_lost += 1;",
        "self.counters.windows_lost += 1; let _ = rng.f64();",
    );
    assert_eq!(
        count(&mutated, RuleId::RngDrawBudget),
        count(&baseline, RuleId::RngDrawBudget) + 1,
        "exactly one budget finding expected"
    );
    let finding = mutated
        .findings
        .iter()
        .find(|f| f.rule == RuleId::RngDrawBudget)
        .expect("budget finding");
    assert!(!finding.suppressed);
    assert_eq!(finding.file, "crates/fleet/src/kernel.rs");
    assert!(
        finding
            .message
            .contains("exceeding the declared budget of 4"),
        "{}",
        finding.message
    );
}

#[test]
fn comparing_a_memo_field_in_partial_eq_fires_derived_state_once() {
    let (baseline, mutated) = mutate(
        "crates/power/src/rail.rs",
        "&& self.brownout_secs == other.brownout_secs",
        "&& self.brownout_secs == other.brownout_secs && self.taper == other.taper",
    );
    assert_eq!(
        count(&mutated, RuleId::DerivedState),
        count(&baseline, RuleId::DerivedState) + 1
    );
    let finding = mutated
        .findings
        .iter()
        .find(|f| f.rule == RuleId::DerivedState)
        .expect("derived-state finding");
    assert!(!finding.suppressed);
    assert_eq!(finding.file, "crates/power/src/rail.rs");
    assert!(finding.message.contains("`taper`"), "{}", finding.message);
    assert_eq!(
        count(&mutated, RuleId::SnapshotCoverage),
        count(&baseline, RuleId::SnapshotCoverage)
    );
}

#[test]
fn report_is_byte_identical_at_threads_1_and_8() {
    let root = workspace_root();
    let (one, _) = analyze_workspace_with(
        &root,
        &Options {
            threads: 1,
            cache_path: None,
        },
    )
    .expect("threads=1 run");
    let (eight, _) = analyze_workspace_with(
        &root,
        &Options {
            threads: 8,
            cache_path: None,
        },
    )
    .expect("threads=8 run");
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "ANALYSIS.json must not depend on thread count"
    );
    assert_eq!(one.render_text(), eight.render_text());
    assert_eq!(
        glacsweb_analyze::sarif::to_sarif(&one),
        glacsweb_analyze::sarif::to_sarif(&eight)
    );
}

#[test]
fn warm_cache_reanalyzes_zero_files_with_identical_report() {
    let root = workspace_root();
    let cache = std::env::temp_dir().join(format!(
        "glacsweb_analysis_cache_test_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let opts = Options {
        threads: 4,
        cache_path: Some(cache.clone()),
    };
    let (cold, cold_stats) = analyze_workspace_with(&root, &opts).expect("cold run");
    assert_eq!(
        cold_stats.reanalyzed, cold_stats.files_total,
        "first run must be fully cold"
    );
    let (warm, warm_stats) = analyze_workspace_with(&root, &opts).expect("warm run");
    assert_eq!(warm_stats.files_total, cold_stats.files_total);
    assert_eq!(
        warm_stats.reanalyzed, 0,
        "unchanged workspace must re-analyze zero files"
    );
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "warm report must be byte-identical to the cold one"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn corrupted_cache_falls_back_to_a_cold_run() {
    let root = workspace_root();
    let cache = std::env::temp_dir().join(format!(
        "glacsweb_analysis_cache_corrupt_{}.json",
        std::process::id()
    ));
    std::fs::write(&cache, "{not json at all").expect("write corrupt cache");
    let opts = Options {
        threads: 2,
        cache_path: Some(cache.clone()),
    };
    let (report, stats) = analyze_workspace_with(&root, &opts).expect("run");
    assert_eq!(stats.reanalyzed, stats.files_total);
    assert!(report.files_scanned > 100);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn stale_ledger_entry_carries_its_own_location() {
    // Satellite regression: a deliberately stale entry's finding must
    // point at the ledger comment itself (clickable from --deny output),
    // not at any rule's original site.
    let mut files = live_sources();
    let entry = files
        .iter_mut()
        .find(|(r, _)| r == "crates/power/src/rail.rs")
        .expect("rail.rs present");
    let stale_line_text =
        "// glacsweb: allow(determinism, reason = \"deliberately stale for the regression test\")";
    entry.1 = format!("{stale_line_text}\n{}", entry.1);
    let report = analyze_sources("live", &files);
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            f.rule == RuleId::SuppressionHygiene && f.message.contains("deliberately stale")
        })
        .collect();
    assert_eq!(stale.len(), 1, "exactly one stale-entry finding");
    assert_eq!(stale[0].file, "crates/power/src/rail.rs");
    assert_eq!(
        stale[0].line, 1,
        "must anchor at the ledger entry's own line"
    );
    assert!(stale[0].message.contains("matches no finding"));
}
