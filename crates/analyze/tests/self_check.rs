//! The analyzer's acceptance gate, turned on itself: the live workspace
//! must analyze clean under `--deny` semantics, and the suppression
//! ledger must be fully justified and fully used.

use std::path::Path;

use glacsweb_analyze::analyze_workspace;
use serde::Value;

fn workspace_root() -> std::path::PathBuf {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_default()
}

#[test]
fn live_workspace_is_clean_under_deny() {
    let report = analyze_workspace(&workspace_root()).expect("workspace readable");
    let remaining: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        remaining.is_empty(),
        "unsuppressed findings in the live workspace:\n{}",
        remaining.join("\n")
    );
}

#[test]
fn live_ledger_is_justified_and_fully_used() {
    let report = analyze_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        !report.suppressions.is_empty(),
        "the workspace is expected to carry a documented ledger (e.g. the md5 block-word lookup)"
    );
    for s in &report.suppressions {
        assert!(
            s.reason.len() >= 10,
            "{}:{} suppression reason too thin: {:?}",
            s.file,
            s.line,
            s.reason
        );
        assert!(s.used, "{}:{} stale suppression", s.file, s.line);
    }
}

#[test]
fn scan_covers_the_whole_workspace() {
    let report = analyze_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        report.files_scanned > 100,
        "expected the full workspace, scanned only {}",
        report.files_scanned
    );
}

#[test]
fn json_report_is_parseable_and_consistent() {
    let report = analyze_workspace(&workspace_root()).expect("workspace readable");
    let json = report.to_json();
    let value: Value = serde_json::from_str(&json).expect("ANALYSIS.json parses");
    let Value::Map(top) = value else {
        panic!("top level must be an object");
    };
    let get = |k: &str| {
        top.iter()
            .find(|(key, _)| matches!(key, Value::Str(s) if s == k))
            .map(|(_, v)| v)
    };
    // Numeric schema version, mirroring BENCH_PERF.json's convention.
    assert!(
        matches!(get("schema"), Some(Value::U64(2))),
        "schema must be the numeric version 2, got {:?}",
        get("schema")
    );
    assert!(matches!(get("tool"), Some(Value::Str(s)) if s == "glacsweb-analyze"));
    let Some(Value::Seq(rules)) = get("rules") else {
        panic!("rules array missing");
    };
    assert_eq!(rules.len(), 9);
    let Some(Value::Map(summary)) = get("summary") else {
        panic!("summary missing");
    };
    let clean = summary
        .iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == "clean"))
        .map(|(_, v)| matches!(v, Value::Bool(true)));
    assert_eq!(clean, Some(true), "live workspace must report clean: true");
    let Some(Value::Seq(sups)) = get("suppressions") else {
        panic!("suppressions array missing");
    };
    assert_eq!(sups.len(), report.suppressions.len());
}
