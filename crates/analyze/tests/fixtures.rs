//! Fixture tests: for every rule, at least one snippet that must fire
//! and one that must not, plus the scoping and suppression mechanics.
//!
//! Each fixture is analyzed under a synthetic workspace-relative path,
//! because the path is what places a file in (or out of) a rule's scope.

use glacsweb_analyze::{analyze_source, RuleId};

/// Findings of one rule in `src` analyzed under `rel`.
fn fire(rel: &str, src: &str, rule: RuleId) -> usize {
    analyze_source(rel, src)
        .0
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .count()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_fires_on_hashmap_in_sim_lib() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    assert!(fire("crates/sim/src/fake.rs", src, RuleId::Determinism) >= 1);
}

#[test]
fn determinism_fires_on_wall_clock_and_env() {
    let src = "fn f() { let t = std::time::Instant::now(); let v = std::env::var(\"X\"); }\n";
    assert_eq!(
        fire("crates/sweep/src/fake.rs", src, RuleId::Determinism),
        2
    );
}

#[test]
fn determinism_ignores_btreemap_and_out_of_scope_crates() {
    let ordered = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
    assert_eq!(
        fire("crates/env/src/fake.rs", ordered, RuleId::Determinism),
        0
    );
    // station is not in the determinism scope (it is in the panic scope).
    let hash = "use std::collections::HashMap;\n";
    assert_eq!(
        fire("crates/station/src/fake.rs", hash, RuleId::Determinism),
        0
    );
}

#[test]
fn determinism_ignores_comments_strings_and_tests() {
    let src = r#"
// a HashMap would be wrong here
fn f() { let s = "HashMap"; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
"#;
    assert_eq!(fire("crates/sim/src/fake.rs", src, RuleId::Determinism), 0);
}

#[test]
fn determinism_skips_test_and_example_files() {
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    assert_eq!(
        fire("crates/sim/tests/fake.rs", src, RuleId::Determinism),
        0
    );
    assert_eq!(fire("examples/fake.rs", src, RuleId::Determinism), 0);
    assert_eq!(
        fire("crates/bench/src/bin/perf.rs", src, RuleId::Determinism),
        0
    );
}

// --------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_fires_on_unwrap_expect_and_macros() {
    let src = "fn f(x: Option<u32>) -> u32 { let _ = x.expect(\"y\"); match x { Some(v) => v, None => panic!(\"no\") } }\n";
    assert_eq!(
        fire("crates/station/src/fake.rs", src, RuleId::PanicFreedom),
        2
    );
    let src2 = "fn g(x: Option<u32>) -> u32 { x.unwrap() }\nfn h() { unreachable!() }\n";
    assert_eq!(
        fire("crates/link/src/fake.rs", src2, RuleId::PanicFreedom),
        2
    );
}

#[test]
fn panic_freedom_does_not_fire_on_unwrap_or_variants() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }\n";
    assert_eq!(
        fire("crates/power/src/fake.rs", src, RuleId::PanicFreedom),
        0
    );
}

#[test]
fn panic_freedom_fires_on_indexing_but_not_array_types() {
    let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
    assert_eq!(
        fire("crates/server/src/fake.rs", src, RuleId::PanicFreedom),
        1
    );
    let benign = "fn f() -> [u8; 4] { let x: [u8; 4] = [0; 4]; x }\nstatic T: [u32; 2] = [1, 2];\n";
    assert_eq!(
        fire("crates/server/src/fake.rs", benign, RuleId::PanicFreedom),
        0
    );
    // Range slicing panics too.
    let slicing = "fn f(v: &[u32]) -> &[u32] { &v[1..] }\n";
    assert_eq!(
        fire("crates/faults/src/fake.rs", slicing, RuleId::PanicFreedom),
        1
    );
}

#[test]
fn panic_freedom_exempts_tests_and_out_of_scope_crates() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}\n";
    assert_eq!(
        fire("crates/station/src/fake.rs", src, RuleId::PanicFreedom),
        0
    );
    // sim is not in the panic scope.
    let lib = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(fire("crates/sim/src/fake.rs", lib, RuleId::PanicFreedom), 0);
}

// -------------------------------------------------------------- numeric-safety

#[test]
fn numeric_safety_fires_on_int_casts_and_float_eq() {
    let src = "fn f(x: f64) -> u32 { x as u32 }\nfn g(x: f64) -> bool { x == 0.0 }\n";
    assert_eq!(
        fire("crates/power/src/fake.rs", src, RuleId::NumericSafety),
        2
    );
    assert_eq!(
        fire(
            "crates/station/src/power_state.rs",
            src,
            RuleId::NumericSafety
        ),
        2
    );
    assert_eq!(
        fire("crates/station/src/schedule.rs", src, RuleId::NumericSafety),
        2
    );
}

#[test]
fn numeric_safety_allows_float_casts_epsilon_compares_and_other_files() {
    let benign = "fn f(x: u32) -> f64 { f64::from(x) }\nfn g(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 }\nfn h(x: u8) -> u64 { u64::from(x) }\n";
    assert_eq!(
        fire("crates/power/src/fake.rs", benign, RuleId::NumericSafety),
        0
    );
    // Out of the numeric scope: the same cast is allowed elsewhere.
    let cast = "fn f(x: f64) -> u32 { x as u32 }\n";
    assert_eq!(
        fire("crates/station/src/station.rs", cast, RuleId::NumericSafety),
        0
    );
    assert_eq!(
        fire("crates/sim/src/fake.rs", cast, RuleId::NumericSafety),
        0
    );
}

// ---------------------------------------------------------------- perf-hygiene

#[test]
fn perf_hygiene_fires_on_format_collect_and_clone_in_hot_paths() {
    let src = "fn f(x: u32, v: &[String]) -> Vec<String> {\n    let s = format!(\"{x}\");\n    let c = v.first().map(|t| t.clone());\n    v.iter().map(|t| t.to_uppercase()).collect::<Vec<_>>()\n}\n";
    assert_eq!(fire("crates/env/src/fake.rs", src, RuleId::PerfHygiene), 3);
    assert_eq!(
        fire("crates/power/src/fake.rs", src, RuleId::PerfHygiene),
        3
    );
    assert_eq!(fire("crates/sim/src/event.rs", src, RuleId::PerfHygiene), 3);
    assert_eq!(fire("crates/sim/src/wheel.rs", src, RuleId::PerfHygiene), 3);
}

#[test]
fn perf_hygiene_fires_on_to_string_and_covers_the_service_hot_path() {
    let src = "fn f(x: u32) -> String { x.to_string() }\n";
    assert_eq!(fire("crates/env/src/fake.rs", src, RuleId::PerfHygiene), 1);
    // The request→response path is in scope…
    assert_eq!(
        fire("crates/service/src/http.rs", src, RuleId::PerfHygiene),
        1
    );
    assert_eq!(
        fire("crates/service/src/core.rs", src, RuleId::PerfHygiene),
        1
    );
    // …but the load harness and serve bin are client/tooling code.
    assert_eq!(
        fire("crates/service/src/load.rs", src, RuleId::PerfHygiene),
        0
    );
    assert_eq!(
        fire("crates/service/src/bin/serve.rs", src, RuleId::PerfHygiene),
        0
    );
    // `to_string` must be a method call: `Display::to_string` paths and
    // idents named to_string alone do not fire.
    let benign = "fn f(s: &str) -> &str { s }\n";
    assert_eq!(
        fire("crates/service/src/http.rs", benign, RuleId::PerfHygiene),
        0
    );
}

#[test]
fn perf_hygiene_allows_cloned_iterators_and_annotated_collect() {
    // `.cloned()` / `.clone_from()` are not `.clone()`, and a `collect()`
    // without the Vec turbofish is the caller's choice of container.
    let benign =
        "fn f(v: &[u32]) -> Vec<u32> { let out: Vec<u32> = v.iter().cloned().collect(); out }\n";
    assert_eq!(
        fire("crates/env/src/fake.rs", benign, RuleId::PerfHygiene),
        0
    );
}

#[test]
fn perf_hygiene_exempts_cold_files_tests_and_bins() {
    let src = "fn f(x: u32) -> String { format!(\"{x}\") }\n";
    // Out of the hot-path scope entirely.
    assert_eq!(
        fire("crates/station/src/fake.rs", src, RuleId::PerfHygiene),
        0
    );
    assert_eq!(fire("crates/sim/src/units.rs", src, RuleId::PerfHygiene), 0);
    // Bins and tests are never lib scope.
    assert_eq!(
        fire("crates/env/src/bin/fake.rs", src, RuleId::PerfHygiene),
        0
    );
    assert_eq!(
        fire("crates/env/tests/fake.rs", src, RuleId::PerfHygiene),
        0
    );
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f(x: u32) -> String { format!(\"{x}\") }\n}\n";
    assert_eq!(
        fire("crates/env/src/fake.rs", in_test, RuleId::PerfHygiene),
        0
    );
}

#[test]
fn perf_hygiene_suppression_ledger_applies() {
    let src = "fn f(x: u32) -> String {\n    // glacsweb: allow(perf-hygiene, reason = \"error path, runs once\")\n    format!(\"{x}\")\n}\n";
    let (findings, sups) = analyze_source("crates/power/src/fake.rs", src);
    assert!(findings
        .iter()
        .all(|f| f.suppressed || f.rule != RuleId::PerfHygiene));
    assert!(sups.iter().all(|s| s.used));
}

// --------------------------------------------------------------- crate-hygiene

#[test]
fn crate_hygiene_fires_on_missing_attributes() {
    let bare = "//! A crate.\npub fn f() {}\n";
    assert_eq!(
        fire("crates/power/src/lib.rs", bare, RuleId::CrateHygiene),
        2
    );
    let half = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert_eq!(
        fire("crates/power/src/lib.rs", half, RuleId::CrateHygiene),
        1
    );
}

#[test]
fn crate_hygiene_satisfied_by_both_attributes() {
    let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    assert_eq!(
        fire("crates/power/src/lib.rs", good, RuleId::CrateHygiene),
        0
    );
    // Only crate roots are checked.
    let bare = "pub fn f() {}\n";
    assert_eq!(
        fire("crates/power/src/other.rs", bare, RuleId::CrateHygiene),
        0
    );
}

// ----------------------------------------------------------------- suppression

#[test]
fn suppression_on_same_line_silences_the_finding() {
    let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] } // glacsweb: allow(panic-freedom, reason = \"i is clamped by the caller\")\n";
    let (findings, sups) = analyze_source("crates/station/src/fake.rs", src);
    assert!(findings
        .iter()
        .all(|f| f.suppressed || f.rule != RuleId::PanicFreedom));
    assert_eq!(sups.len(), 1);
    assert!(sups.iter().all(|s| s.used));
    assert_eq!(
        sups.first().map(|s| s.reason.as_str()),
        Some("i is clamped by the caller")
    );
}

#[test]
fn suppression_on_line_above_silences_the_finding() {
    let src = "fn f(v: &[u32], i: usize) -> u32 {\n    // glacsweb: allow(panic-freedom, reason = \"bounds proven above\")\n    v[i]\n}\n";
    let (findings, _) = analyze_source("crates/station/src/fake.rs", src);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::PanicFreedom && !f.suppressed)
            .count(),
        0
    );
}

#[test]
fn suppression_of_wrong_rule_does_not_silence() {
    let src = "fn f(v: &[u32], i: usize) -> u32 {\n    // glacsweb: allow(determinism, reason = \"wrong rule\")\n    v[i]\n}\n";
    let (findings, _) = analyze_source("crates/station/src/fake.rs", src);
    // The indexing finding survives, and the mismatched entry is stale.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::PanicFreedom && !f.suppressed)
            .count(),
        1
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::SuppressionHygiene)
            .count(),
        1
    );
}

#[test]
fn malformed_suppressions_are_their_own_findings() {
    let unknown = "// glacsweb: allow(no-such-rule, reason = \"x\")\nfn f() {}\n";
    assert_eq!(
        fire(
            "crates/station/src/fake.rs",
            unknown,
            RuleId::SuppressionHygiene
        ),
        1
    );
    let reasonless = "fn f(v: &[u32]) -> u32 { v[0] } // glacsweb: allow(panic-freedom)\n";
    let (findings, _) = analyze_source("crates/station/src/fake.rs", reasonless);
    // Missing reason: the entry is rejected AND the finding survives.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::SuppressionHygiene)
            .count(),
        1
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == RuleId::PanicFreedom && !f.suppressed)
            .count(),
        1
    );
}

#[test]
fn unused_suppression_is_flagged_and_doc_examples_are_not_entries() {
    let unused = "// glacsweb: allow(panic-freedom, reason = \"nothing here fires\")\nfn f() {}\n";
    assert_eq!(
        fire(
            "crates/station/src/fake.rs",
            unused,
            RuleId::SuppressionHygiene
        ),
        1
    );
    let doc = "/// // glacsweb: allow(panic-freedom, reason = \"just documentation\")\nfn f() {}\n";
    assert_eq!(
        fire(
            "crates/station/src/fake.rs",
            doc,
            RuleId::SuppressionHygiene
        ),
        0
    );
}
