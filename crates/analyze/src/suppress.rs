//! The suppression ledger.
//!
//! A finding may be silenced only by an inline ledger entry of the form
//! (shown here doc-prefixed so the scanner ignores this very file):
//!
//! ```text
//! // glacsweb: allow(panic-freedom, reason = "g is reduced mod 16 above")
//! ```
//!
//! placed either at the end of the offending line or on the line directly
//! above it. The entry must name a real rule and carry a non-empty
//! reason; the analyzer reports every entry (used or not) so the ledger
//! is a reviewable artifact, and an entry that suppresses nothing is
//! itself a `suppression-hygiene` finding — stale entries cannot
//! accumulate silently.

use crate::rules::{Finding, RuleId};

/// One parsed `glacsweb: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The mandatory human-written justification.
    pub reason: String,
    /// Set during matching if this entry silenced at least one finding.
    pub used: bool,
}

/// Scans raw source lines for ledger entries. `skip_ranges` holds the
/// line spans of `#[cfg(test)]` regions, where suppressions are
/// meaningless (no rule fires there) and therefore not collected.
///
/// Malformed entries (unknown rule, missing reason) are returned as
/// `suppression-hygiene` findings rather than suppressions.
pub fn scan(
    rel: &str,
    source: &str,
    skip_ranges: &[(u32, u32)],
) -> (Vec<Suppression>, Vec<Finding>) {
    // Built from fragments so this file's own source line never matches.
    let marker: String = ["// glacsweb", ": allow("].concat();
    let mut sups = Vec::new();
    let mut finds = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        if skip_ranges.iter().any(|&(a, b)| line >= a && line <= b) {
            continue;
        }
        let Some(pos) = raw.find(&marker) else {
            continue;
        };
        // Doc comments (`///`, `//!`) quoting the syntax are not entries.
        let lead = raw.trim_start();
        if lead.starts_with("///") || lead.starts_with("//!") {
            continue;
        }
        let body = &raw[pos + marker.len()..];
        if !body.contains(')') {
            finds.push(bad(rel, line, "unterminated `allow(` entry"));
            continue;
        }
        let rule_name = body.split([',', ')']).next().unwrap_or("").trim();
        let Some(rule) = RuleId::from_name(rule_name) else {
            finds.push(bad(
                rel,
                line,
                &format!("unknown rule {rule_name:?} in suppression"),
            ));
            continue;
        };
        let reason = body
            .split_once("reason")
            .and_then(|(_, rest)| rest.split_once('"'))
            .and_then(|(_, rest)| rest.split_once('"'))
            .map(|(r, _)| r.trim().to_string())
            .unwrap_or_default();
        if reason.is_empty() {
            finds.push(bad(
                rel,
                line,
                "suppression is missing a non-empty `reason = \"...\"`",
            ));
            continue;
        }
        sups.push(Suppression {
            rule,
            file: rel.to_string(),
            line,
            reason,
            used: false,
        });
    }
    (sups, finds)
}

fn bad(rel: &str, line: u32, msg: &str) -> Finding {
    Finding {
        rule: RuleId::SuppressionHygiene,
        file: rel.to_string(),
        line,
        message: msg.to_string(),
        suppressed: false,
    }
}

/// Matches findings against the ledger: a suppression covers findings of
/// its rule on its own line or the line directly below. Afterwards,
/// entries that silenced nothing become `suppression-hygiene` findings —
/// anchored at the ledger entry's *own* file:line (not any rule's
/// original site), so a `--deny` failure is a clickable pointer to the
/// exact comment to delete.
pub fn apply(findings: &mut [Finding], sups: &mut [Suppression]) -> Vec<Finding> {
    for f in findings.iter_mut() {
        for s in sups.iter_mut() {
            if s.rule == f.rule && s.file == f.file && (f.line == s.line || f.line == s.line + 1) {
                f.suppressed = true;
                s.used = true;
            }
        }
    }
    sups.iter()
        .filter(|s| !s.used)
        .map(|s| Finding {
            rule: RuleId::SuppressionHygiene,
            file: s.file.clone(),
            line: s.line,
            message: format!(
                "suppression of `{}` matches no finding; delete the stale entry \
                 (its recorded reason: {:?})",
                s.rule.name(),
                s.reason
            ),
            suppressed: false,
        })
        .collect()
}
