//! Rendering: human-readable diagnostics and the `ANALYSIS.json` artifact.
//!
//! JSON emission is hand-rolled (the analyzer is dependency-free by
//! design); the schema is small and flat enough that a string builder
//! with a correct escaper is simpler than pulling in a serializer.

use crate::rules::{Finding, RuleId};
use crate::suppress::Suppression;

/// `ANALYSIS.json` format version. 1 was the string-schema token-rule
/// report; 2 adds the semantic rule packs and the numeric version field.
pub const REPORT_SCHEMA: u64 = 2;

/// The complete result of analyzing a workspace.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Every finding, including suppressed ones, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Every ledger entry, sorted by (file, line).
    pub suppressions: Vec<Suppression>,
}

impl Report {
    /// Findings not covered by a ledger entry — what `--deny` gates on.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Sorts findings and suppressions into stable reporting order.
    pub fn normalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// The human-readable diagnostic listing.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n",
                f.rule.name(),
                f.message,
                f.file,
                f.line
            ));
        }
        let denied = self.unsuppressed().count();
        let suppressed = self.findings.len() - denied;
        out.push_str(&format!(
            "glacsweb-analyze: {} file(s) scanned, {} finding(s) ({} suppressed), \
             {} ledger entr(ies)\n",
            self.files_scanned,
            self.findings.len(),
            suppressed,
            self.suppressions.len()
        ));
        if !self.suppressions.is_empty() {
            out.push_str("suppression ledger:\n");
            for s in &self.suppressions {
                out.push_str(&format!(
                    "  {}:{} allow({}) — {}\n",
                    s.file,
                    s.line,
                    s.rule.name(),
                    s.reason
                ));
            }
        }
        out
    }

    /// The machine-readable `ANALYSIS.json` document. `schema` is a
    /// numeric format version (mirroring `BENCH_PERF.json`'s convention)
    /// so downstream tooling can gate on format changes; `tool` carries
    /// the emitter name the old string schema used to encode.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        o.push_str(&format!("  \"schema\": {REPORT_SCHEMA},\n"));
        o.push_str("  \"tool\": \"glacsweb-analyze\",\n");
        o.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        o.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        o.push_str("  \"rules\": [\n");
        let rules: Vec<String> = RuleId::ALL
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": {}, \"description\": {}}}",
                    json_str(r.name()),
                    json_str(r.description())
                )
            })
            .collect();
        o.push_str(&rules.join(",\n"));
        o.push_str("\n  ],\n");
        o.push_str("  \"findings\": [\n");
        let finds: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \
                     \"suppressed\": {}}}",
                    json_str(f.rule.name()),
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message),
                    f.suppressed
                )
            })
            .collect();
        o.push_str(&finds.join(",\n"));
        o.push_str(if finds.is_empty() {
            "  ],\n"
        } else {
            "\n  ],\n"
        });
        o.push_str("  \"suppressions\": [\n");
        let sups: Vec<String> = self
            .suppressions
            .iter()
            .map(|s| {
                format!(
                    "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \
                     \"used\": {}}}",
                    json_str(s.rule.name()),
                    json_str(&s.file),
                    s.line,
                    json_str(&s.reason),
                    s.used
                )
            })
            .collect();
        o.push_str(&sups.join(",\n"));
        o.push_str(if sups.is_empty() {
            "  ],\n"
        } else {
            "\n  ],\n"
        });
        let denied = self.unsuppressed().count();
        o.push_str("  \"summary\": {\n");
        o.push_str(&format!("    \"findings\": {},\n", self.findings.len()));
        o.push_str(&format!(
            "    \"suppressed\": {},\n",
            self.findings.len() - denied
        ));
        o.push_str(&format!("    \"unsuppressed\": {},\n", denied));
        o.push_str(&format!("    \"clean\": {}\n", denied == 0));
        o.push_str("  }\n}\n");
        o
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
