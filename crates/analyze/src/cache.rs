//! The incremental analysis cache (`ANALYSIS_CACHE.json`).
//!
//! Per-file analysis is a pure function of the file's text, so results
//! are cached keyed by an FNV-1a content hash: a warm run over an
//! unchanged workspace re-analyzes zero files and still produces a
//! byte-identical report. The cache stores *pristine* per-file results —
//! findings before suppression matching, ledger entries with `used`
//! unset — because suppression matching is a whole-run operation (a
//! semantic finding produced by another file's facts can be silenced by
//! this file's ledger).
//!
//! Robustness over cleverness: a missing, truncated, or
//! version-mismatched cache file is simply a cold run, and any entry
//! that fails to decode is dropped individually.

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{parse, Jv};
use crate::rules::{Finding, RuleId};
use crate::semantic::{DrawTree, FieldFact, FileFacts, FnFact, ImplFact, StructFact};
use crate::suppress::Suppression;
use crate::FileAnalysis;

/// Cache format version; bump on any codec or rule-pack change so stale
/// caches from older binaries are discarded wholesale.
pub const CACHE_SCHEMA: u64 = 3;

/// FNV-1a 64-bit hash of the file's bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content hash as stored in the cache file.
pub fn hash_hex(source: &str) -> String {
    format!("{:016x}", fnv64(source.as_bytes()))
}

/// Loads the cache: rel path -> (content hash, pristine analysis). Any
/// read or parse problem yields an empty map (a cold run), never an
/// error.
pub fn load(path: &Path) -> BTreeMap<String, (String, FileAnalysis)> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let Some(doc) = parse(&text) else {
        return out;
    };
    if doc.get("schema").and_then(Jv::as_u64) != Some(CACHE_SCHEMA) {
        return out;
    }
    let Some(files) = doc.get("files").and_then(Jv::as_arr) else {
        return out;
    };
    for entry in files {
        let Some((hash, fa)) = decode_entry(entry) else {
            continue;
        };
        out.insert(fa.rel.clone(), (hash, fa));
    }
    out
}

/// Serializes the cache document. `entries` must be sorted by rel path
/// for deterministic output.
pub fn render(entries: &[(String, &FileAnalysis)]) -> String {
    let files: Vec<Jv> = entries
        .iter()
        .map(|(hash, fa)| encode_entry(hash, fa))
        .collect();
    Jv::Obj(vec![
        ("schema".into(), Jv::Num(CACHE_SCHEMA as f64)),
        ("files".into(), Jv::Arr(files)),
    ])
    .emit()
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

fn num(n: u64) -> Jv {
    Jv::Num(n as f64)
}

fn strs(items: &[String]) -> Jv {
    Jv::Arr(items.iter().map(|s| Jv::Str(s.clone())).collect())
}

fn encode_entry(hash: &str, fa: &FileAnalysis) -> Jv {
    Jv::Obj(vec![
        ("rel".into(), Jv::Str(fa.rel.clone())),
        ("hash".into(), Jv::Str(hash.to_string())),
        (
            "findings".into(),
            Jv::Arr(fa.findings.iter().map(encode_finding).collect()),
        ),
        (
            "sups".into(),
            Jv::Arr(fa.sups.iter().map(encode_sup).collect()),
        ),
        ("facts".into(), encode_facts(&fa.facts)),
    ])
}

fn encode_finding(f: &Finding) -> Jv {
    Jv::Obj(vec![
        ("rule".into(), Jv::Str(f.rule.name().to_string())),
        ("file".into(), Jv::Str(f.file.clone())),
        ("line".into(), num(u64::from(f.line))),
        ("message".into(), Jv::Str(f.message.clone())),
    ])
}

fn encode_sup(s: &Suppression) -> Jv {
    Jv::Obj(vec![
        ("rule".into(), Jv::Str(s.rule.name().to_string())),
        ("file".into(), Jv::Str(s.file.clone())),
        ("line".into(), num(u64::from(s.line))),
        ("reason".into(), Jv::Str(s.reason.clone())),
    ])
}

fn encode_facts(facts: &FileFacts) -> Jv {
    Jv::Obj(vec![
        ("rel".into(), Jv::Str(facts.rel.clone())),
        (
            "structs".into(),
            Jv::Arr(
                facts
                    .structs
                    .iter()
                    .map(|s| {
                        Jv::Obj(vec![
                            ("name".into(), Jv::Str(s.name.clone())),
                            ("line".into(), num(u64::from(s.line))),
                            ("derives".into(), strs(&s.derives)),
                            (
                                "fields".into(),
                                Jv::Arr(
                                    s.fields
                                        .iter()
                                        .map(|f| {
                                            Jv::Obj(vec![
                                                ("name".into(), Jv::Str(f.name.clone())),
                                                ("line".into(), num(u64::from(f.line))),
                                                ("ty".into(), strs(&f.ty)),
                                                ("ann".into(), Jv::Bool(f.annotated)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "impls".into(),
            Jv::Arr(
                facts
                    .impls
                    .iter()
                    .map(|im| {
                        Jv::Obj(vec![
                            ("trait".into(), Jv::Str(im.trait_name.clone())),
                            ("ty".into(), Jv::Str(im.ty.clone())),
                            ("line".into(), num(u64::from(im.line))),
                            (
                                "idents".into(),
                                Jv::Arr(im.idents.iter().map(|s| Jv::Str(s.clone())).collect()),
                            ),
                            ("null".into(), Jv::Bool(im.mentions_null)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fns".into(),
            Jv::Arr(
                facts
                    .fns
                    .iter()
                    .map(|f| {
                        Jv::Obj(vec![
                            ("name".into(), Jv::Str(f.name.clone())),
                            (
                                "ty".into(),
                                f.ty.as_ref().map_or(Jv::Null, |t| Jv::Str(t.clone())),
                            ),
                            ("line".into(), num(u64::from(f.line))),
                            ("budget".into(), f.budget.map_or(Jv::Null, num)),
                            ("tree".into(), encode_tree(&f.tree)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("marks".into(), strs(&facts.macro_marks)),
    ])
}

fn encode_tree(tree: &DrawTree) -> Jv {
    match tree {
        DrawTree::Seq(children) => Jv::Obj(vec![
            ("t".into(), Jv::Str("seq".into())),
            (
                "c".into(),
                Jv::Arr(children.iter().map(encode_tree).collect()),
            ),
        ]),
        DrawTree::Branch(arms) => Jv::Obj(vec![
            ("t".into(), Jv::Str("br".into())),
            ("c".into(), Jv::Arr(arms.iter().map(encode_tree).collect())),
        ]),
        DrawTree::Leaf { lo, hi, line } => Jv::Obj(vec![
            ("t".into(), Jv::Str("leaf".into())),
            ("lo".into(), num(*lo)),
            ("hi".into(), num(*hi)),
            ("line".into(), num(u64::from(*line))),
        ]),
        DrawTree::Call { name, line } => Jv::Obj(vec![
            ("t".into(), Jv::Str("call".into())),
            ("name".into(), Jv::Str(name.clone())),
            ("line".into(), num(u64::from(*line))),
        ]),
        DrawTree::Balance { line } => Jv::Obj(vec![
            ("t".into(), Jv::Str("bal".into())),
            ("line".into(), num(u64::from(*line))),
        ]),
        DrawTree::Loop { body, line } => Jv::Obj(vec![
            ("t".into(), Jv::Str("loop".into())),
            ("body".into(), encode_tree(body)),
            ("line".into(), num(u64::from(*line))),
        ]),
    }
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

fn line_of(v: &Jv) -> Option<u32> {
    v.get("line").and_then(Jv::as_u64).map(|n| n as u32)
}

fn str_vec(v: Option<&Jv>) -> Option<Vec<String>> {
    v?.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_string))
        .collect()
}

fn decode_entry(v: &Jv) -> Option<(String, FileAnalysis)> {
    let rel = v.get("rel")?.as_str()?.to_string();
    let hash = v.get("hash")?.as_str()?.to_string();
    let findings = v
        .get("findings")?
        .as_arr()?
        .iter()
        .map(decode_finding)
        .collect::<Option<Vec<_>>>()?;
    let sups = v
        .get("sups")?
        .as_arr()?
        .iter()
        .map(decode_sup)
        .collect::<Option<Vec<_>>>()?;
    let facts = decode_facts(v.get("facts")?)?;
    Some((
        hash,
        FileAnalysis {
            rel,
            findings,
            sups,
            facts,
        },
    ))
}

fn decode_finding(v: &Jv) -> Option<Finding> {
    Some(Finding {
        rule: RuleId::from_name(v.get("rule")?.as_str()?)?,
        file: v.get("file")?.as_str()?.to_string(),
        line: line_of(v)?,
        message: v.get("message")?.as_str()?.to_string(),
        suppressed: false,
    })
}

fn decode_sup(v: &Jv) -> Option<Suppression> {
    Some(Suppression {
        rule: RuleId::from_name(v.get("rule")?.as_str()?)?,
        file: v.get("file")?.as_str()?.to_string(),
        line: line_of(v)?,
        reason: v.get("reason")?.as_str()?.to_string(),
        used: false,
    })
}

fn decode_facts(v: &Jv) -> Option<FileFacts> {
    let structs = v
        .get("structs")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(StructFact {
                name: s.get("name")?.as_str()?.to_string(),
                line: line_of(s)?,
                derives: str_vec(s.get("derives"))?,
                fields: s
                    .get("fields")?
                    .as_arr()?
                    .iter()
                    .map(|f| {
                        Some(FieldFact {
                            name: f.get("name")?.as_str()?.to_string(),
                            line: line_of(f)?,
                            ty: str_vec(f.get("ty"))?,
                            annotated: f.get("ann")?.as_bool()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let impls = v
        .get("impls")?
        .as_arr()?
        .iter()
        .map(|im| {
            Some(ImplFact {
                trait_name: im.get("trait")?.as_str()?.to_string(),
                ty: im.get("ty")?.as_str()?.to_string(),
                line: line_of(im)?,
                idents: str_vec(im.get("idents"))?.into_iter().collect(),
                mentions_null: im.get("null")?.as_bool()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let fns = v
        .get("fns")?
        .as_arr()?
        .iter()
        .map(|f| {
            Some(FnFact {
                name: f.get("name")?.as_str()?.to_string(),
                ty: match f.get("ty")? {
                    Jv::Null => None,
                    other => Some(other.as_str()?.to_string()),
                },
                line: line_of(f)?,
                budget: match f.get("budget")? {
                    Jv::Null => None,
                    other => Some(other.as_u64()?),
                },
                tree: decode_tree(f.get("tree")?, 0)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FileFacts {
        rel: v.get("rel")?.as_str()?.to_string(),
        structs,
        impls,
        fns,
        macro_marks: str_vec(v.get("marks"))?,
    })
}

fn decode_tree(v: &Jv, depth: usize) -> Option<DrawTree> {
    if depth > 200 {
        return None;
    }
    match v.get("t")?.as_str()? {
        "seq" => Some(DrawTree::Seq(
            v.get("c")?
                .as_arr()?
                .iter()
                .map(|c| decode_tree(c, depth + 1))
                .collect::<Option<Vec<_>>>()?,
        )),
        "br" => Some(DrawTree::Branch(
            v.get("c")?
                .as_arr()?
                .iter()
                .map(|c| decode_tree(c, depth + 1))
                .collect::<Option<Vec<_>>>()?,
        )),
        "leaf" => Some(DrawTree::Leaf {
            lo: v.get("lo")?.as_u64()?,
            hi: v.get("hi")?.as_u64()?,
            line: line_of(v)?,
        }),
        "call" => Some(DrawTree::Call {
            name: v.get("name")?.as_str()?.to_string(),
            line: line_of(v)?,
        }),
        "bal" => Some(DrawTree::Balance { line: line_of(v)? }),
        "loop" => Some(DrawTree::Loop {
            body: Box::new(decode_tree(v.get("body")?, depth + 1)?),
            line: line_of(v)?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(hash_hex("x"), hash_hex("y"));
    }

    #[test]
    fn analysis_round_trips_through_the_codec() {
        let fa = crate::analyze_file(
            "crates/power/src/fixture.rs",
            "/// glacsweb: draw-budget(2)\n\
             fn f(&mut self) { let rng = &mut self.rng;\n\
               if rng.f64() < 0.5 { self.helper(); } else { rng.skip_raw(2); }\n\
               for _ in 0..3 { }\n\
             }\n\
             struct TaperMemo { v: f64 }\n\
             struct Rail { a: u32, taper: TaperMemo }\n\
             // glacsweb: allow(perf-hygiene, reason = \"fixture entry for codec test\")\n\
             impl Serialize for Rail { fn to_value(&self) -> Value { Value::Null } }\n",
        );
        let text = render(&[(hash_hex("src"), &fa)]);
        let loaded = load_from_text(&text);
        let (hash, back) = loaded.get("crates/power/src/fixture.rs").expect("entry");
        assert_eq!(*hash, hash_hex("src"));
        assert_eq!(back.findings.len(), fa.findings.len());
        assert_eq!(back.sups.len(), fa.sups.len());
        assert_eq!(back.facts, fa.facts);
    }

    #[test]
    fn corrupt_cache_text_is_a_cold_run() {
        for bad in ["", "{", "{\"schema\": 1, \"files\": []}", "[1,2,3]"] {
            assert!(load_from_text(bad).is_empty(), "{bad:?}");
        }
    }

    /// Test-only variant of [`load`] over in-memory text.
    fn load_from_text(text: &str) -> BTreeMap<String, (String, FileAnalysis)> {
        let mut out = BTreeMap::new();
        let Some(doc) = parse(text) else {
            return out;
        };
        if doc.get("schema").and_then(Jv::as_u64) != Some(CACHE_SCHEMA) {
            return out;
        }
        let Some(files) = doc.get("files").and_then(Jv::as_arr) else {
            return out;
        };
        for entry in files {
            if let Some((hash, fa)) = decode_entry(entry) {
                out.insert(fa.rel.clone(), (hash, fa));
            }
        }
        out
    }
}
