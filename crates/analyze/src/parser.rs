//! Item-level parsing: brace-matched extraction of structs, enums,
//! impls, and fns from the token stream.
//!
//! This is deliberately *not* a Rust grammar. It is a robust skeleton
//! parser: it finds item keywords at brace depth 0, matches the
//! delimiters that bound each item, and records exactly the facts the
//! semantic rule packs need — field lists with their type identifiers,
//! impl heads split into trait and self type, fn body token ranges, and
//! per-fn method-call indices. Anything it does not understand it skips
//! without ever panicking or failing to advance; unknown syntax costs
//! coverage, never correctness.
//!
//! Two annotation forms are recognized in comments (scanned from raw
//! source so they work in both `//` and `///` positions):
//!
//! * `glacsweb: derived-state` — on a struct field's line or the line
//!   above it, marks the field as derived (memo/cache) state.
//! * `glacsweb: draw-budget(N)` — in the doc comment of a fn, declares
//!   that every execution path through the fn retires exactly N raw RNG
//!   draws.

use crate::lexer::{Tok, TokKind};

/// What kind of item a table entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct Name { ... }` (or unit/tuple struct).
    Struct,
    /// `enum Name { ... }`.
    Enum,
    /// `fn name(...) { ... }` at module or impl level.
    Fn,
    /// `impl [Trait for] Type { ... }`.
    Impl,
    /// `trait Name { ... }` (body not descended into).
    Trait,
    /// `mod name { ... }` (contents are parsed into the same table).
    Mod,
    /// `macro_rules! name { ... }` (body is opaque).
    MacroRules,
    /// `name!(args...)` at item position — the macro name and argument
    /// identifiers are recorded so convention macros act as markers.
    MacroInvocation,
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Every identifier appearing in the field's type (`BTreeMap`,
    /// `String`, `Load` for `BTreeMap<String, Load>`).
    pub ty_idents: Vec<String>,
    /// Set when a `derived-state` annotation covers this field.
    pub annotated_derived: bool,
}

/// One entry of the item table.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (struct/enum/fn/trait/mod/macro name; for impls, the
    /// self type's head identifier).
    pub name: String,
    /// For impls: the implemented trait's final path segment, if any.
    pub trait_name: Option<String>,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Byte offset of the item's first token.
    pub lo: u32,
    /// Byte offset one past the item's last token.
    pub hi: u32,
    /// Token index range `[open_brace, close_brace]` of the item's braced
    /// body, when it has one.
    pub body: Option<(usize, usize)>,
    /// Named fields (structs only).
    pub fields: Vec<FieldDef>,
    /// Idents listed in `#[derive(...)]` attributes on this item.
    pub derives: Vec<String>,
    /// Child items: fns inside an impl, items inside a mod.
    pub children: Vec<Item>,
    /// Declared raw-draw budget from a `draw-budget(N)` annotation (fns).
    pub budget: Option<u64>,
    /// Method names invoked in the body via `.name(` (fns), with lines.
    pub calls: Vec<(String, u32)>,
    /// Argument identifiers of a macro invocation.
    pub macro_args: Vec<String>,
    /// `true` if the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

impl Item {
    fn new(kind: ItemKind, name: String, tok: &Tok, in_test: bool) -> Item {
        Item {
            kind,
            name,
            trait_name: None,
            line: tok.line,
            lo: tok.lo,
            hi: tok.hi,
            fields: Vec::new(),
            derives: Vec::new(),
            children: Vec::new(),
            body: None,
            budget: None,
            calls: Vec::new(),
            macro_args: Vec::new(),
            in_test,
        }
    }
}

/// One comment annotation found in raw source.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the annotation comment sits on.
    pub line: u32,
    /// Parsed form.
    pub kind: AnnotationKind,
}

/// The recognized annotation forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// `glacsweb: derived-state`.
    DerivedState,
    /// `glacsweb: draw-budget(N)`.
    DrawBudget(u64),
}

/// Parses `src`/`toks` into an item table and attaches annotations.
/// `mask` is the `#[cfg(test)]` token mask from [`crate::rules::test_mask`].
pub fn parse_items(src: &str, toks: &[Tok], mask: &[bool]) -> Vec<Item> {
    let mut items = Vec::new();
    parse_block(toks, mask, 0, toks.len(), &mut items);
    let anns = scan_annotations(src);
    if !anns.is_empty() {
        apply_annotations(&mut items, &anns);
    }
    items
}

/// Max lines between a `draw-budget` annotation and the fn it documents.
const BUDGET_ATTACH_WINDOW: u32 = 32;

fn scan_annotations(src: &str) -> Vec<Annotation> {
    // Markers are assembled from fragments so this file's own string
    // literals never scan as annotations when the analyzer runs on
    // itself (the same trick the suppression scanner uses).
    let derived: String = ["glacsweb", ": derived-state"].concat();
    let budget: String = ["glacsweb", ": draw-budget("].concat();
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx as u32 + 1;
        let Some(comment) = raw.find("//").map(|p| &raw[p..]) else {
            continue;
        };
        if comment.contains(&derived) {
            out.push(Annotation {
                line,
                kind: AnnotationKind::DerivedState,
            });
        }
        if let Some(pos) = comment.find(&budget) {
            let rest = &comment[pos + budget.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let (Ok(n), Some(')')) = (digits.parse::<u64>(), rest.chars().nth(digits.len())) {
                out.push(Annotation {
                    line,
                    kind: AnnotationKind::DrawBudget(n),
                });
            }
        }
    }
    out
}

fn apply_annotations(items: &mut [Item], anns: &[Annotation]) {
    for item in items.iter_mut() {
        for field in item.fields.iter_mut() {
            // Derived-state annotation: on the field's line or the line
            // directly above.
            if anns.iter().any(|a| {
                a.kind == AnnotationKind::DerivedState
                    && (a.line == field.line || a.line + 1 == field.line)
            }) {
                field.annotated_derived = true;
            }
        }
        if item.kind == ItemKind::Fn {
            // Budget annotation: nearest one in the doc block above.
            item.budget = anns
                .iter()
                .filter_map(|a| match a.kind {
                    AnnotationKind::DrawBudget(n)
                        if a.line < item.line && item.line - a.line <= BUDGET_ATTACH_WINDOW =>
                    {
                        Some((item.line - a.line, n))
                    }
                    _ => None,
                })
                .min()
                .map(|(_, n)| n);
        }
        apply_annotations(&mut item.children, anns);
    }
}

/// Index one past the delimiter closing the group opened at `i` (which
/// must hold `open`). Returns `end` if unmatched. Never panics.
fn skip_group(toks: &[Tok], i: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < end {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Index one past a generic parameter list opened at `i` (which must
/// hold `<`). Honours `>>` closing two levels.
fn skip_angles(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "<" if toks[j].kind == TokKind::Punct => depth += 1,
            "<<" if toks[j].kind == TokKind::Punct => depth += 2,
            ">" if toks[j].kind == TokKind::Punct => depth -= 1,
            ">>" if toks[j].kind == TokKind::Punct => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    end
}

/// Advances past an item that ends at `;`, skipping delimited groups so
/// an array repeat (`[0; 4]`) or a const block never terminates early.
fn skip_to_semi(toks: &[Tok], mut i: usize, end: usize) -> usize {
    while i < end {
        match toks[i].text.as_str() {
            "(" if toks[i].kind == TokKind::Punct => i = skip_group(toks, i, end, "(", ")"),
            "[" if toks[i].kind == TokKind::Punct => i = skip_group(toks, i, end, "[", "]"),
            "{" if toks[i].kind == TokKind::Punct => i = skip_group(toks, i, end, "{", "}"),
            ";" if toks[i].kind == TokKind::Punct => return i + 1,
            _ => i += 1,
        }
    }
    end
}

fn masked(mask: &[bool], i: usize) -> bool {
    mask.get(i).copied().unwrap_or(false)
}

/// Walks one brace level collecting items into `out`.
fn parse_block(toks: &[Tok], mask: &[bool], start: usize, end: usize, out: &mut Vec<Item>) {
    let mut i = start;
    let mut derives: Vec<String> = Vec::new();
    while i < end {
        let t = &toks[i];
        // Outer attribute: harvest derive lists, skip the rest.
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let after = skip_group(toks, i + 1, end, "[", "]");
            collect_derives(
                &toks[i + 2..after.saturating_sub(1).max(i + 2)],
                &mut derives,
            );
            i = after;
            continue;
        }
        // Inner attribute `#![...]`.
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            if toks.get(i + 2).is_some_and(|n| n.is_punct("[")) {
                i = skip_group(toks, i + 2, end, "[", "]");
            } else {
                i += 2;
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            // Stray group at item level: step over it wholesale.
            i = match t.text.as_str() {
                "{" => skip_group(toks, i, end, "{", "}"),
                "(" => skip_group(toks, i, end, "(", ")"),
                "[" => skip_group(toks, i, end, "[", "]"),
                _ => i + 1,
            };
            continue;
        }
        match t.text.as_str() {
            // Visibility / qualifier prefixes: keep pending derives.
            "pub" => {
                i += 1;
                if toks.get(i).is_some_and(|n| n.is_punct("(")) {
                    i = skip_group(toks, i, end, "(", ")");
                }
            }
            "unsafe" | "async" | "default" => i += 1,
            "const" | "extern"
                if toks.get(i + 1).is_some_and(|n| {
                    n.is_ident("fn") || n.kind == TokKind::Str || n.is_ident("unsafe")
                }) =>
            {
                // `const fn`, `extern "C" fn`: let the fn arm handle it.
                i += 1;
            }
            "struct" => {
                let (item, next) = parse_struct(toks, mask, i, end, &mut derives);
                out.push(item);
                i = next;
            }
            "enum" => {
                let (item, next) = parse_enum(toks, mask, i, end, &mut derives);
                out.push(item);
                i = next;
            }
            "fn" => {
                let (item, next) = parse_fn(toks, mask, i, end);
                out.push(item);
                derives.clear();
                i = next;
            }
            "impl" => {
                let (item, next) = parse_impl(toks, mask, i, end);
                out.push(item);
                derives.clear();
                i = next;
            }
            "trait" => {
                let name = ident_after(toks, i, end);
                let mut item = Item::new(ItemKind::Trait, name, t, masked(mask, i));
                let body_open = find_body_open(toks, i + 1, end);
                if let Some(b) = body_open {
                    let close = skip_group(toks, b, end, "{", "}");
                    item.body = Some((b, close.saturating_sub(1)));
                    item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
                    i = close;
                } else {
                    i = skip_to_semi(toks, i + 1, end);
                }
                out.push(item);
                derives.clear();
            }
            "mod" => {
                let name = ident_after(toks, i, end);
                let mut item = Item::new(ItemKind::Mod, name, t, masked(mask, i));
                if let Some(b) = find_body_or_semi(toks, i + 1, end) {
                    let close = skip_group(toks, b, end, "{", "}");
                    item.body = Some((b, close.saturating_sub(1)));
                    parse_block(
                        toks,
                        mask,
                        b + 1,
                        close.saturating_sub(1),
                        &mut item.children,
                    );
                    i = close;
                } else {
                    i = skip_to_semi(toks, i + 1, end);
                }
                out.push(item);
                derives.clear();
            }
            "macro_rules" => {
                // `macro_rules ! name { opaque }` — never descend.
                let name = ident_after(toks, i + 1, end);
                let mut item = Item::new(ItemKind::MacroRules, name, t, masked(mask, i));
                let mut j = i + 1;
                while j < end && !toks[j].is_punct("{") {
                    j += 1;
                }
                let close = if j < end {
                    skip_group(toks, j, end, "{", "}")
                } else {
                    end
                };
                item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
                out.push(item);
                derives.clear();
                i = close;
            }
            "use" | "static" | "type" => {
                i = skip_to_semi(toks, i + 1, end);
                derives.clear();
            }
            "const" | "extern" => {
                i = skip_to_semi(toks, i + 1, end);
                derives.clear();
            }
            _ => {
                // Macro invocation at item position: `name!(...)` etc.
                if toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
                {
                    let (open, close) = match toks[i + 2].text.as_str() {
                        "(" => ("(", ")"),
                        "[" => ("[", "]"),
                        _ => ("{", "}"),
                    };
                    let after = skip_group(toks, i + 2, end, open, close);
                    let mut item = Item::new(
                        ItemKind::MacroInvocation,
                        t.text.clone(),
                        t,
                        masked(mask, i),
                    );
                    item.macro_args = toks[i + 3..after.saturating_sub(1).max(i + 3)]
                        .iter()
                        .filter(|a| a.kind == TokKind::Ident)
                        .map(|a| a.text.clone())
                        .collect();
                    item.hi = toks[after.saturating_sub(1).min(end - 1)].hi;
                    out.push(item);
                    i = after;
                    if toks.get(i).is_some_and(|n| n.is_punct(";")) {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
                derives.clear();
            }
        }
    }
}

/// Harvests `derive(A, B, ...)` identifiers from attribute body tokens.
fn collect_derives(body: &[Tok], out: &mut Vec<String>) {
    if body.first().is_some_and(|t| t.is_ident("derive")) {
        out.extend(
            body.iter()
                .skip(1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone()),
        );
    }
}

fn ident_after(toks: &[Tok], i: usize, end: usize) -> String {
    toks.get(i + 1)
        .filter(|_| i + 1 < end)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// First `{` at paren/bracket depth 0 in `start..end`, stopping at a
/// depth-0 `;` (which means the item has no body).
fn find_body_open(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = start;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" if toks[j].kind == TokKind::Punct => depth += 1,
            ")" | "]" if toks[j].kind == TokKind::Punct => depth = depth.saturating_sub(1),
            "{" if toks[j].kind == TokKind::Punct && depth == 0 => return Some(j),
            ";" if toks[j].kind == TokKind::Punct && depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

fn find_body_or_semi(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    find_body_open(toks, start, end)
}

fn parse_struct(
    toks: &[Tok],
    mask: &[bool],
    i: usize,
    end: usize,
    derives: &mut Vec<String>,
) -> (Item, usize) {
    let mut item = Item::new(
        ItemKind::Struct,
        ident_after(toks, i, end),
        &toks[i],
        masked(mask, i),
    );
    item.derives = std::mem::take(derives);
    let mut j = i + 2.min(end - i);
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(toks, j, end);
    }
    while j < end {
        match toks[j].text.as_str() {
            "(" if toks[j].kind == TokKind::Punct => {
                // Tuple struct: skip the field group, then run to `;`.
                j = skip_group(toks, j, end, "(", ")");
                j = skip_to_semi(toks, j, end);
                item.hi = toks[j.saturating_sub(1).min(end - 1)].hi;
                return (item, j);
            }
            "{" if toks[j].kind == TokKind::Punct => {
                let close = skip_group(toks, j, end, "{", "}");
                item.body = Some((j, close.saturating_sub(1)));
                item.fields = parse_fields(toks, j + 1, close.saturating_sub(1));
                item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
                return (item, close);
            }
            ";" if toks[j].kind == TokKind::Punct => {
                item.hi = toks[j].hi;
                return (item, j + 1);
            }
            _ => j += 1,
        }
    }
    (item, end)
}

fn parse_enum(
    toks: &[Tok],
    mask: &[bool],
    i: usize,
    end: usize,
    derives: &mut Vec<String>,
) -> (Item, usize) {
    let mut item = Item::new(
        ItemKind::Enum,
        ident_after(toks, i, end),
        &toks[i],
        masked(mask, i),
    );
    item.derives = std::mem::take(derives);
    if let Some(b) = find_body_open(toks, i + 1, end) {
        let close = skip_group(toks, b, end, "{", "}");
        item.body = Some((b, close.saturating_sub(1)));
        item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
        (item, close)
    } else {
        let next = skip_to_semi(toks, i + 1, end);
        item.hi = toks[next.saturating_sub(1).min(end - 1)].hi;
        (item, next)
    }
}

/// Splits a struct body into named fields. Commas inside `()`, `[]`,
/// `{}`, or generic `<>` do not split.
fn parse_fields(toks: &[Tok], start: usize, end: usize) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut j = start;
    while j < end {
        // Skip field attributes and visibility.
        while j < end && toks[j].is_punct("#") && toks.get(j + 1).is_some_and(|n| n.is_punct("[")) {
            j = skip_group(toks, j + 1, end, "[", "]");
        }
        if toks.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                j = skip_group(toks, j, end, "(", ")");
            }
        }
        if j >= end {
            break;
        }
        let name_tok = &toks[j];
        let named = name_tok.kind == TokKind::Ident
            && toks
                .get(j + 1)
                .filter(|_| j + 1 < end)
                .is_some_and(|t| t.is_punct(":"));
        // Advance to the comma ending this field (depth-aware).
        let mut depth = 0i64;
        let mut k = if named { j + 2 } else { j };
        let ty_start = k;
        while k < end {
            let tk = &toks[k];
            if tk.kind == TokKind::Punct {
                match tk.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "," if depth <= 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        if named {
            fields.push(FieldDef {
                name: name_tok.text.clone(),
                line: name_tok.line,
                ty_idents: toks[ty_start..k.min(end)]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect(),
                annotated_derived: false,
            });
        }
        j = k + 1;
    }
    fields
}

fn parse_fn(toks: &[Tok], mask: &[bool], i: usize, end: usize) -> (Item, usize) {
    let mut item = Item::new(
        ItemKind::Fn,
        ident_after(toks, i, end),
        &toks[i],
        masked(mask, i),
    );
    match find_body_open(toks, i + 1, end) {
        Some(b) => {
            let close = skip_group(toks, b, end, "{", "}");
            item.body = Some((b, close.saturating_sub(1)));
            item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
            // Method-call index: `.name(` inside the body.
            let body_end = close.saturating_sub(1);
            let mut k = b + 1;
            while k + 2 <= body_end {
                if toks[k].is_punct(".")
                    && toks[k + 1].kind == TokKind::Ident
                    && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
                {
                    item.calls
                        .push((toks[k + 1].text.clone(), toks[k + 1].line));
                    k += 2;
                } else {
                    k += 1;
                }
            }
            (item, close)
        }
        None => {
            let next = skip_to_semi(toks, i + 1, end);
            (item, next)
        }
    }
}

fn parse_impl(toks: &[Tok], mask: &[bool], i: usize, end: usize) -> (Item, usize) {
    let mut item = Item::new(ItemKind::Impl, String::new(), &toks[i], masked(mask, i));
    let mut h = i + 1;
    if toks.get(h).is_some_and(|t| t.is_punct("<")) {
        h = skip_angles(toks, h, end);
    }
    let body_open = find_body_open(toks, h, end);
    let head_end = body_open.unwrap_or(end);
    // Split the head at a depth-0 `for`.
    let mut angle = 0i64;
    let mut for_at: Option<usize> = None;
    for (j, t) in toks.iter().enumerate().take(head_end).skip(h) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
        } else if t.is_ident("for") && angle <= 0 {
            for_at = Some(j);
            break;
        }
    }
    let (trait_range, ty_range) = match for_at {
        Some(f) => ((h, f), (f + 1, head_end)),
        None => ((h, h), (h, head_end)),
    };
    item.trait_name = last_head_ident(toks, trait_range.0, trait_range.1);
    item.name = first_head_ident(toks, ty_range.0, ty_range.1).unwrap_or_default();
    if let Some(b) = body_open {
        let close = skip_group(toks, b, end, "{", "}");
        item.body = Some((b, close.saturating_sub(1)));
        item.hi = toks[close.saturating_sub(1).min(end - 1)].hi;
        parse_block(
            toks,
            mask,
            b + 1,
            close.saturating_sub(1),
            &mut item.children,
        );
        // Impl children inherit the impl's test masking (a cfg(test) impl
        // masks the `impl` token but inner fns carry their own indices).
        if item.in_test {
            for c in item.children.iter_mut() {
                c.in_test = true;
            }
        }
        (item, close)
    } else {
        (item, skip_to_semi(toks, h, end))
    }
}

/// Last identifier at angle depth 0 — the trait's final path segment
/// (`serde :: Serialize` → `Serialize`).
fn last_head_ident(toks: &[Tok], start: usize, end: usize) -> Option<String> {
    let mut angle = 0i64;
    let mut found = None;
    for t in toks.iter().take(end).skip(start) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && angle <= 0 && t.text != "dyn" && t.text != "mut" {
            found = Some(t.text.clone());
        }
    }
    found
}

/// First identifier at angle depth 0 — the self type's head
/// (`EventWheel < E >` → `EventWheel`).
fn first_head_ident(toks: &[Tok], start: usize, end: usize) -> Option<String> {
    let mut angle = 0i64;
    for t in toks.iter().take(end).skip(start) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
        } else if t.kind == TokKind::Ident
            && angle <= 0
            && !matches!(t.text.as_str(), "dyn" | "mut" | "where")
        {
            return Some(t.text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> Vec<Item> {
        let toks = lex(src);
        let (mask, _) = test_mask(&toks);
        parse_items(src, &toks, &mask)
    }

    #[test]
    fn struct_fields_with_generics() {
        let items = parse(
            "pub struct LoadSet {\n    loads: BTreeMap<String, Load>,\n    total: TotalCache,\n}",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "LoadSet");
        let names: Vec<&str> = items[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["loads", "total"]);
        assert!(items[0].fields[0].ty_idents.iter().any(|t| t == "Load"));
    }

    #[test]
    fn derives_are_harvested() {
        let items = parse("#[derive(Debug, Clone, PartialEq)]\nstruct S { a: u32 }");
        assert_eq!(items[0].derives, ["Debug", "Clone", "PartialEq"]);
    }

    #[test]
    fn impl_head_splits_trait_and_type() {
        let items = parse("impl<E: Serialize> Serialize for EventWheel<E> { fn f(&self) {} }");
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].trait_name.as_deref(), Some("Serialize"));
        assert_eq!(items[0].name, "EventWheel");
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "f");
    }

    #[test]
    fn inherent_impl_has_no_trait() {
        let items = parse("impl PowerRail { fn step(&mut self) { self.taper.get(); } }");
        assert_eq!(items[0].trait_name, None);
        assert_eq!(items[0].name, "PowerRail");
        let calls: Vec<&str> = items[0].children[0]
            .calls
            .iter()
            .map(|(c, _)| c.as_str())
            .collect();
        assert_eq!(calls, ["get"]);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let items = parse(
            "macro_rules! gen {\n ($t:ty) => { impl Fake for $t { fn g() {} } };\n}\nfn real() {}",
        );
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, [ItemKind::MacroRules, ItemKind::Fn]);
        assert_eq!(items[1].name, "real");
    }

    #[test]
    fn macro_invocations_record_args() {
        let items = parse("derived_state_serde!(OuStepCache);");
        assert_eq!(items[0].kind, ItemKind::MacroInvocation);
        assert_eq!(items[0].name, "derived_state_serde");
        assert_eq!(items[0].macro_args, ["OuStepCache"]);
    }

    #[test]
    fn mods_recurse_and_tests_are_masked() {
        let items = parse(
            "mod inner { struct A { x: u32 } }\n#[cfg(test)]\nmod tests { struct B { y: u32 } }",
        );
        assert_eq!(items.len(), 2);
        assert!(!items[0].in_test);
        assert_eq!(items[0].children[0].name, "A");
        assert!(items[1].in_test);
    }

    #[test]
    fn annotations_attach_to_fields_and_fns() {
        let src = "struct S {\n    // glacsweb: derived-state\n    memo: u32,\n    real: u32,\n}\n\
                   /// Does things.\n/// glacsweb: draw-budget(4)\nfn wake() { }\n";
        let items = parse(src);
        assert!(
            items[0].fields[0].annotated_derived,
            "{:?}",
            items[0].fields
        );
        assert!(!items[0].fields[1].annotated_derived);
        assert_eq!(items[1].budget, Some(4));
    }

    #[test]
    fn fn_without_body_and_tuple_structs() {
        let items = parse("struct T(u32, f64);\ntrait X { fn sig(&self); }\nfn has() -> u32 { 1 }");
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert!(items[0].fields.is_empty());
        assert_eq!(items[1].kind, ItemKind::Trait);
        assert_eq!(items[2].name, "has");
        assert!(items[2].body.is_some());
    }

    #[test]
    fn parser_is_total_on_unbalanced_garbage() {
        // Must terminate without panicking whatever it is fed.
        for src in [
            "}}}}{{{",
            "struct",
            "impl for {",
            "fn f( {",
            "#[",
            "struct S { a: u32",
            "mod m { fn",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn byte_spans_are_in_bounds() {
        let src = "struct S { a: u32 }\nimpl S { fn m(&self) { self.a; } }";
        for item in parse(src) {
            assert!(item.lo <= item.hi);
            assert!((item.hi as usize) <= src.len());
        }
    }
}
