//! The rule table: what is forbidden, where, and why.
//!
//! Every rule is scoped to *library* code of a named set of crates —
//! `#[cfg(test)]` modules, `tests/`, `examples/`, and `src/bin/` are
//! exempt, because a test asserting on wall-clock elapsed time or
//! indexing a fixture vector is fine. The scoping mirrors the invariants
//! the rules protect:
//!
//! * **determinism** (sim, env, core, sweep, obs): the sweep engine
//!   promises byte-identical output at any thread count, and every
//!   experiment promises same-seed reproducibility — including the
//!   telemetry export. One `HashMap` iteration or one wall-clock read
//!   silently breaks both.
//! * **panic-freedom** (station, server, power, faults, link, obs): the paper's
//!   field lesson is that the deployed system must never die
//!   unrecoverably; the simulated control paths hold themselves to the
//!   same bar so that fault-injection campaigns exercise recovery code,
//!   not unwinding.
//! * **numeric-safety** (power crate, station schedule/power-state math):
//!   battery and scheduling arithmetic must not truncate units through
//!   `as` casts or compare floats with `==`.
//! * **crate-hygiene** (every `src/lib.rs`): `#![forbid(unsafe_code)]`
//!   and `#![warn(missing_docs)]` are mandatory.

use crate::lexer::{Tok, TokKind};

/// Identifies one rule of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism sources in deterministic simulation code.
    Determinism,
    /// Panicking constructs in always-up control paths.
    PanicFreedom,
    /// Truncating casts / float equality in unit math.
    NumericSafety,
    /// Allocation-happy constructs in per-substep hot paths.
    PerfHygiene,
    /// Missing mandatory crate-level attributes.
    CrateHygiene,
    /// Malformed or unused suppression ledger entries.
    SuppressionHygiene,
    /// Snapshot serde/equality impls missing named fields.
    SnapshotCoverage,
    /// Wake-path branches diverging from the declared RNG draw budget.
    RngDrawBudget,
    /// Memo/cache fields visible to equality or serialized non-null.
    DerivedState,
}

impl RuleId {
    /// The kebab-case name used in diagnostics and suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::NumericSafety => "numeric-safety",
            RuleId::PerfHygiene => "perf-hygiene",
            RuleId::CrateHygiene => "crate-hygiene",
            RuleId::SuppressionHygiene => "suppression-hygiene",
            RuleId::SnapshotCoverage => "snapshot-coverage",
            RuleId::RngDrawBudget => "rng-draw-budget",
            RuleId::DerivedState => "derived-state",
        }
    }

    /// All rules, in reporting order.
    pub const ALL: [RuleId; 9] = [
        RuleId::Determinism,
        RuleId::PanicFreedom,
        RuleId::NumericSafety,
        RuleId::PerfHygiene,
        RuleId::CrateHygiene,
        RuleId::SuppressionHygiene,
        RuleId::SnapshotCoverage,
        RuleId::RngDrawBudget,
        RuleId::DerivedState,
    ];

    /// Parses a rule name as written in a suppression comment.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::Determinism => {
                "no unordered-container iteration, wall clocks, ambient RNG, or \
                 environment reads in sim/env/core/sweep library code"
            }
            RuleId::PanicFreedom => {
                "no unwrap/expect/panic!/unreachable!/slice indexing in \
                 station/server/power/faults/link library code"
            }
            RuleId::NumericSafety => {
                "no integer `as` casts or float `==` in battery/power/schedule math"
            }
            RuleId::PerfHygiene => {
                "no `format!`, `.to_string()`, `.collect::<Vec<_>>()`, or \
                 `.clone()` in the env/power/event-scheduling/service hot paths"
            }
            RuleId::CrateHygiene => {
                "every crate must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]"
            }
            RuleId::SuppressionHygiene => {
                "every `glacsweb: allow(...)` entry must name a real rule, carry a \
                 written reason, and actually suppress something"
            }
            RuleId::SnapshotCoverage => {
                "every named field of a GLACSNAP-codec type must appear in its \
                 hand-written Serialize, Deserialize, and PartialEq impls"
            }
            RuleId::RngDrawBudget => {
                "every branch of a `glacsweb: draw-budget(N)`-annotated fn must \
                 retire exactly N raw draws from its SimRng stream"
            }
            RuleId::DerivedState => {
                "memo/cache fields must serialize as Value::Null and stay \
                 invisible to PartialEq"
            }
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Set during ledger matching if a suppression covers this finding.
    pub suppressed: bool,
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// `Some("station")` for `crates/station/src/...`; `None` for the
    /// root facade and for top-level `tests/` / `examples/`.
    pub crate_name: Option<String>,
    /// `true` only for non-bin files under a `src/` directory — the code
    /// that other crates can link against.
    pub is_lib: bool,
    /// `true` for `src/lib.rs` of any workspace crate (hygiene scope).
    pub is_crate_root: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, in_src, under) = match parts.as_slice() {
        ["crates", name, "src", rest @ ..] => (Some((*name).to_string()), true, rest.to_vec()),
        ["crates", name, ..] => (Some((*name).to_string()), false, Vec::new()),
        ["src", rest @ ..] => (None, true, rest.to_vec()),
        _ => (None, false, Vec::new()),
    };
    let is_bin = under.first() == Some(&"bin");
    FileScope {
        crate_name,
        is_lib: in_src && !is_bin,
        is_crate_root: in_src && !is_bin && under == ["lib.rs"],
    }
}

/// Crates whose library code must be deterministic. The obs crate is in
/// scope because telemetry feeds byte-identity checks: a recorder that
/// consulted wall time or hashed-by-address maps would break them.
pub const DETERMINISM_CRATES: &[&str] = &["sim", "env", "core", "sweep", "obs", "snapshot"];
/// Crates whose library code must be panic-free. The snapshot crate is in
/// scope because checkpoints are parsed from disk: any byte sequence must
/// come back as a typed `SnapshotError`, never a panic. The service crate
/// is in scope because it parses hostile bytes off a socket: a panicking
/// worker thread would silently shrink the pool until the server hangs.
pub const PANIC_CRATES: &[&str] = &[
    "station", "server", "power", "faults", "link", "obs", "snapshot", "service",
];

/// `true` if the numeric-safety rule applies to this file: all of the
/// power crate's unit math, plus the station's schedule and power-state
/// tables (the Table II threshold logic).
pub fn numeric_scope(rel: &str) -> bool {
    rel.starts_with("crates/power/src/")
        || rel == "crates/station/src/schedule.rs"
        || rel == "crates/station/src/power_state.rs"
}

/// `true` if the perf-hygiene rule applies to this file: the modules the
/// O(events) kernel rewrite made allocation-free, where every substep of
/// every simulated half-hour executes — plus the fleet event kernel,
/// whose wake handler runs a million times per simulated fleet-month. A
/// stray `format!` or defensive `.clone()` here is a per-tick heap
/// allocation that whole-run throughput hides until it has already
/// regressed. The service crate's request→response path is held to the
/// same bar: its steady state is allocation-free by construction
/// (borrowed `Request<'a>` slices, reused response buffers), and this
/// rule is what keeps casual allocations from creeping back in.
pub fn perf_scope(rel: &str) -> bool {
    rel.starts_with("crates/env/src/")
        || rel.starts_with("crates/power/src/")
        || rel == "crates/sim/src/event.rs"
        || rel == "crates/sim/src/wheel.rs"
        || rel == "crates/fleet/src/kernel.rs"
        || rel == "crates/service/src/http.rs"
        || rel == "crates/service/src/core.rs"
}

fn in_scope(scope: &FileScope, crates: &[&str]) -> bool {
    scope.is_lib
        && scope
            .crate_name
            .as_deref()
            .is_some_and(|c| crates.contains(&c))
}

/// Identifiers that, appearing at all in deterministic code, break the
/// same-seed contract. `HashMap`/`HashSet` are banned outright (not just
/// their iteration) because the cheap lexical check cannot see through a
/// binding to its later iteration — and the ordered containers are never
/// slower at the sizes this workspace uses.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "unordered container (iteration order varies per process); use BTreeMap",
    ),
    (
        "HashSet",
        "unordered container (iteration order varies per process); use BTreeSet",
    ),
    ("Instant", "wall-clock read in simulated time"),
    ("SystemTime", "wall-clock read in simulated time"),
    (
        "thread_rng",
        "ambient OS-seeded RNG; use a seeded SimRng stream",
    ),
    (
        "from_entropy",
        "ambient OS-seeded RNG; use a seeded SimRng stream",
    ),
    ("OsRng", "ambient OS-seeded RNG; use a seeded SimRng stream"),
    (
        "available_parallelism",
        "machine-dependent value; results must not depend on host core count",
    ),
];

/// Integer target types of an `as` cast that can truncate or wrap.
const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Keywords before `[` that make the bracket an array literal or type,
/// not an indexing expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "if", "else", "match", "break", "continue", "move", "mut", "ref", "let",
    "static", "const", "as", "dyn", "impl", "for", "while", "loop", "where", "fn", "type", "use",
    "pub", "crate", "super", "mod", "enum", "struct", "trait", "union", "extern", "unsafe",
    "async", "await", "yield", "box",
];

/// Computes, per token, whether it falls inside a `#[cfg(test)]` /
/// `#[test]` item. Returns the mask plus the (start, end) line ranges of
/// the masked regions so the suppression scanner can skip them too.
pub fn test_mask(toks: &[Tok]) -> (Vec<bool>, Vec<(u32, u32)>) {
    let mut mask = vec![false; toks.len()];
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_end = match balanced(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&toks[i + 2..attr_end]) {
                // Mask this attribute, any further attributes, and the
                // item that follows (to its `;` or matching `}`).
                let start = i;
                let mut j = attr_end + 1;
                while j < toks.len()
                    && toks[j].is_punct("#")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct("["))
                {
                    match balanced(toks, j + 1, "[", "]") {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                let mut end = j;
                while end < toks.len() {
                    if toks[end].is_punct(";") {
                        break;
                    }
                    if toks[end].is_punct("{") {
                        end = balanced(toks, end, "{", "}").unwrap_or(toks.len() - 1);
                        break;
                    }
                    end += 1;
                }
                let end = end.min(toks.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(start) {
                    *m = true;
                }
                ranges.push((toks[start].line, toks[end].line));
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    (mask, ranges)
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the `open_p` punct), honouring nesting.
fn balanced(toks: &[Tok], open: usize, open_p: &str, close_p: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_p) {
            depth += 1;
        } else if t.is_punct(close_p) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `true` if attribute body tokens mark a test item: `#[test]`, or any
/// `cfg(...)` whose predicate mentions `test` (covers `cfg(test)` and
/// `cfg(any(test, ...))`).
fn attr_is_test(body: &[Tok]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => body.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Runs every token-level rule over one file.
pub fn check_tokens(rel: &str, toks: &[Tok], mask: &[bool]) -> Vec<Finding> {
    let scope = classify(rel);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Finding>, rule: RuleId, line: u32, message: String| {
        out.push(Finding {
            rule,
            file: rel.to_string(),
            line,
            message,
            suppressed: false,
        });
    };

    let determinism = in_scope(&scope, DETERMINISM_CRATES);
    let panic_free = in_scope(&scope, PANIC_CRATES);
    let numeric = scope.is_lib && numeric_scope(rel);
    let perf = scope.is_lib && perf_scope(rel);

    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let next = toks
            .get(i + 1)
            .filter(|_| !mask.get(i + 1).copied().unwrap_or(true));
        let prev = if i > 0 { toks.get(i - 1) } else { None };

        if determinism && t.kind == TokKind::Ident {
            if let Some((_, why)) = NONDETERMINISTIC_IDENTS
                .iter()
                .find(|(name, _)| t.text == *name)
            {
                push(
                    &mut out,
                    RuleId::Determinism,
                    t.line,
                    format!("`{}`: {why}", t.text),
                );
            }
            // `env::var` and friends.
            if t.text == "env"
                && next.is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| {
                    matches!(n.text.as_str(), "var" | "var_os" | "vars" | "vars_os")
                        && n.kind == TokKind::Ident
                })
            {
                push(
                    &mut out,
                    RuleId::Determinism,
                    t.line,
                    format!(
                        "`env::{}`: environment reads make results host-dependent",
                        toks[i + 2].text
                    ),
                );
            }
        }

        if panic_free {
            // `.unwrap(` / `.expect(` — exact method names only, so
            // `unwrap_or_else` and `expect_err` do not fire.
            if t.is_punct(".")
                && next.is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            {
                push(
                    &mut out,
                    RuleId::PanicFreedom,
                    toks[i + 1].line,
                    format!(
                        "`.{}()` can panic; return a typed error or document the \
                         invariant in the suppression ledger",
                        toks[i + 1].text
                    ),
                );
            }
            // Panicking macros.
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && next.is_some_and(|n| n.is_punct("!"))
            {
                push(
                    &mut out,
                    RuleId::PanicFreedom,
                    t.line,
                    format!(
                        "`{}!` aborts the control path; convert to a typed error",
                        t.text
                    ),
                );
            }
            // Indexing: `[` whose previous token is an expression tail.
            if t.is_punct("[") {
                let indexing = prev.is_some_and(|p| match p.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Int => true, // tuple field then index: `x.0[i]`
                    TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                    _ => false,
                });
                if indexing {
                    push(
                        &mut out,
                        RuleId::PanicFreedom,
                        t.line,
                        "slice/array indexing can panic; use .get()/.get_mut(), \
                         iterators, or pattern matching"
                            .to_string(),
                    );
                }
            }
        }

        if perf {
            // `format!(...)` — a fresh String per call.
            if t.is_ident("format") && next.is_some_and(|n| n.is_punct("!")) {
                push(
                    &mut out,
                    RuleId::PerfHygiene,
                    t.line,
                    "`format!` allocates a String on every substep; precompute \
                     the text or write into a reused buffer"
                        .to_string(),
                );
            }
            // `.to_string()` — a fresh String per call (the service hot
            // path writes into reused buffers instead).
            if t.is_punct(".")
                && next.is_some_and(|n| n.is_ident("to_string"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            {
                push(
                    &mut out,
                    RuleId::PerfHygiene,
                    toks[i + 1].line,
                    "`.to_string()` allocates a String on every call; borrow \
                     the &str or append into a reused buffer"
                        .to_string(),
                );
            }
            // `.collect::<Vec<...>>` — materializing an iterator.
            if t.is_punct(".")
                && next.is_some_and(|n| n.is_ident("collect"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 3).is_some_and(|n| n.is_punct("<"))
                && toks.get(i + 4).is_some_and(|n| n.is_ident("Vec"))
            {
                push(
                    &mut out,
                    RuleId::PerfHygiene,
                    toks[i + 1].line,
                    "`.collect::<Vec<_>>()` materializes a fresh Vec; fold the \
                     iterator directly or reuse a scratch buffer"
                        .to_string(),
                );
            }
            // `.clone()` — exact method name, so `.cloned()` on iterators
            // does not fire.
            if t.is_punct(".")
                && next.is_some_and(|n| n.is_ident("clone"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            {
                push(
                    &mut out,
                    RuleId::PerfHygiene,
                    toks[i + 1].line,
                    "`.clone()` in a hot path copies per substep; borrow, \
                     Copy, or hoist the copy out of the loop"
                        .to_string(),
                );
            }
        }

        if numeric {
            // `as <int>` casts.
            if t.is_ident("as")
                && next.is_some_and(|n| {
                    n.kind == TokKind::Ident && INT_CAST_TARGETS.contains(&n.text.as_str())
                })
            {
                push(
                    &mut out,
                    RuleId::NumericSafety,
                    t.line,
                    format!(
                        "`as {}` can truncate or wrap; use From/TryFrom or a \
                         checked conversion",
                        toks[i + 1].text
                    ),
                );
            }
            // Float equality against a literal.
            if (t.is_punct("==") || t.is_punct("!="))
                && (prev.is_some_and(|p| p.kind == TokKind::Float)
                    || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float))
            {
                push(
                    &mut out,
                    RuleId::NumericSafety,
                    t.line,
                    format!(
                        "float `{}` comparison; compare against an epsilon instead",
                        t.text
                    ),
                );
            }
        }
    }

    if scope.is_crate_root {
        for (attr, inner) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
            let present = toks.windows(7).any(|w| {
                w[0].is_punct("#")
                    && w[1].is_punct("!")
                    && w[2].is_punct("[")
                    && w[3].is_ident(attr)
                    && w[4].is_punct("(")
                    && w[5].is_ident(inner)
                    && w[6].is_punct(")")
            });
            if !present {
                push(
                    &mut out,
                    RuleId::CrateHygiene,
                    1,
                    format!("crate root is missing `#![{attr}({inner})]`"),
                );
            }
        }
    }

    out
}
