//! A comment- and string-aware Rust tokenizer.
//!
//! This is *not* a full Rust lexer — it is exactly as much of one as the
//! rule table needs: it distinguishes identifiers, integer and float
//! literals, string/char literals, lifetimes, and (possibly multi-char)
//! punctuation, and it discards comments entirely. Discarding comments and
//! string bodies is what makes the rules immune to the classic grep
//! failure modes (`// never call unwrap()` firing the panic rule, or a
//! log message containing `HashMap` firing the determinism rule).
//!
//! Every token carries its byte span (`lo..hi`) so the item parser can
//! report exact source extents. String and byte-string bodies are fully
//! opaque: a `}` inside `b"..."` or `br#"..."#` never reaches the
//! brace-matching layer, which is what keeps item extraction honest.

/// The coarse class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `unwrap`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `0.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, possibly multi-char (`::`, `==`, `[`).
    Punct,
}

/// One lexed token with its source line (1-based) and byte span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text for `Ident`/`Int`/`Float`/`Punct`; empty for literals
    /// whose body the rules never inspect.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub lo: u32,
    /// Byte offset one past the token's last byte.
    pub hi: u32,
}

impl Tok {
    /// `true` if this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// `true` if this token is the given identifier.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    // Char index -> byte offset, with a final sentinel at src.len() so
    // `byte_at(chars.len())` is the end of the source.
    let mut byte_of: Vec<u32> = Vec::with_capacity(chars.len() + 1);
    let mut b = 0u32;
    for c in &chars {
        byte_of.push(b);
        b += c.len_utf8() as u32;
    }
    byte_of.push(b);
    let byte_at = |i: usize| byte_of[i.min(byte_of.len() - 1)];

    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| chars.get(i).copied().unwrap_or('\0');

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && at(i + 1) == '/' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested. A `"` or `'` inside is comment text, so
        // the depth scan deliberately ignores string delimiters — but a
        // `/*` or `*/` inside a comment still nests/closes, exactly as
        // rustc lexes it.
        if c == '/' && at(i + 1) == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            scan_quoted(&chars, &mut i, &mut line, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
                lo: byte_at(start),
                hi: byte_at(i),
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let start = i;
            let start_line = line;
            let n1 = at(i + 1);
            let n2 = at(i + 2);
            if n1 == '\\'
                || (!is_ident_start(n1) && n1 != '\0')
                || (is_ident_start(n1) && n2 == '\'')
            {
                // Char literal: consume to the closing quote.
                i += 1;
                scan_quoted(&chars, &mut i, &mut line, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                    lo: byte_at(start),
                    hi: byte_at(i),
                });
            } else {
                // Lifetime: `'` followed by an identifier.
                i += 1;
                let name_start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[name_start..i].iter().collect(),
                    line: start_line,
                    lo: byte_at(start),
                    hi: byte_at(i),
                });
            }
            continue;
        }
        // Identifier, keyword, or raw/byte string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let next = at(i);
            let raw_prefix =
                matches!(text.as_str(), "r" | "br" | "rb") && (next == '"' || next == '#');
            let byte_str = text == "b" && next == '"';
            let byte_char = text == "b" && next == '\'';
            let start_line = line;
            if raw_prefix && lex_raw_string(&chars, &mut i, &mut line) {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                    lo: byte_at(start),
                    hi: byte_at(i),
                });
                continue;
            }
            if byte_str {
                // `b"..."`: same body rules as a plain string.
                i += 1;
                scan_quoted(&chars, &mut i, &mut line, '"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                    lo: byte_at(start),
                    hi: byte_at(i),
                });
                continue;
            }
            if byte_char {
                i += 1; // the quote
                scan_quoted(&chars, &mut i, &mut line, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                    lo: byte_at(start),
                    hi: byte_at(i),
                });
                continue;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
                lo: byte_at(start),
                hi: byte_at(i),
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let start_line = line;
            let mut is_float = false;
            if c == '0' && matches!(at(i + 1), 'x' | 'o' | 'b') {
                i += 2;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part — but not a range (`0..n`), not a method
                // call on a literal (`1.max(2)`), not a tuple field.
                if at(i) == '.' && at(i + 1) != '.' && !is_ident_start(at(i + 1)) {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if matches!(at(i), 'e' | 'E')
                    && (at(i + 1).is_ascii_digit()
                        || (matches!(at(i + 1), '+' | '-') && at(i + 2).is_ascii_digit()))
                {
                    is_float = true;
                    i += 1;
                    if matches!(at(i), '+' | '-') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Type suffix (`u32`, `f64`, …).
                if is_ident_start(at(i)) {
                    if at(i) == 'f' {
                        is_float = true;
                    }
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..i].iter().collect(),
                line: start_line,
                lo: byte_at(start),
                hi: byte_at(i),
            });
            continue;
        }
        // Punctuation: longest operator first.
        let mut matched = false;
        for op in OPERATORS {
            let olen = op.chars().count();
            if chars.len() - i >= olen && chars[i..i + olen].iter().collect::<String>() == **op {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                    lo: byte_at(i),
                    hi: byte_at(i + olen),
                });
                i += olen;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                lo: byte_at(i),
                hi: byte_at(i + 1),
            });
            i += 1;
        }
    }
    toks
}

/// Consumes a quoted body up to (and including) the unescaped `close`
/// delimiter, counting newlines — including a newline that immediately
/// follows a `\` escape (the line-continuation form `"\⏎   …"`), which a
/// naive `i += 2` skip would miss and silently desynchronize every line
/// number after it.
fn scan_quoted(chars: &[char], i: &mut usize, line: &mut u32, close: char) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' {
            if chars.get(*i + 1) == Some(&'\n') {
                *line += 1;
            }
            *i += 2;
            continue;
        }
        if c == close {
            *i += 1;
            return;
        }
        if c == '\n' {
            *line += 1;
        }
        *i += 1;
    }
}

/// Consumes a raw string starting at `chars[*i]` (which is `"` or `#`).
/// Returns `false` (consuming nothing) if this is not actually a raw
/// string opener, e.g. `r#ident` raw identifiers.
fn lex_raw_string(chars: &[char], i: &mut usize, line: &mut u32) -> bool {
    let mut j = *i;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return false;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                *i = k;
                return true;
            }
        }
        j += 1;
    }
    *i = j;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let toks = kinds("a // unwrap()\n/* HashMap */ b \"panic!\" 'c'");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let x = r#"He said "hi""#; let y = b"bytes"; let z = b'\n';"####);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn byte_string_bodies_are_opaque() {
        // Braces, quotes, and rule-relevant identifiers inside a byte
        // string must not surface as tokens.
        let toks = kinds(r#"let x = b"} unwrap() { \" HashMap"; y"#);
        assert!(!toks.iter().any(|(_, t)| t == "}" || t == "{"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unwrap" || t == "HashMap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "y"));
    }

    #[test]
    fn raw_byte_string_bodies_are_opaque() {
        let toks = kinds(r####"let x = br#"quote " hash # brace } panic!"#; z"####);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|(_, t)| t == "}"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "panic"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "z"));
    }

    #[test]
    fn nested_block_comments_with_string_delimiters() {
        // The inner `/*` nests even though it sits next to an unpaired
        // quote; the comment only ends at the second `*/`.
        let toks = kinds("/* outer \" /* inner ' */ still \" comment */ a");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a"]);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers_honest() {
        // `"\⏎  x"` is a line continuation: the `\` escape consumes the
        // newline, which must still bump the line counter.
        let toks = lex("let a = \"x\\\n  y\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = kinds("1.5 2e9 3f64 7 0xFF 0..4 1.max(2)");
        let floats = toks.iter().filter(|(k, _)| *k == TokKind::Float).count();
        let ints = toks.iter().filter(|(k, _)| *k == TokKind::Int).count();
        assert_eq!(floats, 3, "{toks:?}");
        // 7, 0xFF, 0, 4, 1, 2
        assert_eq!(ints, 6, "{toks:?}");
    }

    #[test]
    fn multichar_operators_group() {
        let toks = kinds("a == b != c :: d ..= e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "..="]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn byte_spans_slice_back_to_source_text() {
        let src = "fn héllo(x: u32) -> bool { x == 0xFF }";
        let toks = lex(src);
        let mut prev_hi = 0u32;
        for t in &toks {
            assert!(t.lo >= prev_hi, "spans must be nondecreasing: {t:?}");
            assert!(t.hi as usize <= src.len(), "span past EOF: {t:?}");
            // Spans land on char boundaries even around multibyte idents.
            let slice = &src[t.lo as usize..t.hi as usize];
            if !t.text.is_empty() {
                assert_eq!(slice, t.text, "span text mismatch");
            }
            prev_hi = t.hi;
        }
    }

    #[test]
    fn string_spans_cover_delimiters() {
        let src = r####"b"ab" br#"cd"# "ef""####;
        let toks = lex(src);
        let spans: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| &src[t.lo as usize..t.hi as usize])
            .collect();
        assert_eq!(spans, [r#"b"ab""#, r###"br#"cd"#"###, r#""ef""#]);
    }
}
