//! A comment- and string-aware Rust tokenizer.
//!
//! This is *not* a full Rust lexer — it is exactly as much of one as the
//! rule table needs: it distinguishes identifiers, integer and float
//! literals, string/char literals, lifetimes, and (possibly multi-char)
//! punctuation, and it discards comments entirely. Discarding comments and
//! string bodies is what makes the rules immune to the classic grep
//! failure modes (`// never call unwrap()` firing the panic rule, or a
//! log message containing `HashMap` firing the determinism rule).

/// The coarse class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `unwrap`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `0.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, possibly multi-char (`::`, `==`, `[`).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text for `Ident`/`Int`/`Float`/`Punct`; empty for literals
    /// whose body the rules never inspect.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// `true` if this token is the given identifier.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| chars.get(i).copied().unwrap_or('\0');

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && at(i + 1) == '/' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && at(i + 1) == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let start_line = line;
            let n1 = at(i + 1);
            let n2 = at(i + 2);
            if n1 == '\\'
                || (!is_ident_start(n1) && n1 != '\0')
                || (is_ident_start(n1) && n2 == '\'')
            {
                // Char literal: consume to the closing quote.
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                });
            } else {
                // Lifetime: `'` followed by an identifier.
                i += 1;
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            continue;
        }
        // Identifier, keyword, or raw/byte string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let next = at(i);
            let raw_prefix =
                matches!(text.as_str(), "r" | "br" | "rb") && (next == '"' || next == '#');
            let byte_str = text == "b" && next == '"';
            let byte_char = text == "b" && next == '\'';
            let start_line = line;
            if raw_prefix && lex_raw_string(&chars, &mut i, &mut line) {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                continue;
            }
            if byte_str {
                // Re-enter the loop at the quote: lexes as a plain string.
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                }
                continue;
            }
            if byte_char {
                i += 1; // the quote
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                continue;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let start_line = line;
            let mut is_float = false;
            if c == '0' && matches!(at(i + 1), 'x' | 'o' | 'b') {
                i += 2;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part — but not a range (`0..n`), not a method
                // call on a literal (`1.max(2)`), not a tuple field.
                if at(i) == '.' && at(i + 1) != '.' && !is_ident_start(at(i + 1)) {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if matches!(at(i), 'e' | 'E')
                    && (at(i + 1).is_ascii_digit()
                        || (matches!(at(i + 1), '+' | '-') && at(i + 2).is_ascii_digit()))
                {
                    is_float = true;
                    i += 1;
                    if matches!(at(i), '+' | '-') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Type suffix (`u32`, `f64`, …).
                if is_ident_start(at(i)) {
                    if at(i) == 'f' {
                        is_float = true;
                    }
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Punctuation: longest operator first.
        let mut matched = false;
        for op in OPERATORS {
            let olen = op.chars().count();
            if chars.len() - i >= olen && chars[i..i + olen].iter().collect::<String>() == **op {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += olen;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    toks
}

/// Consumes a raw string starting at `chars[*i]` (which is `"` or `#`).
/// Returns `false` (consuming nothing) if this is not actually a raw
/// string opener, e.g. `r#ident` raw identifiers.
fn lex_raw_string(chars: &[char], i: &mut usize, line: &mut u32) -> bool {
    let mut j = *i;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return false;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                *i = k;
                return true;
            }
        }
        j += 1;
    }
    *i = j;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let toks = kinds("a // unwrap()\n/* HashMap */ b \"panic!\" 'c'");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let x = r#"He said "hi""#; let y = b"bytes"; let z = b'\n';"####);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = kinds("1.5 2e9 3f64 7 0xFF 0..4 1.max(2)");
        let floats = toks.iter().filter(|(k, _)| *k == TokKind::Float).count();
        let ints = toks.iter().filter(|(k, _)| *k == TokKind::Int).count();
        assert_eq!(floats, 3, "{toks:?}");
        // 7, 0xFF, 0, 4, 1, 2
        assert_eq!(ints, 6, "{toks:?}");
    }

    #[test]
    fn multichar_operators_group() {
        let toks = kinds("a == b != c :: d ..= e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "..="]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
