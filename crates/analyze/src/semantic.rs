//! The semantic rule packs: item-level invariants the token rules
//! cannot express.
//!
//! Analysis is two-phase. [`extract_facts`] reduces one file's item
//! table to a [`FileFacts`] — a pure function of the file's text, which
//! is what makes per-file results cacheable. [`check`] then joins the
//! facts of every file into a workspace item table and runs three packs:
//!
//! * **snapshot-coverage** — a type with hand-written GLACSNAP serde
//!   must mention every non-derived field in both its `Serialize` and
//!   `Deserialize` impls (and in `PartialEq` where hand-written), so a
//!   field added without threading it through snapshot/resume is a CI
//!   failure rather than a silent resume corruption.
//! * **rng-draw-budget** — a fn annotated `glacsweb: draw-budget(N)`
//!   must retire exactly N raw draws on every execution path, counting
//!   through branches, matches, and `self.` method calls; an unbalanced
//!   branch desynchronizes the naive and sleep-leaping streams.
//! * **derived-state** — memo/cache fields (annotated, `*Memo`/`*Cache`
//!   typed, or `*_buf`/`*_cache`/`*_memo`/`*_scratch` named) must be
//!   invisible to equality and serialize as null, enforcing the
//!   derived-state convention mechanically.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{Item, ItemKind};
use crate::rules::{classify, Finding, RuleId};

/// Saturation cap for draw-interval arithmetic. Small enough to stay
/// exact through the cache's number representation, large enough that
/// any real budget mismatch is still visible.
pub const DRAW_CAP: u64 = 1_000_000;

/// RNG methods that retire raw draws, with their (min, max) weight.
/// `normal` is Box–Muller: either serves a memoized spare (0 raws) or
/// generates a fresh pair (2 raws).
const DRAW_WEIGHTS: &[(&str, u64, u64)] = &[
    ("f64", 1, 1),
    ("below", 1, 1),
    ("uniform", 1, 1),
    ("bernoulli", 1, 1),
    ("exponential", 1, 1),
    ("weibull", 1, 1),
    ("choose", 1, 1),
    ("fork", 1, 1),
    ("normal", 0, 2),
];

/// Field-name suffixes that mark derived state by convention.
const DERIVED_NAME_SUFFIXES: &[&str] = &["_buf", "_scratch", "_memo", "_cache"];

/// How many draws a region of code can retire, as a tree mirroring the
/// region's control flow.
#[derive(Debug, Clone, PartialEq)]
pub enum DrawTree {
    /// Sequential composition: intervals add.
    Seq(Vec<DrawTree>),
    /// Alternative paths: intervals hull.
    Branch(Vec<DrawTree>),
    /// A direct draw call.
    Leaf {
        /// Minimum raws retired.
        lo: u64,
        /// Maximum raws retired.
        hi: u64,
        /// Source line of the call.
        line: u32,
    },
    /// A `self.method(...)` call, resolved against the fn table.
    Call {
        /// Method name.
        name: String,
        /// Source line of the call.
        line: u32,
    },
    /// A non-literal `skip_raw(...)`: tops the stream up to the budget.
    Balance {
        /// Source line of the call.
        line: u32,
    },
    /// A loop body that may execute any number of times.
    Loop {
        /// The body's tree.
        body: Box<DrawTree>,
        /// Source line of the loop keyword.
        line: u32,
    },
}

/// One named field of a struct, as cached.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldFact {
    /// Field name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Identifiers of the field's type.
    pub ty: Vec<String>,
    /// `derived-state` annotation present.
    pub annotated: bool,
}

/// One struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructFact {
    /// Type name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// `#[derive(...)]` identifiers.
    pub derives: Vec<String>,
    /// Named fields.
    pub fields: Vec<FieldFact>,
}

/// One hand-written trait impl the packs care about
/// (`Serialize` / `Deserialize` / `PartialEq`).
#[derive(Debug, Clone, PartialEq)]
pub struct ImplFact {
    /// Trait's final path segment.
    pub trait_name: String,
    /// Self type's head identifier.
    pub ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Every identifier in the impl body.
    pub idents: BTreeSet<String>,
    /// Body mentions `Null` (null-serde convention marker).
    pub mentions_null: bool,
}

/// One fn definition with its draw tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FnFact {
    /// Fn name.
    pub name: String,
    /// Enclosing impl's self type, if any.
    pub ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared budget from a `draw-budget(N)` annotation.
    pub budget: Option<u64>,
    /// The body's draw tree.
    pub tree: DrawTree,
}

/// Everything the semantic packs need to know about one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub rel: String,
    /// Struct definitions.
    pub structs: Vec<StructFact>,
    /// Relevant hand-written impls.
    pub impls: Vec<ImplFact>,
    /// Fn definitions.
    pub fns: Vec<FnFact>,
    /// Types marked null-serde via convention-macro invocations
    /// (`derived_state_serde!(T)` and the like).
    pub macro_marks: Vec<String>,
}

/// Reduces a parsed file to its semantic facts. Test items contribute
/// nothing.
pub fn extract_facts(rel: &str, toks: &[Tok], items: &[Item]) -> FileFacts {
    let mut facts = FileFacts {
        rel: rel.to_string(),
        ..FileFacts::default()
    };
    walk(toks, items, None, &mut facts);
    facts
}

fn walk(toks: &[Tok], items: &[Item], impl_ty: Option<&str>, facts: &mut FileFacts) {
    for item in items {
        if item.in_test {
            continue;
        }
        match item.kind {
            ItemKind::Struct => facts.structs.push(StructFact {
                name: item.name.clone(),
                line: item.line,
                derives: item.derives.clone(),
                fields: item
                    .fields
                    .iter()
                    .map(|f| FieldFact {
                        name: f.name.clone(),
                        line: f.line,
                        ty: f.ty_idents.clone(),
                        annotated: f.annotated_derived,
                    })
                    .collect(),
            }),
            ItemKind::Impl => {
                if let Some(tr) = item.trait_name.as_deref() {
                    if matches!(tr, "Serialize" | "Deserialize" | "PartialEq") {
                        let idents = body_idents(toks, item.body);
                        facts.impls.push(ImplFact {
                            trait_name: tr.to_string(),
                            ty: item.name.clone(),
                            line: item.line,
                            mentions_null: idents.contains("Null"),
                            idents,
                        });
                    }
                }
                walk(toks, &item.children, Some(&item.name), facts);
            }
            ItemKind::Fn => {
                let tree = item
                    .body
                    .map(|(open, close)| build_tree(toks, open + 1, close))
                    .unwrap_or(DrawTree::Seq(Vec::new()));
                facts.fns.push(FnFact {
                    name: item.name.clone(),
                    ty: impl_ty.map(str::to_string),
                    line: item.line,
                    budget: item.budget,
                    tree,
                });
            }
            ItemKind::Mod => walk(toks, &item.children, None, facts),
            ItemKind::MacroInvocation
                if item.name.contains("derived_state") || item.name.ends_with("_serde") =>
            {
                facts.macro_marks.extend(item.macro_args.iter().cloned());
            }
            _ => {}
        }
    }
}

fn body_idents(toks: &[Tok], body: Option<(usize, usize)>) -> BTreeSet<String> {
    let Some((open, close)) = body else {
        return BTreeSet::new();
    };
    toks[open..=close.min(toks.len().saturating_sub(1))]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

// ---------------------------------------------------------------------
// Draw-tree construction.
// ---------------------------------------------------------------------

/// Builds the draw tree of the token range `start..end`.
pub fn build_tree(toks: &[Tok], start: usize, end: usize) -> DrawTree {
    let mut nodes = Vec::new();
    build_seq(toks, start, end.min(toks.len()), &mut nodes);
    DrawTree::Seq(nodes)
}

fn build_seq(toks: &[Tok], start: usize, end: usize, out: &mut Vec<DrawTree>) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "if" => {
                    i = build_if(toks, i, end, out);
                    continue;
                }
                "match" => {
                    i = build_match(toks, i, end, out);
                    continue;
                }
                "while" | "for" | "loop" => {
                    let line = t.line;
                    let open = find_block(toks, i + 1, end);
                    let Some(b) = open else {
                        i += 1;
                        continue;
                    };
                    // Loop-header draws repeat per iteration too: fold
                    // them into the loop body.
                    let mut body = Vec::new();
                    build_seq(toks, i + 1, b, &mut body);
                    let close = close_of(toks, b, end);
                    build_seq(toks, b + 1, close, &mut body);
                    out.push(DrawTree::Loop {
                        body: Box::new(DrawTree::Seq(body)),
                        line,
                    });
                    i = close + 1;
                    continue;
                }
                _ => {}
            }
            // `self.method(...)`: a call worth resolving.
            if t.text == "self"
                && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
                && i + 3 < end
            {
                let name = &toks[i + 2].text;
                if !DRAW_WEIGHTS.iter().any(|(m, _, _)| m == name) {
                    out.push(DrawTree::Call {
                        name: name.clone(),
                        line: toks[i + 2].line,
                    });
                    i += 3;
                    continue;
                }
            }
        }
        // `.draw_method(` with an RNG-ish receiver.
        if t.is_punct(".")
            && i + 2 < end
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct("(")
        {
            let name = toks[i + 1].text.as_str();
            let line = toks[i + 1].line;
            if name == "skip_raw" {
                let args_end = close_of_punct(toks, i + 2, end, "(", ")");
                let args = &toks[i + 3..args_end.min(end)];
                if let [only] = args {
                    if only.kind == TokKind::Int {
                        let n = parse_int(&only.text).min(DRAW_CAP);
                        out.push(DrawTree::Leaf { lo: n, hi: n, line });
                        i = args_end + 1;
                        continue;
                    }
                }
                out.push(DrawTree::Balance { line });
                i = args_end + 1;
                continue;
            }
            if let Some((_, lo, hi)) = DRAW_WEIGHTS.iter().find(|(m, _, _)| *m == name) {
                if receiver_is_rng(toks, i) {
                    out.push(DrawTree::Leaf {
                        lo: *lo,
                        hi: *hi,
                        line,
                    });
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// `true` if the tokens just before the `.` at `dot` look like an RNG
/// receiver (`rng.f64()`, `self.st.rng[s].normal(...)`).
fn receiver_is_rng(toks: &[Tok], dot: usize) -> bool {
    let from = dot.saturating_sub(6);
    toks[from..dot]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("rng"))
}

fn parse_int(text: &str) -> u64 {
    let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
    digits.replace('_', "").parse().unwrap_or(0)
}

/// First `{` at paren/bracket depth 0 in `start..end`.
fn find_block(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = start;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" if toks[j].kind == TokKind::Punct => depth += 1,
            ")" | "]" if toks[j].kind == TokKind::Punct => depth = depth.saturating_sub(1),
            "{" if toks[j].kind == TokKind::Punct && depth == 0 => return Some(j),
            ";" if toks[j].kind == TokKind::Punct && depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` closing the `{` at `open` (or `end - 1` if unmatched).
fn close_of(toks: &[Tok], open: usize, end: usize) -> usize {
    close_of_punct(toks, open, end, "{", "}")
}

fn close_of_punct(toks: &[Tok], open: usize, end: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct(op) {
            depth += 1;
        } else if toks[j].is_punct(cl) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Parses `if cond { } [else if ... | else { }]` into cond + branch
/// nodes. Returns the index after the construct.
fn build_if(toks: &[Tok], i: usize, end: usize, out: &mut Vec<DrawTree>) -> usize {
    let Some(open) = find_block(toks, i + 1, end) else {
        return i + 1;
    };
    // Condition draws happen on every path through the `if`.
    build_seq(toks, i + 1, open, out);
    let close = close_of(toks, open, end);
    let mut then_nodes = Vec::new();
    build_seq(toks, open + 1, close, &mut then_nodes);
    let mut next = close + 1;
    let mut else_nodes = Vec::new();
    if next < end && toks[next].is_ident("else") {
        if next + 1 < end && toks[next + 1].is_ident("if") {
            next = build_if(toks, next + 1, end, &mut else_nodes);
        } else if next + 1 < end && toks[next + 1].is_punct("{") {
            let eclose = close_of(toks, next + 1, end);
            build_seq(toks, next + 2, eclose, &mut else_nodes);
            next = eclose + 1;
        } else {
            next += 1;
        }
    }
    out.push(DrawTree::Branch(vec![
        DrawTree::Seq(then_nodes),
        DrawTree::Seq(else_nodes),
    ]));
    next
}

/// Parses `match scrutinee { arms }` into scrutinee + branch-of-arms
/// nodes. Returns the index after the construct.
fn build_match(toks: &[Tok], i: usize, end: usize, out: &mut Vec<DrawTree>) -> usize {
    let Some(open) = find_block(toks, i + 1, end) else {
        return i + 1;
    };
    build_seq(toks, i + 1, open, out);
    let close = close_of(toks, open, end);
    let mut arms = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Pattern (and guard) up to the depth-0 `=>`.
        let mut depth = 0i64;
        let arm_start = j;
        while j < close {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= close {
            break;
        }
        let mut arm_nodes = Vec::new();
        build_seq(toks, arm_start, j, &mut arm_nodes); // guard draws
        j += 1; // past `=>`
        if j < close && toks[j].is_punct("{") {
            let bclose = close_of(toks, j, close);
            build_seq(toks, j + 1, bclose, &mut arm_nodes);
            j = bclose + 1;
        } else {
            // Expression body: to the `,` at depth 0.
            let mut depth = 0i64;
            let body_start = j;
            while j < close {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            build_seq(toks, body_start, j, &mut arm_nodes);
        }
        if j < close && toks[j].is_punct(",") {
            j += 1;
        }
        arms.push(DrawTree::Seq(arm_nodes));
    }
    if !arms.is_empty() {
        out.push(DrawTree::Branch(arms));
    }
    close + 1
}

// ---------------------------------------------------------------------
// Workspace-level checks.
// ---------------------------------------------------------------------

fn is_derived_field(f: &FieldFact) -> bool {
    f.annotated
        || DERIVED_NAME_SUFFIXES.iter().any(|s| f.name.ends_with(s))
        || f.ty
            .iter()
            .any(|t| t.ends_with("Memo") || t.ends_with("Cache"))
}

fn is_memo_type(name: &str) -> bool {
    name.ends_with("Memo") || name.ends_with("Cache")
}

struct Table<'a> {
    /// Struct name -> (file, fact); names defined more than once are
    /// dropped (ambiguous joins would misattribute impls).
    structs: BTreeMap<&'a str, (&'a str, &'a StructFact)>,
    /// (type, trait) -> merged impl facts across the workspace (the
    /// orphan rule keeps a type's impls in its own crate, and type
    /// names are workspace-unique in practice).
    impls: BTreeMap<(&'a str, &'a str), MergedImpl<'a>>,
    /// Types marked null-serde by convention macros.
    marks: BTreeSet<&'a str>,
    /// (impl type, fn name) -> fns (for call resolution).
    methods: BTreeMap<(&'a str, &'a str), Vec<(&'a str, &'a FnFact)>>,
    /// fn name -> fns (fallback resolution when globally unique).
    by_name: BTreeMap<&'a str, Vec<(&'a str, &'a FnFact)>>,
}

struct MergedImpl<'a> {
    file: &'a str,
    line: u32,
    idents: BTreeSet<&'a str>,
    mentions_null: bool,
}

fn build_table<'a>(facts: &'a [&'a FileFacts]) -> Table<'a> {
    let mut structs: BTreeMap<&str, Vec<(&str, &StructFact)>> = BTreeMap::new();
    let mut table = Table {
        structs: BTreeMap::new(),
        impls: BTreeMap::new(),
        marks: BTreeSet::new(),
        methods: BTreeMap::new(),
        by_name: BTreeMap::new(),
    };
    for ff in facts {
        if !classify(&ff.rel).is_lib {
            continue;
        }
        for s in &ff.structs {
            structs.entry(&s.name).or_default().push((&ff.rel, s));
        }
        for im in &ff.impls {
            let entry = table
                .impls
                .entry((&im.ty, &im.trait_name))
                .or_insert(MergedImpl {
                    file: &ff.rel,
                    line: im.line,
                    idents: BTreeSet::new(),
                    mentions_null: false,
                });
            entry.idents.extend(im.idents.iter().map(String::as_str));
            entry.mentions_null |= im.mentions_null;
        }
        table
            .marks
            .extend(ff.macro_marks.iter().map(String::as_str));
        for f in &ff.fns {
            let ty = f.ty.as_deref().unwrap_or("");
            table
                .methods
                .entry((ty, &f.name))
                .or_default()
                .push((&ff.rel, f));
            table.by_name.entry(&f.name).or_default().push((&ff.rel, f));
        }
    }
    for (name, defs) in structs {
        if let [one] = defs.as_slice() {
            table.structs.insert(name, *one);
        }
    }
    table
}

/// Runs every semantic pack over the workspace facts.
pub fn check(facts: &[&FileFacts]) -> Vec<Finding> {
    let table = build_table(facts);
    let mut out = Vec::new();
    check_serde_packs(&table, &mut out);
    check_draw_budgets(&table, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, rule: RuleId, file: &str, line: u32, message: String) {
    out.push(Finding {
        rule,
        file: file.to_string(),
        line,
        message,
        suppressed: false,
    });
}

fn check_serde_packs(table: &Table<'_>, out: &mut Vec<Finding>) {
    for (&name, &(file, s)) in &table.structs {
        let ser = table.impls.get(&(name, "Serialize"));
        let de = table.impls.get(&(name, "Deserialize"));
        let eq = table.impls.get(&(name, "PartialEq"));
        let derives = |d: &str| s.derives.iter().any(|x| x == d);

        if is_memo_type(name) || table.marks.contains(name) {
            // The memo type itself: a hand-written Serialize must be the
            // null-serde form.
            if let Some(im) = ser {
                if !im.mentions_null {
                    push(
                        out,
                        RuleId::DerivedState,
                        im.file,
                        im.line,
                        format!(
                            "memo type `{name}` has a hand-written `Serialize` that does \
                             not serialize as `Value::Null`"
                        ),
                    );
                }
            }
            continue;
        }

        let participates =
            derives("Serialize") || derives("Deserialize") || ser.is_some() || de.is_some();

        // Pack: snapshot-coverage.
        if participates {
            if let Some(im) = ser {
                for f in s.fields.iter().filter(|f| !is_derived_field(f)) {
                    if !im.idents.contains(f.name.as_str()) {
                        push(
                            out,
                            RuleId::SnapshotCoverage,
                            im.file,
                            im.line,
                            format!(
                                "hand-written `Serialize` for `{name}` never mentions field \
                                 `{}`; the field is dropped from every snapshot",
                                f.name
                            ),
                        );
                    }
                }
            }
            if let Some(im) = de {
                for f in s.fields.iter().filter(|f| !is_derived_field(f)) {
                    if !im.idents.contains(f.name.as_str()) {
                        push(
                            out,
                            RuleId::SnapshotCoverage,
                            im.file,
                            im.line,
                            format!(
                                "hand-written `Deserialize` for `{name}` never mentions field \
                                 `{}`; restore cannot rebuild it",
                                f.name
                            ),
                        );
                    }
                }
            }
            if let Some(im) = eq {
                for f in s.fields.iter().filter(|f| !is_derived_field(f)) {
                    if !im.idents.contains(f.name.as_str()) {
                        push(
                            out,
                            RuleId::SnapshotCoverage,
                            im.file,
                            im.line,
                            format!(
                                "hand-written `PartialEq` for `{name}` never compares field \
                                 `{}`; snapshot equivalence checks cannot see it",
                                f.name
                            ),
                        );
                    }
                }
            }
        }

        // Pack: derived-state.
        for f in s.fields.iter().filter(|f| is_derived_field(f)) {
            if let Some(im) = eq {
                if im.idents.contains(f.name.as_str()) {
                    push(
                        out,
                        RuleId::DerivedState,
                        im.file,
                        im.line,
                        format!(
                            "hand-written `PartialEq` for `{name}` compares derived field \
                             `{}`; memo/cache state must be invisible to equality",
                            f.name
                        ),
                    );
                }
            }
            if let Some(im) = ser {
                if im.idents.contains(f.name.as_str()) {
                    push(
                        out,
                        RuleId::DerivedState,
                        im.file,
                        im.line,
                        format!(
                            "hand-written `Serialize` for `{name}` writes derived field \
                             `{}`; memo/cache state must serialize as null",
                            f.name
                        ),
                    );
                }
            }
            if eq.is_none() && derives("PartialEq") {
                let neutral = f.ty.iter().any(|t| {
                    table.marks.contains(t.as_str())
                        || table.impls.contains_key(&(t.as_str(), "PartialEq"))
                });
                if !neutral {
                    push(
                        out,
                        RuleId::DerivedState,
                        file,
                        f.line,
                        format!(
                            "`derive(PartialEq)` on `{name}` includes derived field `{}` \
                             whose type has no always-equal `PartialEq` impl",
                            f.name
                        ),
                    );
                }
            }
            if ser.is_none() && derives("Serialize") {
                let null_serde = f.ty.iter().any(|t| {
                    table.marks.contains(t.as_str())
                        || table
                            .impls
                            .get(&(t.as_str(), "Serialize"))
                            .is_some_and(|im| im.mentions_null)
                });
                if !null_serde {
                    push(
                        out,
                        RuleId::DerivedState,
                        file,
                        f.line,
                        format!(
                            "`derive(Serialize)` on `{name}` includes derived field `{}` \
                             whose type does not serialize as `Value::Null`",
                            f.name
                        ),
                    );
                }
            }
        }
    }
}

fn check_draw_budgets(table: &Table<'_>, out: &mut Vec<Finding>) {
    for ((ty, _), fns) in &table.methods {
        for (file, f) in fns {
            let Some(budget) = f.budget else {
                continue;
            };
            let mut stack = vec![(ty.to_string(), f.name.clone())];
            let mut reported = false;
            let (lo, hi) = eval(
                &f.tree,
                table,
                ty,
                budget,
                &mut stack,
                out,
                file,
                &mut reported,
            );
            if !reported && (lo, hi) != (budget, budget) {
                push(
                    out,
                    RuleId::RngDrawBudget,
                    file,
                    f.line,
                    format!(
                        "`{}` declares draw-budget({budget}) but its paths retire between \
                         {lo} and {hi} raw draws",
                        f.name
                    ),
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval(
    tree: &DrawTree,
    table: &Table<'_>,
    self_ty: &str,
    budget: u64,
    stack: &mut Vec<(String, String)>,
    out: &mut Vec<Finding>,
    file: &str,
    reported: &mut bool,
) -> (u64, u64) {
    match tree {
        DrawTree::Leaf { lo, hi, .. } => (*lo, *hi),
        DrawTree::Seq(children) => {
            let mut lo = 0u64;
            let mut hi = 0u64;
            for c in children {
                if let DrawTree::Balance { line } = c {
                    if hi > budget && !*reported {
                        push(
                            out,
                            RuleId::RngDrawBudget,
                            file,
                            *line,
                            format!(
                                "a path reaching this balancing `skip_raw` may already have \
                                 retired {hi} raw draws, exceeding the declared budget of \
                                 {budget}"
                            ),
                        );
                        *reported = true;
                    }
                    lo = budget;
                    hi = budget;
                    continue;
                }
                let (clo, chi) = eval(c, table, self_ty, budget, stack, out, file, reported);
                lo = (lo + clo).min(DRAW_CAP);
                hi = (hi + chi).min(DRAW_CAP);
            }
            (lo, hi)
        }
        DrawTree::Branch(arms) => {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for a in arms {
                let (alo, ahi) = eval(a, table, self_ty, budget, stack, out, file, reported);
                lo = lo.min(alo);
                hi = hi.max(ahi);
            }
            if arms.is_empty() {
                (0, 0)
            } else {
                (lo, hi)
            }
        }
        DrawTree::Balance { .. } => {
            // A balance outside a Seq (degenerate); treat as a top-up.
            (budget, budget)
        }
        DrawTree::Loop { body, line } => {
            let (blo, bhi) = eval(body, table, self_ty, budget, stack, out, file, reported);
            if bhi > 0 {
                if !*reported {
                    push(
                        out,
                        RuleId::RngDrawBudget,
                        file,
                        *line,
                        "RNG draws inside a loop cannot satisfy a fixed draw budget".to_string(),
                    );
                    *reported = true;
                }
                (blo, DRAW_CAP)
            } else {
                (0, 0)
            }
        }
        DrawTree::Call { name, .. } => {
            let resolved = table
                .methods
                .get(&(self_ty, name.as_str()))
                .and_then(|v| match v.as_slice() {
                    [one] => Some(*one),
                    _ => None,
                })
                .or_else(|| {
                    table
                        .by_name
                        .get(name.as_str())
                        .and_then(|v| match v.as_slice() {
                            [one] => Some(*one),
                            _ => None,
                        })
                });
            let Some((cfile, cf)) = resolved else {
                return (0, 0);
            };
            let key = (cf.ty.clone().unwrap_or_default(), cf.name.clone());
            if stack.contains(&key) {
                return (0, 0);
            }
            stack.push(key);
            let callee_ty = cf.ty.as_deref().unwrap_or("");
            let r = eval(
                &cf.tree, table, callee_ty, budget, stack, out, cfile, reported,
            );
            stack.pop();
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::rules::test_mask;

    fn facts_of(rel: &str, src: &str) -> FileFacts {
        let toks = lex(src);
        let (mask, _) = test_mask(&toks);
        let items = parse_items(src, &toks, &mask);
        extract_facts(rel, &toks, &items)
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let facts: Vec<FileFacts> = files.iter().map(|(rel, src)| facts_of(rel, src)).collect();
        let refs: Vec<&FileFacts> = facts.iter().collect();
        check(&refs)
    }

    #[test]
    fn tree_counts_if_else_chain() {
        let src = "fn f(&mut self) { let rng = &mut self.rng; \
                   if rng.f64() < 0.5 { } else if rng.f64() < 0.5 { } else { } }";
        let toks = lex(src);
        let (mask, _) = test_mask(&toks);
        let items = parse_items(src, &toks, &mask);
        let facts = extract_facts("crates/fleet/src/x.rs", &toks, &items);
        let table = build_table(&[]);
        let mut out = Vec::new();
        let mut reported = false;
        let (lo, hi) = eval(
            &facts.fns[0].tree,
            &table,
            "",
            9,
            &mut Vec::new(),
            &mut out,
            "f",
            &mut reported,
        );
        assert_eq!((lo, hi), (1, 2));
    }

    #[test]
    fn budget_ok_with_balance() {
        let findings = run(&[(
            "crates/fleet/src/k.rs",
            "/// glacsweb: draw-budget(3)\n\
             fn wake(&mut self) { let rng = &mut self.rng;\n\
               if rng.f64() < 0.5 { let _ = rng.normal(0.0, 1.0); }\n\
               rng.skip_raw(n - used);\n}",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::RngDrawBudget),
            "{findings:?}"
        );
    }

    #[test]
    fn budget_overflow_at_balance_fires_once() {
        let findings = run(&[(
            "crates/fleet/src/k.rs",
            "/// glacsweb: draw-budget(1)\n\
             fn wake(&mut self) { let rng = &mut self.rng;\n\
               let _ = rng.f64(); let _ = rng.f64();\n\
               rng.skip_raw(n - used);\n}",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::RngDrawBudget)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn budget_mismatch_without_balance() {
        let findings = run(&[(
            "crates/fleet/src/k.rs",
            "/// glacsweb: draw-budget(2)\n\
             fn wake(&mut self) { let rng = &mut self.rng;\n\
               if c { let _ = rng.f64(); }\n}",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::RngDrawBudget)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("between 0 and 1"));
    }

    #[test]
    fn budget_resolves_self_calls() {
        let findings = run(&[(
            "crates/fleet/src/k.rs",
            "impl Site {\n\
               /// glacsweb: draw-budget(1)\n\
               fn wake(&mut self) { self.helper(); }\n\
               fn helper(&mut self) { let rng = &mut self.rng; let _ = rng.f64(); }\n\
             }",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::RngDrawBudget),
            "{findings:?}"
        );
    }

    #[test]
    fn draws_in_loops_are_flagged() {
        let findings = run(&[(
            "crates/fleet/src/k.rs",
            "/// glacsweb: draw-budget(1)\n\
             fn wake(&mut self) { let rng = &mut self.rng;\n\
               while t < end { let _ = rng.f64(); }\n}",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::RngDrawBudget)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("loop"));
    }

    const MEMO_IMPLS: &str = "struct FooMemo { v: f64 }\n\
        impl PartialEq for FooMemo { fn eq(&self, _: &Self) -> bool { true } }\n\
        impl Serialize for FooMemo { fn to_value(&self) -> Value { Value::Null } }\n";

    #[test]
    fn coverage_flags_missing_serialize_field() {
        let findings = run(&[(
            "crates/power/src/r.rs",
            "struct Rail { a: u32, b: u32 }\n\
             impl Serialize for Rail { fn to_value(&self) -> Value { self.a.to_value() } }\n\
             impl Deserialize for Rail { fn from_value(v: &Value) -> R { Rail { a: x(v), b: y(v) } } }",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::SnapshotCoverage)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("`b`"), "{}", hits[0].message);
    }

    #[test]
    fn coverage_is_quiet_when_fields_are_covered() {
        let findings = run(&[(
            "crates/power/src/r.rs",
            "struct Rail { a: u32, memo_buf: Vec<f64> }\n\
             impl Serialize for Rail { fn to_value(&self) -> Value { self.a.to_value() } }\n\
             impl Deserialize for Rail { fn from_value(v: &Value) -> R { Rail { a: x(v), memo_buf: Vec::new() } } }",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::SnapshotCoverage),
            "{findings:?}"
        );
    }

    #[test]
    fn derived_state_flags_memo_in_partial_eq() {
        let src = format!(
            "{MEMO_IMPLS}\n\
             struct Rail {{ a: u32, taper: FooMemo }}\n\
             impl Serialize for Rail {{ fn to_value(&self) -> Value {{ self.a.to_value() }} }}\n\
             impl PartialEq for Rail {{ fn eq(&self, o: &Self) -> bool {{ \
               self.a == o.a && self.taper == o.taper }} }}"
        );
        let findings = run(&[("crates/power/src/r.rs", &src)]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::DerivedState)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("taper"));
    }

    #[test]
    fn derived_state_flags_derive_partial_eq_without_neutral_eq() {
        let findings = run(&[(
            "crates/power/src/r.rs",
            "#[derive(PartialEq)]\nstruct S {\n    // glacsweb: derived-state\n    scratch: Vec<f64>,\n}",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::DerivedState)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
    }

    #[test]
    fn derived_state_trusts_macro_marked_types() {
        let findings = run(&[
            (
                "crates/env/src/c.rs",
                "struct StepCache { v: f64 }\nderived_state_serde!(StepCache);\n\
                 impl PartialEq for StepCache { fn eq(&self, _: &Self) -> bool { true } }",
            ),
            (
                "crates/fleet/src/s.rs",
                "#[derive(PartialEq, Serialize)]\nstruct Site { a: u32, ou_cache: StepCache }",
            ),
        ]);
        assert!(
            findings.iter().all(|f| f.rule != RuleId::DerivedState),
            "{findings:?}"
        );
    }

    #[test]
    fn memo_type_with_non_null_serialize_is_flagged() {
        let findings = run(&[(
            "crates/power/src/m.rs",
            "struct BarMemo { v: f64 }\n\
             impl Serialize for BarMemo { fn to_value(&self) -> Value { self.v.to_value() } }",
        )]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::DerivedState)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("BarMemo"));
    }

    #[test]
    fn non_lib_files_are_out_of_scope() {
        let findings = run(&[(
            "crates/power/tests/r.rs",
            "struct Rail { a: u32 }\n\
             impl Serialize for Rail { fn to_value(&self) -> Value { Value::Null } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
