//! CLI for `glacsweb-analyze`.
//!
//! ```text
//! cargo run -p glacsweb-analyze -- [--deny] [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! * `--deny`  — exit nonzero if any unsuppressed finding remains (CI mode).
//! * `--root`  — workspace root; defaults to walking up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section.
//! * `--json`  — where to write the machine-readable report
//!   (default `ANALYSIS.json` under the workspace root).
//! * `--quiet` — suppress the ledger listing; findings still print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use glacsweb_analyze::{analyze_workspace, find_workspace_root};

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: glacsweb-analyze [--deny] [--root DIR] [--json PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("glacsweb-analyze: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("glacsweb-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let json_path = json.unwrap_or_else(|| root.join("ANALYSIS.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("glacsweb-analyze: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    let text = report.render_text();
    if quiet {
        // Findings and the summary line only.
        for line in text.lines() {
            if line.starts_with("error[")
                || line.trim_start().starts_with("-->")
                || line.starts_with("glacsweb-analyze:")
            {
                println!("{line}");
            }
        }
    } else {
        print!("{text}");
    }

    if deny && report.unsuppressed().next().is_some() {
        eprintln!("glacsweb-analyze: failing (--deny) on unsuppressed findings");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
