//! CLI for `glacsweb-analyze`.
//!
//! ```text
//! cargo run -p glacsweb-analyze -- [--deny] [--root DIR] [--json PATH]
//!     [--sarif PATH] [--threads N] [--cache PATH] [--no-cache] [--quiet]
//! ```
//!
//! * `--deny`    — exit nonzero if any unsuppressed finding remains (CI mode).
//! * `--root`    — workspace root; defaults to walking up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` section.
//! * `--json`    — where to write the machine-readable report
//!   (default `ANALYSIS.json` under the workspace root).
//! * `--sarif`   — where to write the SARIF 2.1.0 report
//!   (default `ANALYSIS.sarif` under the workspace root).
//! * `--threads` — phase-one worker threads (default: available
//!   parallelism, capped at 8). The report is byte-identical at any value.
//! * `--cache`   — incremental cache file (default `ANALYSIS_CACHE.json`
//!   under the workspace root). Delete the file to force a cold run.
//! * `--no-cache`— disable the incremental cache entirely.
//! * `--quiet`   — suppress the ledger listing; findings still print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use glacsweb_analyze::{analyze_workspace_with, find_workspace_root, sarif, Options};

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut no_cache = false;
    let mut threads: Option<usize> = None;
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--no-cache" => no_cache = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--sarif" => sarif_path = args.next().map(PathBuf::from),
            "--cache" => cache_path = args.next().map(PathBuf::from),
            "--threads" => {
                threads = match args.next().as_deref().map(str::parse) {
                    Some(Ok(n)) => Some(n),
                    _ => {
                        eprintln!("--threads expects a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: glacsweb-analyze [--deny] [--root DIR] [--json PATH] \
                     [--sarif PATH] [--threads N] [--cache PATH] [--no-cache] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("glacsweb-analyze: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let opts = Options {
        threads: threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        }),
        cache_path: if no_cache {
            None
        } else {
            Some(cache_path.unwrap_or_else(|| root.join("ANALYSIS_CACHE.json")))
        },
    };

    let started = Instant::now();
    let (report, stats) = match analyze_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("glacsweb-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let json_path = json.unwrap_or_else(|| root.join("ANALYSIS.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("glacsweb-analyze: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    let sarif_path = sarif_path.unwrap_or_else(|| root.join("ANALYSIS.sarif"));
    if let Err(e) = std::fs::write(&sarif_path, sarif::to_sarif(&report)) {
        eprintln!("glacsweb-analyze: writing {}: {e}", sarif_path.display());
        return ExitCode::from(2);
    }

    let text = report.render_text();
    if quiet {
        // Findings and the summary line only.
        for line in text.lines() {
            if line.starts_with("error[")
                || line.trim_start().starts_with("-->")
                || line.starts_with("glacsweb-analyze:")
            {
                println!("{line}");
            }
        }
    } else {
        print!("{text}");
    }
    // The timing line CI greps to keep the incremental cache honest: a
    // warm run must report 0 re-analyzed files.
    println!(
        "glacsweb-analyze: re-analyzed {} of {} file(s) in {:.1} ms (threads: {}, cache: {})",
        stats.reanalyzed,
        stats.files_total,
        elapsed_ms,
        opts.threads,
        if opts.cache_path.is_some() {
            "on"
        } else {
            "off"
        },
    );

    if deny && report.unsuppressed().next().is_some() {
        eprintln!("glacsweb-analyze: failing (--deny) on unsuppressed findings");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
