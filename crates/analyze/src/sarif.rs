//! SARIF 2.1.0 emission (`ANALYSIS.sarif`).
//!
//! The minimal single-run document GitHub code scanning ingests: one
//! `run` whose driver lists every rule, and one `result` per finding.
//! Suppressed findings are still emitted — downgraded to `note` level
//! and carrying an `inSource` suppression object — so the ledger stays
//! reviewable from the code-scanning UI, while only unsuppressed
//! findings annotate at `error` level.

use crate::json::Jv;
use crate::report::Report;
use crate::rules::RuleId;

/// The SARIF version this emitter targets.
pub const SARIF_VERSION: &str = "2.1.0";

const SARIF_SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the normalized report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Jv> = RuleId::ALL
        .iter()
        .map(|r| {
            Jv::Obj(vec![
                ("id".into(), Jv::Str(r.name().to_string())),
                (
                    "shortDescription".into(),
                    Jv::Obj(vec![("text".into(), Jv::Str(r.description().to_string()))]),
                ),
                (
                    "defaultConfiguration".into(),
                    Jv::Obj(vec![("level".into(), Jv::Str("error".into()))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Jv> = report
        .findings
        .iter()
        .map(|f| {
            let mut result = vec![
                ("ruleId".into(), Jv::Str(f.rule.name().to_string())),
                (
                    "level".into(),
                    Jv::Str(if f.suppressed { "note" } else { "error" }.into()),
                ),
                (
                    "message".into(),
                    Jv::Obj(vec![("text".into(), Jv::Str(f.message.clone()))]),
                ),
                (
                    "locations".into(),
                    Jv::Arr(vec![Jv::Obj(vec![(
                        "physicalLocation".into(),
                        Jv::Obj(vec![
                            (
                                "artifactLocation".into(),
                                Jv::Obj(vec![
                                    ("uri".into(), Jv::Str(f.file.clone())),
                                    ("uriBaseId".into(), Jv::Str("SRCROOT".into())),
                                ]),
                            ),
                            (
                                "region".into(),
                                Jv::Obj(vec![("startLine".into(), Jv::Num(f.line.max(1) as f64))]),
                            ),
                        ]),
                    )])]),
                ),
            ];
            if f.suppressed {
                result.push((
                    "suppressions".into(),
                    Jv::Arr(vec![Jv::Obj(vec![(
                        "kind".into(),
                        Jv::Str("inSource".into()),
                    )])]),
                ));
            }
            Jv::Obj(result)
        })
        .collect();

    let run = Jv::Obj(vec![
        (
            "tool".into(),
            Jv::Obj(vec![(
                "driver".into(),
                Jv::Obj(vec![
                    ("name".into(), Jv::Str("glacsweb-analyze".into())),
                    (
                        "informationUri".into(),
                        Jv::Str("https://example.invalid/glacsweb".into()),
                    ),
                    ("rules".into(), Jv::Arr(rules)),
                ]),
            )]),
        ),
        (
            "originalUriBaseIds".into(),
            Jv::Obj(vec![(
                "SRCROOT".into(),
                Jv::Obj(vec![(
                    "uri".into(),
                    Jv::Str(format!("file://{}/", report.root)),
                )]),
            )]),
        ),
        ("results".into(), Jv::Arr(results)),
    ]);

    let mut doc = Jv::Obj(vec![
        ("$schema".into(), Jv::Str(SARIF_SCHEMA_URI.into())),
        ("version".into(), Jv::Str(SARIF_VERSION.into())),
        ("runs".into(), Jv::Arr(vec![run])),
    ])
    .emit();
    doc.push('\n');
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleId};

    fn sample_report() -> Report {
        let mut report = Report {
            root: "/ws".into(),
            files_scanned: 1,
            findings: vec![
                Finding {
                    rule: RuleId::SnapshotCoverage,
                    file: "crates/power/src/rail.rs".into(),
                    line: 92,
                    message: "field dropped".into(),
                    suppressed: false,
                },
                Finding {
                    rule: RuleId::PerfHygiene,
                    file: "crates/env/src/environment.rs".into(),
                    line: 70,
                    message: "clone in hot path".into(),
                    suppressed: true,
                },
            ],
            suppressions: Vec::new(),
        };
        report.normalize();
        report
    }

    #[test]
    fn sarif_parses_and_carries_all_findings() {
        let text = to_sarif(&sample_report());
        let doc = crate::json::parse(text.trim_end()).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Jv::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Jv::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Jv::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Jv::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), RuleId::ALL.len());
    }

    #[test]
    fn suppressed_findings_are_notes_with_suppression_objects() {
        let text = to_sarif(&sample_report());
        let doc = crate::json::parse(text.trim_end()).expect("valid JSON");
        let runs = doc.get("runs").and_then(Jv::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Jv::as_arr)
            .expect("results");
        let suppressed: Vec<&Jv> = results
            .iter()
            .filter(|r| r.get("suppressions").is_some())
            .collect();
        assert_eq!(suppressed.len(), 1);
        assert_eq!(
            suppressed[0].get("level").and_then(Jv::as_str),
            Some("note")
        );
        let live: Vec<&Jv> = results
            .iter()
            .filter(|r| r.get("suppressions").is_none())
            .collect();
        assert_eq!(live[0].get("level").and_then(Jv::as_str), Some("error"));
    }
}
