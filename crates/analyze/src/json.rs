//! A minimal JSON value, parser, and emitter for the incremental cache.
//!
//! The analyzer is dependency-free, so the cache file is read back with
//! this hand-rolled recursive-descent parser instead of serde_json. The
//! parser never panics: any malformed input returns `None`, which the
//! cache layer treats as a cold run. Objects keep insertion order so
//! emission is deterministic.

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Jv {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (the cache only stores integers that are f64-exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Jv>),
    /// An object, in insertion order.
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Jv::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Jv::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact, deterministic emission.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Jv::Null => out.push_str("null"),
            Jv::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Jv::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Jv::Str(s) => out.push_str(&escape(s)),
            Jv::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Jv::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document. `None` on any syntax error or
/// trailing garbage.
pub fn parse(src: &str) -> Option<Jv> {
    let bytes: Vec<char> = src.chars().collect();
    let mut p = Parser { c: &bytes, i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i == p.c.len() {
        Some(v)
    } else {
        None
    }
}

/// Nesting guard: the cache is a few levels deep; anything past this is
/// corrupt input, not data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    c: &'a [char],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.c.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, want: char) -> Option<()> {
        if self.c.get(self.i) == Some(&want) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, word: &str) -> Option<()> {
        for w in word.chars() {
            self.eat(w)?;
        }
        Some(())
    }

    fn value(&mut self, depth: usize) -> Option<Jv> {
        if depth > MAX_DEPTH {
            return None;
        }
        match *self.c.get(self.i)? {
            'n' => {
                self.lit("null")?;
                Some(Jv::Null)
            }
            't' => {
                self.lit("true")?;
                Some(Jv::Bool(true))
            }
            'f' => {
                self.lit("false")?;
                Some(Jv::Bool(false))
            }
            '"' => self.string().map(Jv::Str),
            '[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.c.get(self.i) == Some(&']') {
                    self.i += 1;
                    return Some(Jv::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.c.get(self.i)? {
                        ',' => self.i += 1,
                        ']' => {
                            self.i += 1;
                            return Some(Jv::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            '{' => {
                self.i += 1;
                let mut members = Vec::new();
                self.ws();
                if self.c.get(self.i) == Some(&'}') {
                    self.i += 1;
                    return Some(Jv::Obj(members));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(':')?;
                    self.ws();
                    members.push((key, self.value(depth + 1)?));
                    self.ws();
                    match self.c.get(self.i)? {
                        ',' => self.i += 1,
                        '}' => {
                            self.i += 1;
                            return Some(Jv::Obj(members));
                        }
                        _ => return None,
                    }
                }
            }
            c if c == '-' || c.is_ascii_digit() => self.number(),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let c = *self.c.get(self.i)?;
            self.i += 1;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let e = *self.c.get(self.i)?;
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = *self.c.get(self.i)?;
                                self.i += 1;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return None,
                    }
                }
                _ => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<Jv> {
        let start = self.i;
        if self.c.get(self.i) == Some(&'-') {
            self.i += 1;
        }
        while self
            .c
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.c[start..self.i].iter().collect();
        text.parse::<f64>().ok().map(Jv::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Jv::Obj(vec![
            ("schema".into(), Jv::Num(2.0)),
            (
                "files".into(),
                Jv::Arr(vec![Jv::Obj(vec![
                    ("rel".into(), Jv::Str("a/b.rs".into())),
                    ("ok".into(), Jv::Bool(true)),
                    ("note".into(), Jv::Null),
                    ("line".into(), Jv::Num(42.0)),
                ])]),
            ),
        ]);
        let text = v.emit();
        assert_eq!(parse(&text), Some(v));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" slash \\ newline \n tab \t unicode é";
        let v = Jv::Str(s.to_string());
        assert_eq!(parse(&v.emit()), Some(v));
    }

    #[test]
    fn malformed_inputs_return_none() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{}extra",
        ] {
            assert_eq!(parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep), None);
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, true, \"x\"]}").unwrap();
        let arr = v.get("a").and_then(Jv::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(v.get("b").is_none());
    }
}
