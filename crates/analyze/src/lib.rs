//! `glacsweb-analyze`: the workspace's own lint engine.
//!
//! The paper's core field lesson (§IV–§V) is that the deployed system
//! must never hang or die unrecoverably — the 2-hour hardware watchdog
//! and RTC-reset recovery exist because code review alone did not keep
//! the Gumsense nodes alive. This workspace has a second load-bearing
//! invariant on top: the sweep engine promises byte-identical output at
//! any thread count. Neither invariant is visible to `rustc`, so this
//! crate enforces both statically, plus the unit-math and crate-hygiene
//! rules that protect them at the edges. See [`rules`] for the rule
//! table and [`suppress`] for the inline ledger that is the only way to
//! silence a finding.
//!
//! The analyzer is deliberately dependency-free: it lexes Rust with its
//! own comment/string-aware tokenizer ([`lexer`]) rather than `syn`, and
//! writes `ANALYSIS.json` by hand ([`report`]), so it builds first and
//! fastest in the air-gapped CI image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

use std::fs;
use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{Finding, RuleId};
pub use suppress::Suppression;

/// Analyzes a single file's source text under its workspace-relative
/// path (the path determines which rules are in scope). This is the unit
/// the fixture tests drive.
pub fn analyze_source(rel: &str, source: &str) -> (Vec<Finding>, Vec<Suppression>) {
    let toks = lexer::lex(source);
    let (mask, test_ranges) = rules::test_mask(&toks);
    let mut findings = rules::check_tokens(rel, &toks, &mask);
    let (mut sups, malformed) = suppress::scan(rel, source, &test_ranges);
    findings.extend(malformed);
    let unused = suppress::apply(&mut findings, &mut sups);
    findings.extend(unused);
    (findings, sups)
}

/// Walks `crates/`, `src/`, `tests/`, and `examples/` under `root` and
/// analyzes every `.rs` file. `vendor/` and `target/` are never visited:
/// vendored third-party subsets are not held to project rules.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    // Deterministic reporting order regardless of directory-entry order —
    // the analyzer holds itself to its own determinism rule.
    files.sort();

    let mut findings = Vec::new();
    let mut suppressions = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let source = fs::read_to_string(path)?;
        let (f, s) = analyze_source(&rel, &source);
        findings.extend(f);
        suppressions.extend(s);
    }
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: files.len(),
        findings,
        suppressions,
    };
    report.normalize();
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root by walking up from `start` until a directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
