//! `glacsweb-analyze`: the workspace's own lint engine.
//!
//! The paper's core field lesson (§IV–§V) is that the deployed system
//! must never hang or die unrecoverably — the 2-hour hardware watchdog
//! and RTC-reset recovery exist because code review alone did not keep
//! the Gumsense nodes alive. This workspace has a second load-bearing
//! invariant on top: the sweep engine promises byte-identical output at
//! any thread count. Neither invariant is visible to `rustc`, so this
//! crate enforces both statically, plus the unit-math and crate-hygiene
//! rules that protect them at the edges. See [`rules`] for the rule
//! table and [`suppress`] for the inline ledger that is the only way to
//! silence a finding.
//!
//! Analysis runs in two phases. Phase one is per-file and embarrassingly
//! parallel: lex ([`lexer`]), token rules ([`rules`]), ledger scan
//! ([`suppress`]), item extraction ([`parser`]), and fact reduction
//! ([`semantic`]) — a pure function of one file's text, which is what the
//! incremental cache ([`cache`]) memoizes by content hash. Phase two is
//! single-threaded and deterministic: the per-file facts join into a
//! workspace item table, the semantic packs run, the ledger is matched,
//! and findings normalize into a stable order — so the report is
//! byte-identical at any thread count and on any warm/cold cache split.
//!
//! The analyzer is deliberately dependency-free: it lexes Rust with its
//! own comment/string-aware tokenizer rather than `syn`, and reads and
//! writes all of its JSON by hand ([`json`], [`report`], [`sarif`]), so
//! it builds first and fastest in the air-gapped CI image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod suppress;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

pub use report::Report;
pub use rules::{Finding, RuleId};
pub use suppress::Suppression;

use semantic::FileFacts;

/// The pristine result of phase-one analysis of one file: token-rule and
/// malformed-ledger findings (before suppression matching), the parsed
/// ledger entries (with `used` unset), and the semantic facts. This is
/// the unit the incremental cache stores.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Token-level and malformed-suppression findings.
    pub findings: Vec<Finding>,
    /// Parsed ledger entries.
    pub sups: Vec<Suppression>,
    /// Facts for the workspace-level semantic packs.
    pub facts: FileFacts,
}

/// Phase one: analyzes a single file's source text under its
/// workspace-relative path (the path determines which rules are in
/// scope). Pure in `(rel, source)` — cacheable and parallel-safe.
pub fn analyze_file(rel: &str, source: &str) -> FileAnalysis {
    let toks = lexer::lex(source);
    let (mask, test_ranges) = rules::test_mask(&toks);
    let mut findings = rules::check_tokens(rel, &toks, &mask);
    let (sups, malformed) = suppress::scan(rel, source, &test_ranges);
    findings.extend(malformed);
    let items = parser::parse_items(source, &toks, &mask);
    let facts = semantic::extract_facts(rel, &toks, &items);
    FileAnalysis {
        rel: rel.to_string(),
        findings,
        sups,
        facts,
    }
}

/// Phase two: joins per-file results into the final report — runs the
/// semantic packs over the combined fact table, matches the suppression
/// ledger (which can silence semantic findings too), reports stale
/// entries, and normalizes ordering.
fn finish(root_label: &str, mut files: Vec<FileAnalysis>) -> Report {
    let refs: Vec<&FileFacts> = files.iter().map(|f| &f.facts).collect();
    let semantic_findings = semantic::check(&refs);
    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in semantic_findings {
        by_file.entry(f.file.clone()).or_default().push(f);
    }

    let files_scanned = files.len();
    let mut findings = Vec::new();
    let mut suppressions = Vec::new();
    for fa in &mut files {
        let mut f = std::mem::take(&mut fa.findings);
        if let Some(extra) = by_file.remove(&fa.rel) {
            f.extend(extra);
        }
        let mut sups = std::mem::take(&mut fa.sups);
        let unused = suppress::apply(&mut f, &mut sups);
        f.extend(unused);
        findings.extend(f);
        suppressions.extend(sups);
    }
    // Semantic findings can only anchor in analyzed files, but never
    // drop a finding even if that invariant breaks.
    for (_, extra) in by_file {
        findings.extend(extra);
    }

    let mut report = Report {
        root: root_label.to_string(),
        files_scanned,
        findings,
        suppressions,
    };
    report.normalize();
    report
}

/// Analyzes a set of in-memory `(rel, source)` files as one workspace.
/// This is the unit the mutation tests drive: read the live sources,
/// apply a textual mutation, and re-run the full engine without touching
/// disk.
pub fn analyze_sources(root_label: &str, files: &[(String, String)]) -> Report {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(rel, source)| analyze_file(rel, source))
        .collect();
    finish(root_label, analyses)
}

/// Single-file compatibility wrapper over the full two-phase engine (the
/// semantic packs see just this one file's facts). This is the unit the
/// fixture tests drive.
pub fn analyze_source(rel: &str, source: &str) -> (Vec<Finding>, Vec<Suppression>) {
    let report = analyze_sources("", &[(rel.to_string(), source.to_string())]);
    (report.findings, report.suppressions)
}

/// Tuning knobs for a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Worker threads for phase one; `0` or `1` means serial.
    pub threads: usize,
    /// Incremental cache file; `None` disables caching.
    pub cache_path: Option<PathBuf>,
}

/// What a workspace run actually did, for the CLI's timing line and the
/// incremental-cache tests.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Total `.rs` files in scope.
    pub files_total: usize,
    /// Files analyzed this run (the rest were cache hits).
    pub reanalyzed: usize,
}

/// Walks `crates/`, `src/`, `tests/`, and `examples/` under `root` and
/// analyzes every `.rs` file, serially and without a cache. `vendor/`
/// and `target/` are never visited: vendored third-party subsets are not
/// held to project rules.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    analyze_workspace_with(root, &Options::default()).map(|(report, _)| report)
}

/// [`analyze_workspace`] with explicit parallelism and caching. The
/// report is byte-identical at any thread count and for any warm/cold
/// cache split; only wall time and [`RunStats`] vary.
pub fn analyze_workspace_with(root: &Path, opts: &Options) -> std::io::Result<(Report, RunStats)> {
    let sources = workspace_sources(root)?;

    let cached = opts
        .cache_path
        .as_deref()
        .map(cache::load)
        .unwrap_or_default();

    // Slot in cache hits; collect the misses as (slot, index) work items.
    let mut slots: Vec<Option<FileAnalysis>> = Vec::with_capacity(sources.len());
    let mut todo: Vec<usize> = Vec::new();
    let mut hashes: Vec<String> = Vec::with_capacity(sources.len());
    for (i, (rel, source)) in sources.iter().enumerate() {
        let hash = cache::hash_hex(source);
        match cached.get(rel) {
            Some((h, fa)) if *h == hash => slots.push(Some(fa.clone())),
            _ => {
                slots.push(None);
                todo.push(i);
            }
        }
        hashes.push(hash);
    }
    let stats = RunStats {
        files_total: sources.len(),
        reanalyzed: todo.len(),
    };

    let threads = opts.threads.max(1).min(todo.len().max(1));
    if threads <= 1 {
        for &i in &todo {
            let (rel, source) = &sources[i];
            slots[i] = Some(analyze_file(rel, source));
        }
    } else {
        // Deterministic parallelism, same idiom as the sweep engine: an
        // atomic work index hands out items, each worker keeps (slot,
        // result) pairs locally, and the merge is by slot — so the final
        // order never depends on scheduling.
        let next = AtomicUsize::new(0);
        let mut produced: Vec<(usize, FileAnalysis)> = Vec::with_capacity(todo.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                handles.push(scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = todo.get(k) else {
                            break;
                        };
                        let (rel, source) = &sources[i];
                        local.push((i, analyze_file(rel, source)));
                    }
                    local
                }));
            }
            for handle in handles {
                produced.extend(handle.join().unwrap_or_default());
            }
        });
        for (i, fa) in produced {
            slots[i] = Some(fa);
        }
        // A panicked worker (which analyze_file never does by design)
        // leaves holes; fill them serially rather than losing files.
        for &i in &todo {
            if slots[i].is_none() {
                let (rel, source) = &sources[i];
                slots[i] = Some(analyze_file(rel, source));
            }
        }
    }

    let files: Vec<FileAnalysis> = slots.into_iter().flatten().collect();

    if let Some(path) = opts.cache_path.as_deref() {
        let entries: Vec<(String, &FileAnalysis)> = files
            .iter()
            .enumerate()
            .map(|(i, fa)| (hashes[i].clone(), fa))
            .collect();
        // Best-effort: a cache that fails to write only costs the next
        // run its warm start.
        let _ = fs::write(path, cache::render(&entries));
    }

    let report = finish(&root.display().to_string(), files);
    Ok((report, stats))
}

/// Reads every in-scope `.rs` file under `root` as `(rel, source)`
/// pairs, sorted by path. This is the exact input set of a workspace
/// run; the mutation tests read it, patch one file in memory, and re-run
/// the engine via [`analyze_sources`].
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut paths)?;
    }
    // Deterministic reporting order regardless of directory-entry order —
    // the analyzer holds itself to its own determinism rule.
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = rel_path(root, path);
        let source = fs::read_to_string(path)?;
        sources.push((rel, source));
    }
    Ok(sources)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root by walking up from `start` until a directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
