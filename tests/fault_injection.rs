//! Fault-injection integration tests: every §VI lesson as a failure mode,
//! driven by declarative [`FaultPlan`] chaos schedules.

use glacsweb::{DeploymentBuilder, Fault, FaultPlan, FaultSpec, FaultTarget, Scenario};
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_probe::MortalityModel;
use glacsweb_sim::{Bytes, SimDuration, SimTime};
use glacsweb_station::{PowerState, StationConfig, StationId};

fn days(n: u64) -> SimDuration {
    SimDuration::from_days(n)
}

fn lab_with(plan: FaultPlan) -> glacsweb::Deployment {
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::ideal();
    let mut reference = StationConfig::reference_2008();
    reference.gprs = GprsConfig::ideal();
    DeploymentBuilder::new(EnvConfig::lab())
        .seed(5)
        .start(SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0))
        .base(base)
        .reference(reference)
        .probes(2)
        .fault_plan(plan)
        .build()
}

fn lab() -> glacsweb::Deployment {
    lab_with(FaultPlan::new())
}

#[test]
fn server_outage_falls_back_to_local_state() {
    // Southampton goes dark for a week, on schedule.
    let plan = FaultPlan::new().with(FaultSpec::new(
        Fault::ServerUnreachable,
        FaultTarget::Server,
        days(3),
        days(7),
    ));
    let mut d = lab_with(plan);
    d.run_days(13);

    // During the outage every window fell back to the local state
    // ("the system will just rely on its local state").
    let outage_start = SimTime::from_ymd_hms(2009, 6, 4, 0, 0, 0);
    let outage_end = SimTime::from_ymd_hms(2009, 6, 11, 0, 0, 0);
    let mut saw_outage_windows = false;
    for r in d.metrics().reports_for(StationId::Base) {
        if r.opened >= outage_start && r.opened < outage_end {
            saw_outage_windows = true;
            assert_eq!(r.override_state, None, "no override during the outage");
            assert_eq!(r.applied_state, r.local_state, "local fallback");
        }
    }
    assert!(saw_outage_windows);
    // Stations kept operating throughout.
    assert!(d.summary().windows_run >= 24);
    // The tracker saw the whole arc: activation, clearance, recovery.
    let recs = d.metrics().fault_records();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].label, "server_unreachable");
    assert!(recs[0].cleared.is_some(), "outage cleared on schedule");
    assert!(recs[0].mttr().is_some(), "healthy window after clearance");
}

#[test]
fn manual_override_cannot_force_state_zero() {
    let mut d = lab();
    d.run_days(2);
    d.server_mut()
        .states_mut()
        .set_manual_cap(Some(PowerState::S0));
    d.run_days(3);
    for r in d
        .metrics()
        .reports_for(StationId::Base)
        .filter(|r| r.override_state == Some(PowerState::S0))
    {
        assert!(
            r.applied_state >= PowerState::S1,
            "§III: never forced into a state with no communications"
        );
    }
    // And the station still uploads daily.
    let last = d
        .metrics()
        .reports_for(StationId::Base)
        .next_back()
        .expect("windows ran");
    assert!(last.gprs_enabled_in_report());
}

// Small extension trait so the test reads naturally.
trait ReportExt {
    fn gprs_enabled_in_report(&self) -> bool;
}

impl ReportExt for glacsweb_station::WindowReport {
    fn gprs_enabled_in_report(&self) -> bool {
        self.gprs_connected || self.applied_state.gprs_enabled()
    }
}

#[test]
fn rs232_fault_then_recovery_clears_backlog() {
    // The intermittent serial cable acts up for the first eight days.
    let plan = FaultPlan::new().with(FaultSpec::new(
        Fault::Rs232Fault,
        FaultTarget::Base,
        SimDuration::ZERO,
        days(8),
    ));
    let mut d = lab_with(plan);
    d.run_days(8);
    let stranded = d.base().expect("base").dgps().pending_files().len();
    assert!(stranded >= 90, "8 days × 12 readings stranded: {stranded}");
    d.run_days(8);
    assert!(
        d.base().expect("base").dgps().pending_files().len() < 15,
        "backlog drained file by file"
    );
    assert!(
        d.summary().windows_cut > 0,
        "the watchdog fired along the way"
    );
}

#[test]
fn probe_mortality_silences_probes_without_breaking_the_base() {
    // An aggressive mortality model: everything dies within weeks.
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::ideal();
    let mut d = DeploymentBuilder::new(EnvConfig::lab())
        .seed(6)
        .start(SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0))
        .base(base)
        .probes(5)
        .mortality(MortalityModel::new(10.0, 2.0)) // ~10-day lives
        .build();
    d.run_days(40);
    assert_eq!(d.probes_alive(), 0, "all probes vanish offline");
    assert!(!d.metrics().probe_deaths().is_empty());
    // The base station keeps running its windows regardless.
    let s = d.summary();
    assert!(s.windows_run >= 38);
    assert_eq!(s.power_losses, 0);
    // Readings collected before death made it home.
    assert!(s.probe_readings_received > 100);
}

#[test]
fn corrupted_code_update_is_never_installed() {
    let mut d = lab();
    // Stage an update whose advertised hash is wrong (corrupted at the
    // server end / in flight).
    d.server_mut()
        .desk_mut()
        .stage_update(StationId::Base, "control.py", b"new code".to_vec());
    // Tamper: restage with a mismatching payload by staging a second
    // update whose payload differs from its own hash is impossible through
    // the API (the desk hashes what it stores), so corrupt in flight
    // instead: run enough days that the 3 % in-flight corruption is
    // unlikely to matter, and verify every installed update's checksum
    // receipt matches what was staged.
    d.run_days(6);
    for (_, file, hex, matches) in d.server().desk().checksum_reports() {
        let applied = d
            .metrics()
            .reports_for(StationId::Base)
            .any(|r| r.update_applied.as_deref() == Some(file.as_str()));
        if applied {
            assert!(
                matches,
                "installed update must have a matching receipt: {file} {hex}"
            );
        }
    }
    // At least one receipt arrived (the §VI immediate GET).
    assert!(!d.server().desk().checksum_reports().is_empty());
}

#[test]
fn gprs_outage_buffers_data_locally() {
    // Field-grade GPRS with a terrible patch: no attach succeeds for days.
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig {
        setup_failure_p: 1.0,
        ..GprsConfig::field()
    };
    let mut d = DeploymentBuilder::new(EnvConfig::lab())
        .seed(7)
        .start(SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0))
        .base(base)
        .probes(1)
        .build();
    d.run_days(6);
    let s = d.summary();
    assert_eq!(
        s.data_uploaded,
        Bytes::ZERO,
        "nothing could leave the glacier"
    );
    let backlog = d.base().expect("base").store().backlog_bytes();
    assert!(
        backlog > Bytes::from_mib(5),
        "§I: 'the data is stored locally until it can be sent onwards' — {backlog}"
    );
}

#[test]
fn iceland_with_everything_fixed_still_survives_probe_aborts() {
    // The deployed scenario carries the protocol bug; the run must not
    // lose data permanently even when sessions abort.
    let mut d = Scenario::iceland_2008().build();
    d.run_until(SimTime::from_ymd_hms(2008, 9, 15, 0, 0, 0));
    let aborted_sessions = d
        .metrics()
        .window_reports()
        .iter()
        .filter(|r| r.probe_fetch_aborted)
        .count();
    let _ = aborted_sessions; // may be zero in a healthy august
    let s = d.summary();
    assert!(s.probe_readings_received > 1000);
}

/// The ISSUE acceptance plan: a week-long server outage, a GPRS blackout
/// and a card corruption in one schedule.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new()
        .with(FaultSpec::new(
            Fault::ServerUnreachable,
            FaultTarget::Server,
            days(4),
            days(7),
        ))
        .with(FaultSpec::new(
            Fault::GprsDegradation { severity: 60.0 },
            FaultTarget::Base,
            days(2),
            days(3),
        ))
        .with(FaultSpec::new(
            Fault::SdCorruption,
            FaultTarget::Base,
            days(13),
            SimDuration::ZERO,
        ))
}

fn acceptance_run() -> glacsweb::Deployment {
    // Field GPRS so the blackout severity has a failure rate to amplify.
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::field();
    let mut reference = StationConfig::reference_2008();
    reference.gprs = GprsConfig::ideal();
    let mut d = DeploymentBuilder::new(EnvConfig::lab())
        .seed(5)
        .start(SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0))
        .base(base)
        .reference(reference)
        .probes(2)
        .fault_plan(acceptance_plan())
        .build();
    d.run_days(20);
    d
}

#[test]
fn the_acceptance_chaos_plan_completes_and_records_mttr() {
    let d = acceptance_run();
    let s = d.summary();
    assert_eq!(s.faults_injected, 3, "{s}");
    assert!(s.faults_recovered >= 1, "recoveries measured: {s}");
    assert!(s.mean_mttr_hours > 0.0, "per-fault MTTR recorded: {s}");
    let recs = d.metrics().fault_records();
    assert_eq!(recs.len(), 3);
    assert!(
        recs.iter().all(|r| r.cleared.is_some()),
        "every fault cleared on schedule: {recs:?}"
    );
    // The system rode it out: windows kept running, data kept flowing.
    assert!(s.windows_run >= 38);
    assert!(s.data_uploaded > Bytes::ZERO);
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let a = serde_json::to_string(&acceptance_run().summary()).expect("serialize");
    let b = serde_json::to_string(&acceptance_run().summary()).expect("serialize");
    assert_eq!(a, b, "same seed + same plan -> byte-identical summaries");
}
