//! The full §V field narrative, end to end:
//!
//! "However there were lessons to be learnt about base station design due
//! to the large quantity of data they transmitted after months offline.
//! This was due to the base station being damaged by deep snow and the
//! failure of the wired probe. … With 3000 readings being sent in the
//! summer, across the weakest link (due to summer water) 400 missed
//! packets were common. Fetching that many individual readings was never
//! considered in the testing phase and the process could fail. Fortunately
//! the task was not marked as complete in the probes; so many missing
//! readings were obtained in subsequent days."

use glacsweb::DeploymentBuilder;
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::SimTime;
use glacsweb_station::{StationConfig, StationId};

#[test]
fn wired_probe_failure_builds_the_backlog_and_summer_recovers_it() {
    // Deployed-2008 firmware (with the individual-fetch bug), one probe,
    // Vatnajökull weather.
    let start = SimTime::from_ymd_hms(2009, 2, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::ideal(); // the story is about the probe link
    let mut d = DeploymentBuilder::new(EnvConfig::vatnajokull())
        .seed(5)
        .start(start)
        .base(base)
        .probes(1)
        .build();

    // Winter storm damage: the wired probe dies in February.
    d.base_mut().expect("base").set_wired_probe_ok(false);

    // Months pass; the probe keeps sampling hourly, unreachable.
    let repair_day = SimTime::from_ymd_hms(2009, 6, 10, 0, 0, 0);
    d.run_until(repair_day);
    let backlog = d.probes()[0].stored_readings();
    assert!(
        (2900..3400).contains(&backlog),
        "~4 months offline ≈ 3000 readings: {backlog}"
    );
    assert_eq!(
        d.summary().probe_readings_received,
        0,
        "nothing reached Southampton while the gateway was dead"
    );

    // The field team repairs the wired probe in June — wet summer ice.
    d.base_mut().expect("base").set_wired_probe_ok(true);
    let wetness = d.env().probe_packet_loss();
    assert!(
        wetness > 0.08,
        "summer water makes the weakest link: {wetness}"
    );

    // The big fetch: the deployed firmware's individual-fetch path fails
    // at least once on ~400 misses…
    d.run_days(1);
    let first_fetch = d
        .metrics()
        .reports_for(StationId::Base)
        .rfind(|r| r.opened >= repair_day)
        .expect("a window ran")
        .clone();
    // The per-window probe budget (25 min ≈ 1500 packets) means the big
    // fetch spans multiple windows — the real-world limitation §V hit.
    assert!(
        first_fetch.probe_readings > 1000,
        "first window moved a big chunk: {}",
        first_fetch.probe_readings
    );

    // …but over subsequent days everything arrives.
    d.run_days(12);
    let received = d.summary().probe_readings_received;
    assert!(
        received >= backlog,
        "all {backlog} stranded readings eventually home: {received}"
    );
    // Exactly-once: no duplicates in the warehouse.
    let series = d.server().warehouse().probe_series(21);
    let mut seqs: Vec<u64> = series.iter().map(|r| r.seq).collect();
    let n = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), n, "exactly-once delivery");

    // The §VI log lesson fired too: the probe's reappearance produced a
    // megabyte-scale debug dump that shipped with the daily logs.
    let (_, _, _, log_bytes) = d.server().warehouse().totals();
    assert!(
        log_bytes.value() > 500_000,
        "verbose reappearance logging cost real transfer: {log_bytes}"
    );
}

#[test]
fn aborted_sessions_leave_probe_state_intact() {
    // Direct check of the save: a deployed-firmware abort never confirms,
    // so the probe retains everything.
    let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::ideal();
    let mut d = DeploymentBuilder::new(EnvConfig::vatnajokull())
        .seed(6)
        .start(start)
        .base(base)
        .probes(1)
        .build();
    d.base_mut().expect("base").set_wired_probe_ok(false);
    d.run_days(130); // build ~3100 readings
    d.base_mut().expect("base").set_wired_probe_ok(true);
    d.run_days(1);
    let aborted = d
        .metrics()
        .reports_for(StationId::Base)
        .any(|r| r.probe_fetch_aborted);
    if aborted {
        // The probe must still hold the un-fetched tail.
        assert!(d.probes()[0].stored_readings() > 0);
    }
    // Either way, a week later the job is done.
    d.run_days(7);
    assert!(
        d.probes()[0].stored_readings() < 200,
        "buffer confirmed and freed"
    );
}
