//! The sweep engine's contract, checked end to end: every experiment
//! that fans out over `glacsweb_sweep::run_cells` produces the *same*
//! result at one worker thread and at four, for the same seed.
//!
//! `fig5`/`fig6` are single-seed single-run experiments and never touch
//! the engine, so they have nothing to check here.

use glacsweb::experiments as exp;
use glacsweb_sweep::with_threads;

/// Runs `f` serially and on four workers and asserts bit equality.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let serial = with_threads(1, &f);
    let parallel = with_threads(4, &f);
    assert_eq!(serial, parallel, "results must not depend on thread count");
}

#[test]
fn chaos_levels_are_thread_invariant() {
    assert_thread_invariant(|| exp::chaos::run(7));
}

#[test]
fn survival_cohorts_are_thread_invariant() {
    assert_thread_invariant(|| exp::survival::run(7, 1000));
}

#[test]
fn survival_is_also_chunking_invariant() {
    // 600 cohorts span two 256-cell blocks plus a partial tail; the
    // merged tallies must match a differently-threaded run exactly.
    let a = with_threads(1, || exp::survival::run(3, 600));
    let b = with_threads(3, || exp::survival::run(3, 600));
    assert_eq!(a, b);
}

#[test]
fn ablation_arms_are_thread_invariant() {
    assert_thread_invariant(|| exp::ablation::run(7));
}

#[test]
fn retrieval_variants_are_thread_invariant() {
    assert_thread_invariant(|| exp::retrieval::run(7));
}

#[test]
fn sites_are_thread_invariant() {
    assert_thread_invariant(|| exp::sites::run(7));
}

#[test]
fn architecture_designs_are_thread_invariant() {
    assert_thread_invariant(|| exp::architecture::run(7));
}

#[test]
fn depletion_simulations_are_thread_invariant() {
    // Depletion carries a deliberate NaN (the paper quotes no state-2
    // figure), and NaN != NaN; the rendered text is the comparable form.
    assert_thread_invariant(|| exp::depletion::run().render());
}

#[test]
fn backlog_simulations_are_thread_invariant() {
    assert_thread_invariant(|| exp::backlog::run(7));
}

#[test]
fn rendered_blocks_are_byte_identical() {
    // Stronger than struct equality for the text pipeline: the rendered
    // output (what the experiments binary prints) matches byte for byte.
    let serial = with_threads(1, || exp::chaos::run(11).render());
    let parallel = with_threads(4, || exp::chaos::run(11).render());
    assert_eq!(serial, parallel);
}
