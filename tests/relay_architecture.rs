//! The §II architecture decision, end to end: the same base station run
//! with its own GPRS modem versus relaying through the reference station
//! over the 466 MHz PPP link.
//!
//! "One advantage of the separation of the systems in this way is that
//! they become independent. This independence means that the failure of
//! one will not adversely affect the other whereas using the previous
//! scheme if the reference station failed in any way then all
//! communication with the base station would also cease."

use glacsweb::{DeploymentBuilder, Scenario};
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::{AmpHours, SimTime};
use glacsweb_station::{CommsPath, StationConfig};

#[test]
fn relay_architecture_delivers_data_while_the_partner_lives() {
    let mut d = Scenario::iceland_relay_architecture().build();
    d.run_days(20);
    let s = d.summary();
    // Data still gets home over the relay — slower link, more drops, but
    // the file-by-file machinery is identical.
    assert!(
        s.probe_readings_received > 1_000,
        "readings {}",
        s.probe_readings_received
    );
    assert!(s.data_uploaded.value() > 0);
    // The radio modem, not the GPRS modem, carries the base's bytes.
    let base = d.base().expect("base");
    let radio_wh = base.rail().loads().energy("radio_modem").expect("metered");
    let gprs_wh = base.rail().loads().energy("gprs").expect("metered");
    assert!(radio_wh.value() > 0.5, "radio modem worked: {radio_wh}");
    assert_eq!(
        gprs_wh.value(),
        0.0,
        "the base has no GPRS in this architecture"
    );
}

#[test]
fn reference_failure_silences_a_relay_base_but_not_a_gprs_base() {
    let run = |comms: CommsPath| {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut base = StationConfig::base_2008();
        base.comms = comms;
        base.gprs = GprsConfig::ideal();
        // A reference station doomed to die quickly: tiny bank, no
        // chargers.
        let mut reference = StationConfig::reference_2008();
        reference.battery = AmpHours(1.0);
        reference.initial_soc = 0.3;
        reference.solar = None;
        reference.mains = None;
        let mut d = DeploymentBuilder::new(EnvConfig::lab())
            .seed(9)
            .start(start)
            .base(base)
            .reference(reference)
            .probes(1)
            .build();
        d.run_days(45);
        d
    };

    let gprs = run(CommsPath::DualGprs);
    let relay = run(CommsPath::RelayViaReference);

    // The reference dies in both runs.
    assert!(gprs.reference().expect("ref").power_losses() >= 1);
    assert!(relay.reference().expect("ref").power_losses() >= 1);

    // Dual GPRS: the base barely notices.
    let gprs_delivered = gprs.summary().probe_readings_received;
    assert!(
        gprs_delivered > 500,
        "independent base keeps delivering: {gprs_delivered}"
    );

    // Relay: deliveries stop when the partner dies; the data waits on the
    // glacier.
    let relay_delivered = relay.summary().probe_readings_received;
    assert!(
        relay_delivered < gprs_delivered / 2,
        "coupled base mostly silenced: {relay_delivered} vs {gprs_delivered}"
    );
    let stranded = relay.base().expect("base").store().backlog_bytes();
    assert!(stranded.value() > 0, "data buffered locally, §I-style");
}

#[test]
fn relay_costs_more_modem_energy_for_the_same_payload() {
    // Same site, same window of days, both architectures healthy.
    let run = |comms: CommsPath| {
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut base = StationConfig::base_2008();
        base.comms = comms;
        base.gprs = GprsConfig::field();
        let mut d = DeploymentBuilder::new(EnvConfig::lab())
            .seed(10)
            .start(start)
            .base(base)
            .reference(StationConfig::reference_2008())
            .probes(1)
            .build();
        d.run_days(15);
        d
    };
    let gprs = run(CommsPath::DualGprs);
    let relay = run(CommsPath::RelayViaReference);
    let gprs_wh = gprs
        .base()
        .expect("base")
        .rail()
        .loads()
        .energy("gprs")
        .expect("metered")
        .value();
    let radio_wh = relay
        .base()
        .expect("base")
        .rail()
        .loads()
        .energy("radio_modem")
        .expect("metered")
        .value();
    assert!(
        radio_wh > 1.5 * gprs_wh,
        "the 3.96 W / 2000 bps relay burns more than the 2.64 W / 5000 bps modem: {radio_wh} vs {gprs_wh}"
    );
}
