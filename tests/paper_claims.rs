//! The paper's headline claims, asserted end to end.
//!
//! Each test names the claim, quotes the paper, and checks the reproduced
//! number/shape. These are the same checks EXPERIMENTS.md records.

use glacsweb::experiments as exp;

#[test]
fn table1_component_characteristics() {
    // "TABLE I. CHARACTERISTICS OF SYSTEM COMPONENTS"
    let t = exp::table1::run();
    assert!(t.max_relative_error() < 0.01);
}

#[test]
fn table2_power_states() {
    // "TABLE II. POWER STATES" — thresholds 12.5/12.0/11.5 V,
    // GPS 12/1/0/0 per day, GPRS gated only in state 0.
    let t = exp::table2::run();
    assert_eq!(t.rows[0].gps_per_day, 12);
    assert_eq!(t.rows[1].gps_per_day, 1);
    assert!(!t.rows[3].gprs);
}

#[test]
fn fig5_voltage_and_state_trace() {
    // "regular dips in the battery voltage can be seen, these dips have
    // an interval of 2 hours" + "the highest voltage for the day is
    // reached at approximately midday".
    let f = exp::fig5::run(2009);
    assert!((1.7..=2.3).contains(&f.mean_dip_interval_hours));
    assert!(
        f.midday_night_delta_v > 0.02,
        "solar charging peaks in daytime"
    );
}

#[test]
fn fig6_conductivity_rise() {
    // "The electrical conductivity increases show that melt-water is
    // starting to reach the glacier bed."
    let f = exp::fig6::run(2009);
    for p in &f.probes {
        assert!(p.spring_mean_us > p.winter_mean_us + 1.0);
    }
}

#[test]
fn five_day_versus_117_day_depletion() {
    // "the GPS device uses 3.6W … would deplete 36AH of batteries in 5
    // days, where as in state 3 … 117 days".
    let d = exp::depletion::run();
    assert!((d.continuous.analytic_days - 5.0).abs() < 0.05);
    assert!((d.state3.analytic_days - 117.0).abs() < 1.0);
}

#[test]
fn backlog_bounds_21_and_259_days() {
    // "the GPS has not been successfully downloaded for approximately 21
    // days whilst in state 3 or 259 days in state 2".
    let b = exp::backlog::run(1);
    assert!((b.state3_overflow_days - 21.0).abs() < 1.5);
    assert!((b.state2_overflow_days - 259.0).abs() < 10.0);
}

#[test]
fn four_hundred_missed_packets() {
    // "With 3000 readings being sent in the summer … 400 missed packets
    // were common."
    let r = exp::retrieval::run(2009);
    assert!(
        (300..=520).contains(&r.fixed.missed_day1),
        "{}",
        r.fixed.missed_day1
    );
    // "the process could fail" — deployed firmware aborts…
    assert!(r.deployed.aborted);
    // "…so many missing readings were obtained in subsequent days."
    assert_eq!(r.deployed.delivered, 3000);
}

#[test]
fn probe_survival_4_of_7() {
    // "(4/7 after one year) … data is being produced by two after 18
    // months under the ice."
    let s = exp::survival::run(2009, 2000);
    assert!((s.mean_alive_1y - 4.0).abs() < 0.2);
    assert!((s.mean_alive_18mo - 2.0).abs() < 0.2);
}

#[test]
fn twofold_power_saving() {
    // "a twofold power saving can be made".
    let a = exp::architecture::run(2009);
    assert!(a.whole_system_factor >= 1.5, "{}", a.whole_system_factor);
    assert!(a.power_saving_factor >= 2.0);
}

#[test]
fn independence_under_partner_failure() {
    // "the failure of one will not adversely affect the other".
    let a = exp::architecture::run(2009);
    assert!(a.relay.loss_during_partner_outage > 0.99);
    assert!(a.dual_gprs.loss_during_partner_outage < 0.3);
}

#[test]
fn schedule_reset_after_power_loss() {
    // §IV: detect the 1970 RTC, re-sync from GPS, restart in state 0.
    let r = exp::recovery::run(2009);
    assert!(r.power_losses >= 1 && r.recoveries >= 1);
    assert_eq!(r.state_after_recovery, Some(0));
}

#[test]
fn special_command_ordering_lesson() {
    // §VI: upload-before-special plus the watchdog starves remote code
    // under a backlog; the proposed fix runs it promptly.
    let o = exp::ordering::run(2009);
    let before = o
        .special_before_upload
        .days_until_executed
        .expect("fix runs");
    assert!(before <= 2);
    match o.special_after_upload.days_until_executed {
        None => {}
        Some(after) => assert!(after > before),
    }
}
