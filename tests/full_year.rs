//! A full year on the glacier — the paper's actual deployment span
//! (summer 2008 → autumn 2009, "the system is still running successfully
//! in October").
//!
//! Debug builds skip this test (it simulates ~440 days of half-hourly
//! events); `cargo test --release` runs it.

use glacsweb::Scenario;
use glacsweb_sim::SimTime;
use glacsweb_station::StationId;

#[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
#[test]
fn one_year_on_vatnajokull() {
    let mut d = Scenario::iceland_2008().build();
    // August 2008 → October 2009, like the paper.
    d.run_until(SimTime::from_ymd_hms(2009, 10, 1, 0, 0, 0));
    let s = d.summary();

    // "data has been continuously received": windows ran nearly every day
    // on both stations for ~412 days.
    assert!(s.windows_run > 750, "windows {}", s.windows_run);
    assert_eq!(s.power_losses, 0, "the power design survives the winter");
    assert_eq!(s.recoveries, 0, "no exhaustion, no recovery needed");

    // §V probe survival: with the calibrated mortality, expect a 2008-like
    // outcome (the field saw 4/7; accept the distribution's bulk).
    assert!(
        (2..=6).contains(&s.probes_alive),
        "{}/7 probes alive after ~13.5 months",
        s.probes_alive
    );
    assert!(!d.metrics().probe_deaths().is_empty(), "some probes died");

    // Data products: a year of probe readings and dGPS fixes.
    assert!(
        s.probe_readings_received > 20_000,
        "readings {}",
        s.probe_readings_received
    );
    assert!(s.dgps_fixes > 1_500, "fixes {}", s.dgps_fixes);
    assert!(s.dgps_pairing_yield > 0.6, "yield {}", s.dgps_pairing_yield);

    // Seasonal behaviour: mean applied state by month descends into winter
    // and recovers by summer.
    let mean_state = |y: i32, m: u32| {
        let from = SimTime::from_ymd_hms(y, m, 1, 0, 0, 0);
        let to = SimTime::from_ymd_hms(y, m, 28, 0, 0, 0);
        let states: Vec<f64> = d
            .metrics()
            .reports_for(StationId::Base)
            .filter(|r| r.opened >= from && r.opened < to)
            .map(|r| f64::from(r.applied_state.level()))
            .collect();
        states.iter().sum::<f64>() / states.len().max(1) as f64
    };
    let september = mean_state(2008, 9);
    let january = mean_state(2009, 1);
    let july = mean_state(2009, 7);
    assert!(september > 2.5, "autumn runs high: {september}");
    assert!(
        january < september,
        "winter backs off: {january} < {september}"
    );
    assert!(july > january, "summer recovers: {july} > {january}");

    // The GPRS bill for the year is substantial but finite — the §II cost
    // concern. ~1.9 MiB/day of state-3 data at 4 units/MiB.
    assert!(s.gprs_cost > 100.0);
    assert!(s.gprs_cost < 10_000.0);

    // The dashboard reflects a living system.
    let page = d.server().dashboard();
    assert!(page.contains("Base: last reported"));
    assert!(page.contains("pairing yield"));
}
