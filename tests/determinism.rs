//! Reproducibility: identical seeds must replay identical deployments —
//! the property that makes the experiment numbers in EXPERIMENTS.md
//! stable and debuggable.

use glacsweb::Scenario;
use glacsweb_station::StationId;

#[test]
fn iceland_replays_bit_identically() {
    let run = || {
        let mut d = Scenario::iceland_2008().build();
        d.run_days(25);
        d
    };
    let a = run();
    let b = run();

    assert_eq!(a.summary(), b.summary());

    // Window-report streams match exactly.
    let ra: Vec<_> = a.metrics().window_reports().to_vec();
    let rb: Vec<_> = b.metrics().window_reports().to_vec();
    assert_eq!(ra, rb);

    // Voltage traces match sample for sample.
    for id in [StationId::Base, StationId::Reference] {
        let va: Vec<_> = a
            .metrics()
            .voltage_series(id)
            .expect("series")
            .iter()
            .collect();
        let vb: Vec<_> = b
            .metrics()
            .voltage_series(id)
            .expect("series")
            .iter()
            .collect();
        assert_eq!(va, vb, "{id:?} voltage trace");
    }

    // The warehouses agree.
    assert_eq!(
        a.server().warehouse().differential_fixes(),
        b.server().warehouse().differential_fixes()
    );
}

#[test]
fn different_seeds_produce_different_weather() {
    let mut a = Scenario::iceland_2008().build();
    let mut b = Scenario::iceland_2008().seed(999).build();
    a.run_days(20);
    b.run_days(20);
    let va: Vec<_> = a
        .metrics()
        .voltage_series(StationId::Base)
        .expect("series")
        .iter()
        .map(|(_, v)| v)
        .collect();
    let vb: Vec<_> = b
        .metrics()
        .voltage_series(StationId::Base)
        .expect("series")
        .iter()
        .map(|(_, v)| v)
        .collect();
    assert_ne!(va, vb, "weather should differ across seeds");
}

#[test]
fn experiment_results_are_reproducible() {
    use glacsweb::experiments::{backlog, retrieval, survival};
    assert_eq!(retrieval::run(7), retrieval::run(7));
    assert_eq!(survival::run(3, 200), survival::run(3, 200));
    assert_eq!(backlog::run(1), backlog::run(1));
}
