//! Fig 4 — "Flowchart showing system operation" — asserted step by step.
//!
//! The paper's flowchart for a base station is:
//!
//! > Start → (Basestation?) Get sub-glacial probe data → Get readings from
//! > MSP → Calculate local power state → (state 0? stop) → (state > 1) Get
//! > GPS files → Package data to be sent → Upload power state → Upload
//! > data → Get override power state → Get special → (exists?) Execute →
//! > Stop
//!
//! `WindowReport::steps` records the executed sequence; these tests pin it
//! against the figure for the deployed ordering, and against the §VI
//! proposed fix for the corrected ordering.

use glacsweb::DeploymentBuilder;
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::SimTime;
use glacsweb_station::{ControllerConfig, StationConfig, StationId};

fn run_one_window(controller: ControllerConfig, role_base: bool, soc: f64) -> Vec<String> {
    let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let mut config = if role_base {
        StationConfig::base_2008()
    } else {
        StationConfig::reference_2008()
    };
    config.gprs = GprsConfig::ideal();
    config.controller = controller;
    config.initial_soc = soc;
    if soc < 0.2 {
        config.solar = None;
        config.wind = None;
        config.mains = None;
    }
    let mut builder = DeploymentBuilder::new(EnvConfig::lab())
        .seed(3)
        .start(start);
    let id = config.id;
    builder = if role_base {
        builder.base(config).probes(1)
    } else {
        builder.reference(config)
    };
    let mut d = builder.build();
    d.run_days(1);
    let steps = d
        .metrics()
        .reports_for(id)
        .next()
        .expect("window ran")
        .steps
        .clone();
    steps
}

#[test]
fn deployed_base_station_follows_fig4_exactly() {
    let steps = run_one_window(ControllerConfig::deployed_2008(), true, 1.0);
    assert_eq!(
        steps,
        [
            "probe_jobs",            // Basestation? → Get sub-glacial probe data
            "msp_readings",          // Get readings from MSP
            "calculate_power_state", // Calculate local power state
            "get_gps_files",         // Power state > 1 → Get GPS files
            "package_data",          // Package data to be sent
            "connect_gprs",
            "upload_power_state", // Upload power state
            "upload_data",        // Upload data
            "get_override_state", // Get override power state
            "get_special",        // Get special → execute
            "check_updates",
            "write_schedule",
        ]
        .map(String::from)
        .to_vec(),
        "the deployed ordering is Fig 4's"
    );
}

#[test]
fn reference_station_skips_probe_jobs() {
    // Fig 4's first diamond: "Basestation?" — the reference station goes
    // straight to the MSP readings.
    let steps = run_one_window(ControllerConfig::deployed_2008(), false, 1.0);
    assert!(!steps.contains(&"probe_jobs".to_string()));
    assert_eq!(steps[0], "msp_readings");
}

#[test]
fn lessons_learnt_moves_special_before_upload() {
    let steps = run_one_window(ControllerConfig::lessons_learnt(), true, 1.0);
    let pos = |name: &str| {
        steps
            .iter()
            .position(|s| s == name)
            .unwrap_or_else(|| panic!("{name} missing from {steps:?}"))
    };
    assert!(
        pos("get_special") < pos("upload_data"),
        "§VI fix: remote code before the transfer: {steps:?}"
    );
    assert!(pos("upload_power_state") < pos("upload_data"));
    assert!(pos("get_override_state") > pos("upload_data"));
}

#[test]
fn state_zero_stops_after_the_power_state_diamond() {
    // Fig 4: "Power state = 0 → Stop" before any GPS or GPRS step.
    let steps = run_one_window(ControllerConfig::deployed_2008(), true, 0.05);
    assert!(steps.contains(&"calculate_power_state".to_string()));
    for forbidden in [
        "get_gps_files",
        "connect_gprs",
        "upload_data",
        "get_special",
    ] {
        assert!(
            !steps.contains(&forbidden.to_string()),
            "state 0 must not reach {forbidden}: {steps:?}"
        );
    }
}

#[test]
fn state_one_skips_gps_but_keeps_gprs() {
    // Fig 4: "Power state > 1 → Get GPS files" — state 1 bypasses the GPS
    // branch yet still communicates.
    let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let mut config = StationConfig::base_2008();
    config.gprs = GprsConfig::ideal();
    config.initial_soc = 0.2; // daily average lands in state 1
    config.solar = None;
    config.wind = None;
    let mut d = DeploymentBuilder::new(EnvConfig::lab())
        .seed(3)
        .start(start)
        .base(config)
        .build();
    d.run_days(1);
    let report = d
        .metrics()
        .reports_for(StationId::Base)
        .next()
        .expect("window ran");
    assert_eq!(report.local_state.level(), 1, "setup puts us in state 1");
    assert!(!report.steps.contains(&"get_gps_files".to_string()));
    assert!(report.steps.contains(&"upload_data".to_string()));
}
