//! Property tests for the two pieces of machinery every fault-recovery
//! path leans on: the §VI two-hour watchdog (`cap`/`remaining`) and the
//! retry policy's exponential backoff bounds.

use proptest::prelude::*;

use glacsweb_faults::RetryPolicy;
use glacsweb_hw::Watchdog;
use glacsweb_sim::{SimDuration, SimRng, SimTime};

fn armed(limit_secs: u64) -> Watchdog {
    let start = SimTime::from_ymd_hms(2009, 6, 1, 12, 0, 0);
    Watchdog::start(start, SimDuration::from_secs(limit_secs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `cap` never hands out more than the caller asked for, never more
    /// than is left before the deadline, and never pushes past it.
    #[test]
    fn watchdog_cap_never_exceeds_want_or_remaining(
        limit_secs in 1u64..14_400,
        offset_secs in 0u64..20_000,
        want_secs in 0u64..20_000,
    ) {
        let wd = armed(limit_secs);
        let now = wd.started() + SimDuration::from_secs(offset_secs);
        let want = SimDuration::from_secs(want_secs);
        let capped = wd.cap(now, want);
        prop_assert!(capped <= want);
        prop_assert!(capped <= wd.remaining(now));
        prop_assert!(now + capped <= wd.deadline().max(now));
    }

    /// `remaining` only counts down as time advances, and hits zero
    /// exactly when the watchdog reports expiry.
    #[test]
    fn watchdog_remaining_is_monotone_and_agrees_with_expiry(
        limit_secs in 1u64..14_400,
        a_secs in 0u64..20_000,
        b_secs in 0u64..20_000,
    ) {
        let wd = armed(limit_secs);
        let (early, late) = (a_secs.min(b_secs), a_secs.max(b_secs));
        let t_early = wd.started() + SimDuration::from_secs(early);
        let t_late = wd.started() + SimDuration::from_secs(late);
        prop_assert!(wd.remaining(t_early) >= wd.remaining(t_late));
        for t in [t_early, t_late] {
            prop_assert_eq!(
                wd.expired(t),
                wd.remaining(t) == SimDuration::ZERO,
                "expiry and zero-remaining must coincide at {}", t
            );
        }
    }

    /// The nominal backoff ladder: nothing before the first try, then
    /// non-decreasing waits that never exceed the cap.
    #[test]
    fn backoff_is_zero_then_monotone_then_capped(
        base_secs in 0u64..600,
        extra_cap_secs in 0u64..3_600,
        multiplier in 1.0f64..8.0,
        attempt in 0u32..40,
    ) {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_secs(base_secs),
            multiplier,
            max_backoff: SimDuration::from_secs(base_secs + extra_cap_secs),
            jitter: 0.0,
        };
        p.validate().expect("generated policies are valid");
        prop_assert_eq!(p.backoff(0), SimDuration::ZERO);
        prop_assert!(p.backoff(attempt) <= p.max_backoff);
        prop_assert!(p.backoff(attempt + 1) >= p.backoff(attempt));
    }

    /// Jitter spreads a wait around its nominal value but can neither
    /// escape the ±jitter band nor exceed the policy cap.
    #[test]
    fn jittered_backoff_stays_in_band_and_under_the_cap(
        base_secs in 1u64..600,
        extra_cap_secs in 0u64..3_600,
        multiplier in 1.0f64..8.0,
        jitter in 0.0f64..1.0,
        attempt in 1u32..20,
        seed in 0u64..1_000,
    ) {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_secs(base_secs),
            multiplier,
            max_backoff: SimDuration::from_secs(base_secs + extra_cap_secs),
            jitter,
        };
        p.validate().expect("generated policies are valid");
        let mut rng = SimRng::seed_from(seed);
        let nominal = p.backoff(attempt).as_secs() as f64;
        for _ in 0..8 {
            let j = p.backoff_jittered(attempt, &mut rng).as_secs() as f64;
            // ±1 s slack for the f64→whole-seconds rounding.
            prop_assert!(j <= p.max_backoff.as_secs() as f64 + 1.0);
            prop_assert!(j >= nominal * (1.0 - jitter) - 1.0, "{} below band {}", j, nominal);
            prop_assert!(j <= nominal * (1.0 + jitter) + 1.0, "{} above band {}", j, nominal);
        }
    }
}
