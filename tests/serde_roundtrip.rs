//! Serialisation round-trips for everything a field operator would
//! persist or ship: configurations, schedules, reports and experiment
//! results. The real system stored configuration on flash and shipped
//! structured records to Southampton; snapshot-ability is part of the
//! public contract.

use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_probe::{MortalityModel, ProtocolConfig};
use glacsweb_sim::{SimDuration, SimTime};
use glacsweb_station::{
    ControllerConfig, PolicyTable, PowerState, Schedule, StationConfig, UploadItem,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn env_configs_round_trip() {
    for config in [
        EnvConfig::vatnajokull(),
        EnvConfig::briksdalsbreen(),
        EnvConfig::lab(),
    ] {
        assert_eq!(round_trip(&config), config);
    }
}

#[test]
fn station_configs_round_trip() {
    for config in [StationConfig::base_2008(), StationConfig::reference_2008()] {
        assert_eq!(round_trip(&config), config);
    }
}

#[test]
fn controller_and_protocol_configs_round_trip() {
    for config in [
        ControllerConfig::deployed_2008(),
        ControllerConfig::lessons_learnt(),
        ControllerConfig::with_priority_data(),
    ] {
        assert_eq!(round_trip(&config), config);
    }
    for config in [ProtocolConfig::deployed_2008(), ProtocolConfig::fixed()] {
        assert_eq!(round_trip(&config), config);
    }
    assert_eq!(round_trip(&GprsConfig::field()), GprsConfig::field());
    assert_eq!(round_trip(&PolicyTable::paper()), PolicyTable::paper());
    assert_eq!(
        round_trip(&MortalityModel::paper_2008()),
        MortalityModel::paper_2008()
    );
}

#[test]
fn schedule_and_states_round_trip() {
    for state in PowerState::ALL {
        assert_eq!(round_trip(&state), state);
        let schedule = Schedule::standard(state);
        assert_eq!(round_trip(&schedule), schedule);
    }
}

#[test]
fn window_reports_round_trip() {
    // Run a real window and snapshot its report.
    let mut d = glacsweb::Scenario::lab_bringup().build();
    d.run_days(2);
    for report in d.metrics().window_reports() {
        assert_eq!(&round_trip(report), report);
    }
    assert!(!d.metrics().window_reports().is_empty());
}

#[test]
fn upload_items_round_trip_through_the_wire_format() {
    let item = UploadItem::GpsFile {
        taken_at: SimTime::from_ymd_hms(2009, 9, 22, 0, 30, 0),
        observed_position_m: 12.5,
        size: glacsweb_sim::Bytes::from_kib(165),
    };
    assert_eq!(round_trip(&item), item);
}

#[test]
fn experiment_results_serialize_for_the_json_dump() {
    // The `experiments --json` flag relies on every result serialising.
    let t1 = glacsweb::experiments::table1::run();
    let json = serde_json::to_string_pretty(&t1).expect("table1");
    assert!(json.contains("Gumstix"));

    let t2 = glacsweb::experiments::table2::run();
    let back: glacsweb::experiments::table2::Table2 =
        serde_json::from_str(&serde_json::to_string(&t2).expect("ser")).expect("de");
    assert_eq!(back, t2);

    let s = glacsweb::experiments::survival::run(1, 50);
    let back: glacsweb::experiments::survival::Survival =
        serde_json::from_str(&serde_json::to_string(&s).expect("ser")).expect("de");
    assert_eq!(back, s);
}

#[test]
fn sim_time_serialises_compactly() {
    let t = SimTime::from_ymd_hms(2009, 9, 22, 12, 0, 0);
    let json = serde_json::to_string(&t).expect("serialize");
    // A bare integer — cheap to ship over a paid-per-MB link.
    assert_eq!(json, t.unix().to_string());
    let d = SimDuration::from_hours(2);
    assert_eq!(serde_json::to_string(&d).expect("serialize"), "7200");
}

/// Property round-trips through the *binary snapshot codec* — the path a
/// checkpoint actually takes to disk. JSON tolerates float re-formatting;
/// the snapshot format must not, so these assert on bits, sequence
/// numbers and cache keys, not just `PartialEq`.
mod snapshot_fidelity {
    use glacsweb::Deployment;
    use glacsweb_env::{EnvConfig, Environment};
    use glacsweb_sim::{EventWheel, SimDuration, SimRng, SimTime};
    use proptest::prelude::*;

    /// One trip through the snapshot wire format.
    fn snap_round_trip<T>(value: &T) -> T
    where
        T: serde::Serialize + serde::Deserialize,
    {
        let bytes = glacsweb_snapshot::to_bytes(value);
        glacsweb_snapshot::from_bytes(&bytes).expect("decode")
    }

    /// Encode → decode → encode must be byte-stable: a second checkpoint
    /// of an untouched restore is the same file.
    fn assert_bytes_stable<T>(value: &T)
    where
        T: serde::Serialize + serde::Deserialize,
    {
        let first = glacsweb_snapshot::to_bytes(value);
        let back: T = glacsweb_snapshot::from_bytes(&first).expect("decode");
        let second = glacsweb_snapshot::to_bytes(&back);
        assert_eq!(first, second, "snapshot bytes must be stable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A mid-stream RNG keeps its exact counter position: the clone
        /// resumed from a snapshot produces the same raw stream, bit for
        /// bit, and reports the same `position()`.
        #[test]
        fn sim_rng_round_trips_mid_stream(
            seed in 0u64..10_000,
            draws in 0u64..400,
            stream in 0u64..64,
        ) {
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..draws {
                let _ = rng.f64();
            }
            // Forking mutates the parent's counter too; include it.
            let mut forked = rng.fork(stream);
            let _ = forked.normal(0.0, 1.0);

            for original in [&mut rng, &mut forked] {
                let mut thawed = snap_round_trip(original);
                prop_assert_eq!(&thawed, original);
                prop_assert_eq!(thawed.position(), original.position());
                for _ in 0..16 {
                    prop_assert_eq!(
                        thawed.f64().to_bits(),
                        original.f64().to_bits(),
                        "post-restore draws must match bit for bit"
                    );
                }
            }
            assert_bytes_stable(&rng);
        }

        /// The event wheel keeps its FIFO sequence counter across the
        /// wire: same-time events pop in arrival order after a restore,
        /// even when the wheel was half-drained before the snapshot.
        #[test]
        fn event_wheel_round_trips_seq_and_order(
            offsets in proptest::collection::vec(0u64..600, 1..40),
            drain in 0usize..10,
        ) {
            let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
            let mut wheel: EventWheel<u64> = EventWheel::new();
            for (i, off) in offsets.iter().enumerate() {
                // Coarse buckets (minute granularity) force plenty of
                // same-time collisions so the FIFO tag does real work.
                wheel.push(start + SimDuration::from_mins(*off / 60), i as u64);
            }
            for _ in 0..drain.min(wheel.len().saturating_sub(1)) {
                let _ = wheel.pop();
            }
            assert_bytes_stable(&wheel);
            let mut thawed = snap_round_trip(&wheel);
            prop_assert_eq!(thawed.len(), wheel.len());
            while let Some(expect) = wheel.pop() {
                prop_assert_eq!(thawed.pop(), Some(expect), "pop order must survive");
            }
            prop_assert_eq!(thawed.pop(), None);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The environment round-trips losslessly mid-run: the step-cache
        /// *keys* (day numbers, second-of-day entries) are derived state
        /// that refills identically, so queries after a restore are
        /// bit-identical to queries that never crossed the wire.
        #[test]
        fn environment_round_trips_bit_identically(
            seed in 0u64..1_000,
            hours in 1u64..200,
        ) {
            let start = SimTime::from_ymd_hms(2008, 9, 1, 0, 0, 0);
            let mut env = Environment::new(EnvConfig::vatnajokull(), seed);
            env.advance_to(start);
            for h in 1..=hours {
                env.advance_to(start + SimDuration::from_hours(h));
            }
            let mut thawed = snap_round_trip(&env);
            prop_assert_eq!(&thawed, &env, "restored environment must compare equal");
            assert_bytes_stable(&env);

            // Warm caches on one side only, then advance both: the memo
            // contents are derived, so trajectories cannot diverge.
            let t = env.now();
            let _ = env.temperature_c(t);
            for h in 1..=6u64 {
                let t = start + SimDuration::from_hours(hours + h);
                env.advance_to(t);
                thawed.advance_to(t);
                prop_assert_eq!(
                    env.temperature_c(t).to_bits(),
                    thawed.temperature_c(t).to_bits()
                );
                prop_assert_eq!(
                    env.wind_speed_ms(t).to_bits(),
                    thawed.wind_speed_ms(t).to_bits()
                );
                prop_assert_eq!(
                    env.water_pressure(t).to_bits(),
                    thawed.water_pressure(t).to_bits()
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// A whole deployment's snapshot is byte-stable and restores to a
        /// controller that finishes the run exactly like the original —
        /// whatever day the checkpoint lands on.
        #[test]
        fn deployment_state_round_trips_losslessly(
            seed in 0u64..100,
            checkpoint_day in 1u64..4,
        ) {
            let horizon = 5u64;
            let mut straight = glacsweb::Scenario::lab_bringup().seed(seed).observe().build();
            straight.run_days(horizon);

            let mut split = glacsweb::Scenario::lab_bringup().seed(seed).observe().build();
            split.run_days(checkpoint_day);
            let state = split.snapshot();
            assert_bytes_stable(&state);
            let mut resumed = Deployment::restore(snap_round_trip(&state)).expect("restore");
            resumed.run_until(resumed.start() + SimDuration::from_days(horizon));

            prop_assert_eq!(resumed.summary(), straight.summary());
            // Telemetry registries ride the snapshot too: the restored
            // process exports the full history, byte for byte.
            let a = straight.telemetry().expect("observed").to_json();
            let b = resumed.telemetry().expect("observed").to_json();
            prop_assert_eq!(a, b, "telemetry export must survive the round-trip");
        }
    }
}
