//! Serialisation round-trips for everything a field operator would
//! persist or ship: configurations, schedules, reports and experiment
//! results. The real system stored configuration on flash and shipped
//! structured records to Southampton; snapshot-ability is part of the
//! public contract.

use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_probe::{MortalityModel, ProtocolConfig};
use glacsweb_sim::{SimDuration, SimTime};
use glacsweb_station::{
    ControllerConfig, PolicyTable, PowerState, Schedule, StationConfig, UploadItem,
};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn env_configs_round_trip() {
    for config in [
        EnvConfig::vatnajokull(),
        EnvConfig::briksdalsbreen(),
        EnvConfig::lab(),
    ] {
        assert_eq!(round_trip(&config), config);
    }
}

#[test]
fn station_configs_round_trip() {
    for config in [StationConfig::base_2008(), StationConfig::reference_2008()] {
        assert_eq!(round_trip(&config), config);
    }
}

#[test]
fn controller_and_protocol_configs_round_trip() {
    for config in [
        ControllerConfig::deployed_2008(),
        ControllerConfig::lessons_learnt(),
        ControllerConfig::with_priority_data(),
    ] {
        assert_eq!(round_trip(&config), config);
    }
    for config in [ProtocolConfig::deployed_2008(), ProtocolConfig::fixed()] {
        assert_eq!(round_trip(&config), config);
    }
    assert_eq!(round_trip(&GprsConfig::field()), GprsConfig::field());
    assert_eq!(round_trip(&PolicyTable::paper()), PolicyTable::paper());
    assert_eq!(
        round_trip(&MortalityModel::paper_2008()),
        MortalityModel::paper_2008()
    );
}

#[test]
fn schedule_and_states_round_trip() {
    for state in PowerState::ALL {
        assert_eq!(round_trip(&state), state);
        let schedule = Schedule::standard(state);
        assert_eq!(round_trip(&schedule), schedule);
    }
}

#[test]
fn window_reports_round_trip() {
    // Run a real window and snapshot its report.
    let mut d = glacsweb::Scenario::lab_bringup().build();
    d.run_days(2);
    for report in d.metrics().window_reports() {
        assert_eq!(&round_trip(report), report);
    }
    assert!(!d.metrics().window_reports().is_empty());
}

#[test]
fn upload_items_round_trip_through_the_wire_format() {
    let item = UploadItem::GpsFile {
        taken_at: SimTime::from_ymd_hms(2009, 9, 22, 0, 30, 0),
        observed_position_m: 12.5,
        size: glacsweb_sim::Bytes::from_kib(165),
    };
    assert_eq!(round_trip(&item), item);
}

#[test]
fn experiment_results_serialize_for_the_json_dump() {
    // The `experiments --json` flag relies on every result serialising.
    let t1 = glacsweb::experiments::table1::run();
    let json = serde_json::to_string_pretty(&t1).expect("table1");
    assert!(json.contains("Gumstix"));

    let t2 = glacsweb::experiments::table2::run();
    let back: glacsweb::experiments::table2::Table2 =
        serde_json::from_str(&serde_json::to_string(&t2).expect("ser")).expect("de");
    assert_eq!(back, t2);

    let s = glacsweb::experiments::survival::run(1, 50);
    let back: glacsweb::experiments::survival::Survival =
        serde_json::from_str(&serde_json::to_string(&s).expect("ser")).expect("de");
    assert_eq!(back, s);
}

#[test]
fn sim_time_serialises_compactly() {
    let t = SimTime::from_ymd_hms(2009, 9, 22, 12, 0, 0);
    let json = serde_json::to_string(&t).expect("serialize");
    // A bare integer — cheap to ship over a paid-per-MB link.
    assert_eq!(json, t.unix().to_string());
    let d = SimDuration::from_hours(2);
    assert_eq!(serde_json::to_string(&d).expect("serialize"), "7200");
}
