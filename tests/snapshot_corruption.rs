//! Crash-safety of the checkpoint path, attacked end to end: every way a
//! snapshot file can go wrong on a flaky CF card — truncation, bit rot,
//! a future schema, an interrupted write — must surface as a typed
//! [`SnapshotError`], never a panic, and must never resurrect a partial
//! deployment.

use std::path::PathBuf;

use glacsweb::{Deployment, Scenario, SnapshotError};
use glacsweb_snapshot::{tmp_path, HEADER_LEN, MAGIC, SCHEMA_VERSION, TMP_SUFFIX};

/// A per-test scratch file under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("glacsweb-snapshot-corruption");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{name}-{}.snap", std::process::id()))
}

/// A real checkpoint to corrupt: two simulated days of the lab scenario.
fn checkpoint_at(path: &PathBuf) -> Vec<u8> {
    let mut d = Scenario::lab_bringup().seed(7).build();
    d.run_days(2);
    d.checkpoint(path).expect("write checkpoint");
    std::fs::read(path).expect("read checkpoint back")
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let path = scratch("truncate");
    let bytes = checkpoint_at(&path);
    // Every prefix, from the empty file up to one byte short of intact:
    // header-level cuts report Truncated; payload-level cuts may decode
    // far enough to fail the checksum instead. Either way: typed, no
    // panic, no deployment.
    for cut in [
        0,
        1,
        MAGIC.len(),
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + 1,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated file");
        match Deployment::resume(&path) {
            Err(SnapshotError::Truncated { needed, have }) => {
                assert!(
                    have < needed,
                    "cut at {cut}: have {have} >= needed {needed}"
                );
            }
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::BadMagic) => {}
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
            Ok(_) => panic!("cut at {cut}: resumed from a truncated snapshot"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_single_flipped_bit_is_caught() {
    let path = scratch("bitrot");
    let bytes = checkpoint_at(&path);
    // Stride through the file flipping one bit at a time; the CRC (or a
    // header check, for bytes in the envelope) must reject every one.
    for pos in (0..bytes.len()).step_by(bytes.len() / 64 + 1) {
        let mut dirty = bytes.clone();
        dirty[pos] ^= 0x10;
        std::fs::write(&path, &dirty).expect("write corrupted file");
        match Deployment::resume(&path) {
            Err(
                SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::BadMagic
                | SnapshotError::Truncated { .. }
                | SnapshotError::FutureSchema { .. },
            ) => {}
            Err(other) => panic!("bit flip at {pos}: unexpected error {other}"),
            Ok(_) => panic!("bit flip at {pos}: resumed from a corrupt snapshot"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshots_from_the_future_are_refused() {
    let path = scratch("future");
    let mut bytes = checkpoint_at(&path);
    // The schema version lives right after the magic, little-endian.
    let next = SCHEMA_VERSION + 1;
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&next.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write future-schema file");
    match Deployment::resume(&path) {
        Err(SnapshotError::FutureSchema { found, supported }) => {
            assert_eq!(found, next);
            assert_eq!(supported, SCHEMA_VERSION);
        }
        Err(other) => panic!("unexpected error {other}"),
        Ok(_) => panic!("resumed from a snapshot written by a newer build"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_write_leaves_the_previous_checkpoint_usable() {
    let path = scratch("interrupted");
    let good = checkpoint_at(&path);

    // Model a crash mid-save: the writer died after filling the temp
    // file but before the rename. The durable checkpoint must be
    // untouched, and loading it must ignore the stale temp entirely.
    let tmp = tmp_path(&path);
    assert!(tmp.to_string_lossy().ends_with(TMP_SUFFIX));
    std::fs::write(&tmp, &good[..good.len() / 2]).expect("leave a stale half-written temp");

    let mut resumed = Deployment::resume(&path).expect("previous checkpoint still loads");
    resumed.run_days(1);

    // The next successful checkpoint replaces both the stale temp and
    // the old file atomically.
    resumed
        .checkpoint(&path)
        .expect("re-checkpoint over the stale temp");
    assert!(
        !tmp.exists(),
        "a successful save must not leave a temp file"
    );
    let reread = std::fs::read(&path).expect("new checkpoint readable");
    assert_ne!(
        reread, good,
        "the new checkpoint must have replaced the old"
    );
    Deployment::resume(&path).expect("replacement checkpoint loads");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_before_any_rename_means_no_checkpoint_at_all() {
    let path = scratch("first-write-crash");
    // First-ever save dies before the rename: only the temp exists.
    let mut d = Scenario::lab_bringup().seed(9).build();
    d.run_days(1);
    let tmp = tmp_path(&path);
    std::fs::write(&tmp, b"GLACSNAP half-written garbage").expect("stale temp");

    // The contract: the final path never exists in a half-written state,
    // so a resume attempt reports a clean not-found I/O error.
    match Deployment::resume(&path) {
        Err(SnapshotError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
        }
        Err(other) => panic!("unexpected error {other}"),
        Ok(_) => panic!("resumed a deployment from a file that was never committed"),
    }

    // A retry of the save goes through and cleans up after itself.
    d.checkpoint(&path).expect("retried save succeeds");
    assert!(!tmp.exists(), "retry must clobber the stale temp");
    Deployment::resume(&path).expect("committed checkpoint loads");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn garbage_and_foreign_files_are_rejected_politely() {
    let path = scratch("garbage");
    for contents in [
        &b""[..],
        b"not a snapshot at all",
        b"{\"json\": \"file\"}",
        &[0u8; 64][..],
    ] {
        std::fs::write(&path, contents).expect("write garbage");
        match Deployment::resume(&path) {
            Err(
                SnapshotError::BadMagic
                | SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("resumed from garbage"),
        }
    }
    let _ = std::fs::remove_file(&path);
}
