//! Whole-system integration: the Iceland scenario end to end.

use glacsweb::Scenario;
use glacsweb_sim::SimTime;
use glacsweb_station::StationId;

#[test]
fn sixty_days_of_iceland_2008() {
    let mut d = Scenario::iceland_2008().build();
    d.run_days(60);
    let s = d.summary();

    // Two stations, one window each per day (minus any recovery sleeps).
    assert!(s.windows_run >= 110, "windows {}", s.windows_run);
    assert_eq!(s.power_losses, 0, "august deployment has plenty of power");

    // Data actually flowed end to end.
    assert!(
        s.probe_readings_received > 5_000,
        "readings {}",
        s.probe_readings_received
    );
    assert!(
        s.data_uploaded.as_mib_f64() > 50.0,
        "uploaded {}",
        s.data_uploaded
    );
    assert!(s.gprs_cost > 0.0);

    // The §III synchronisation keeps dGPS readings pairable.
    assert!(s.dgps_fixes > 300, "fixes {}", s.dgps_fixes);
    assert!(s.dgps_pairing_yield > 0.7, "yield {}", s.dgps_pairing_yield);
}

#[test]
fn probe_data_arrives_in_order_without_duplicates() {
    let mut d = Scenario::iceland_2008().build();
    d.run_days(30);
    let warehouse = d.server().warehouse();
    for probe in warehouse.probes_reporting() {
        let series = warehouse.probe_series(probe);
        assert!(!series.is_empty());
        let mut seqs: Vec<u64> = series.iter().map(|r| r.seq).collect();
        let n = seqs.len();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), n, "probe {probe} delivered duplicates");
        // Time-ordered by construction of probe_series.
        for pair in series.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }
}

#[test]
fn power_states_track_the_season() {
    // From high summer into early winter the base station must descend
    // the Table II ladder (less sun, buried panel) rather than dying.
    let mut d = Scenario::iceland_lessons_learnt().build();
    d.run_until(SimTime::from_ymd_hms(2009, 1, 15, 0, 0, 0));
    let metrics = d.metrics();
    let august_states: Vec<u8> = metrics
        .reports_for(StationId::Base)
        .filter(|r| r.opened < SimTime::from_ymd_hms(2008, 9, 1, 0, 0, 0))
        .map(|r| r.applied_state.level())
        .collect();
    let january_states: Vec<u8> = metrics
        .reports_for(StationId::Base)
        .filter(|r| r.opened >= SimTime::from_ymd_hms(2009, 1, 1, 0, 0, 0))
        .map(|r| r.applied_state.level())
        .collect();
    let mean = |v: &[u8]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&august_states) > 2.5,
        "summer runs high: {:?}",
        mean(&august_states)
    );
    assert!(
        mean(&january_states) < mean(&august_states),
        "winter backs off: {} vs {}",
        mean(&january_states),
        mean(&august_states)
    );
    assert_eq!(
        d.summary().power_losses,
        0,
        "the policy's whole point: survival"
    );
}

#[test]
fn both_station_roles_report_gps() {
    let mut d = Scenario::iceland_2008().build();
    d.run_days(20);
    let warehouse = d.server().warehouse();
    let base = warehouse.gps_records(StationId::Base).len();
    let reference = warehouse.gps_records(StationId::Reference).len();
    assert!(base > 50, "base recorded {base}");
    assert!(reference > 50, "reference recorded {reference}");
    // Differential fixes recover the glacier's displacement signal.
    let fixes = warehouse.differential_fixes();
    let first = fixes.first().expect("fixes exist").position_m;
    let last = fixes.last().expect("fixes exist").position_m;
    assert!(
        last > first + 0.5,
        "20 days of flow visible in the fixes: {first:.2} -> {last:.2} m"
    );
}

#[test]
fn log_files_reach_southampton_daily() {
    let mut d = Scenario::iceland_2008().build();
    d.run_days(15);
    let (_, _, logs, log_bytes) = d.server().warehouse().totals();
    assert!(logs >= 20, "daily logs from two stations: {logs}");
    assert!(log_bytes.value() > 0);
}
