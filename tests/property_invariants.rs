//! Cross-crate property-based invariants.
//!
//! These complement the per-crate proptests with whole-subsystem
//! properties: exactly-once probe delivery under arbitrary loss, upload
//! byte conservation under arbitrary budgets and drops, policy safety
//! under arbitrary override sequences, and power-rail energy accounting.

use proptest::prelude::*;

use glacsweb_env::{EnvConfig, Environment};
use glacsweb_link::{GprsConfig, GprsLink, ProbeRadioLink};
use glacsweb_probe::{FetchSession, ProbeFirmware, ProtocolConfig};
use glacsweb_sim::{Bytes, SimDuration, SimRng, SimTime, Volts};
use glacsweb_station::{PolicyTable, PowerState};

fn probe_with(n: u64, seed: u64) -> (ProbeFirmware, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let mut env = Environment::new(EnvConfig::lab(), seed);
    let mut t = SimTime::from_ymd_hms(2009, 3, 1, 0, 0, 0);
    env.advance_to(t);
    let mut probe = ProbeFirmware::deploy(21, t, &mut rng);
    for _ in 0..n {
        t += SimDuration::from_hours(1);
        env.advance_to(t);
        probe.sample(&env, t, &mut rng);
    }
    (probe, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the loss rate (up to 60 %), repeated daily sessions
    /// deliver every reading exactly once and eventually complete.
    #[test]
    fn probe_protocol_is_exactly_once(
        loss in 0.0f64..0.6,
        n in 50u64..600,
        seed in 0u64..1000,
    ) {
        let (mut probe, mut rng) = probe_with(n, seed);
        let link = ProbeRadioLink::new();
        let mut session = FetchSession::new(21, ProtocolConfig::fixed());
        let mut complete = false;
        for _ in 0..60 {
            let out = session.run(
                &mut probe,
                &link,
                loss,
                SimDuration::from_hours(4),
                &mut rng,
            );
            if out.complete {
                complete = true;
                break;
            }
        }
        prop_assert!(complete, "never completed at loss {loss}");
        let delivered = session.drain_delivered();
        prop_assert_eq!(delivered.len() as u64, n);
        let mut seqs: Vec<u64> = delivered.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len() as u64, n, "duplicates detected");
    }

    /// GPRS transfers conserve bytes across arbitrary budget splits and
    /// session drops: the sum of partial sends equals the payload.
    #[test]
    fn gprs_resume_conserves_bytes(
        size_kib in 1u64..2048,
        budget_mins in 1u64..90,
        mean_drop_mins in 1u64..60,
        seed in 0u64..1000,
    ) {
        let config = GprsConfig {
            setup_failure_p: 0.0,
            mean_time_to_drop: SimDuration::from_mins(mean_drop_mins),
            ..GprsConfig::field()
        };
        let mut link = GprsLink::new(config);
        let mut rng = SimRng::seed_from(seed);
        let total = Bytes::from_kib(size_kib);
        let mut remaining = total;
        let mut sent_sum = Bytes::ZERO;
        let mut guard = 0;
        while remaining.value() > 0 {
            guard += 1;
            prop_assert!(guard < 10_000, "no progress");
            if !link.is_connected() && link.connect(&mut rng).is_err() {
                continue;
            }
            let out = link.transfer(remaining, SimDuration::from_mins(budget_mins), &mut rng);
            prop_assert!(out.sent <= remaining);
            remaining = remaining.saturating_sub(out.sent);
            sent_sum += out.sent;
            if !out.dropped {
                link.disconnect();
            }
        }
        prop_assert_eq!(sent_sum, total);
        prop_assert_eq!(link.total_sent(), total);
    }

    /// The policy + override pipeline never produces an unsafe state:
    /// never above what the voltage allows, never a remotely-forced zero.
    #[test]
    fn policy_pipeline_is_safe(
        volts in 9.0f64..15.0,
        override_level in proptest::option::of(0u8..4),
    ) {
        let policy = PolicyTable::paper();
        let local = policy.state_for(Volts(volts));
        let remote = override_level.map(PowerState::from_level);
        let applied = policy.apply_override(local, remote);
        prop_assert!(applied <= local);
        if applied == PowerState::S0 {
            prop_assert_eq!(local, PowerState::S0);
        }
        // GPRS gating follows the table.
        prop_assert_eq!(applied.gprs_enabled(), applied != PowerState::S0);
    }

    /// Power-rail bookkeeping: load energy consumed never exceeds what the
    /// battery delivered plus what was harvested (allowing charge
    /// inefficiency), and SoC stays in bounds through arbitrary schedules.
    #[test]
    fn rail_energy_accounting(
        seed in 0u64..500,
        days in 1u64..20,
        gps_hours in 0u64..6,
    ) {
        use glacsweb_power::{Charger, LeadAcidBattery, PowerRail, SolarPanel};
        use glacsweb_sim::{AmpHours, Watts};
        let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
        let mut env = Environment::new(EnvConfig::vatnajokull(), seed);
        env.advance_to(start);
        let mut rail = PowerRail::new(LeadAcidBattery::with_state(AmpHours(36.0), 0.7), start);
        rail.add_charger(Charger::Solar(SolarPanel::new(Watts(10.0))));
        rail.loads_mut().add("gps", Watts(3.6));
        let mut t = start;
        for _ in 0..days {
            // GPS on for the first `gps_hours` of each day.
            rail.loads_mut().set_on("gps", true);
            let on_until = t + SimDuration::from_hours(gps_hours);
            env.advance_to(on_until);
            rail.advance(&env, on_until);
            rail.loads_mut().set_on("gps", false);
            t += SimDuration::from_days(1);
            env.advance_to(t);
            rail.advance(&env, t);
            let soc = rail.battery().state_of_charge();
            prop_assert!((0.0..=1.0).contains(&soc));
        }
        let consumed = rail.loads().total_energy().value();
        let delivered = rail.battery().total_discharged().value();
        let harvested = rail.total_harvested().value();
        // Loads are fed by battery discharge + direct harvest; the battery
        // model's charge path loses ~12 %, so allow that headroom.
        prop_assert!(
            consumed <= delivered + harvested + 1.0,
            "consumed {consumed} > delivered {delivered} + harvested {harvested}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Short whole-deployment runs never violate core invariants,
    /// whatever the seed.
    #[test]
    fn deployment_invariants_hold_for_any_seed(seed in 0u64..200) {
        let mut d = glacsweb::Scenario::iceland_2008().seed(seed).build();
        d.run_days(10);
        let s = d.summary();
        prop_assert!(s.windows_run <= 2 * 10 + 2);
        prop_assert!(s.dgps_pairing_yield <= 1.0);
        prop_assert!((0.0..=1.0).contains(
            &d.base().expect("base").rail().battery().state_of_charge()
        ));
        // Warehouse readings never exceed what probes produced.
        let produced: usize = d.probes().iter().map(|p| p.next_seq() as usize).sum();
        prop_assert!(s.probe_readings_received <= produced);
    }
}
