//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + (rng.next_u64() as usize) % span;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of values drawn from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
