//! The deterministic test runner behind `proptest!`.

use std::fmt;

use crate::{Strategy, TestRng};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to draw per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// A whole-property failure (which case and why).
#[derive(Debug, Clone)]
pub struct TestError {
    msg: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestError {}

/// Draws inputs from a strategy and checks the property on each.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a fixed deterministic seed.
    pub fn new(config: Config) -> Self {
        TestRunner {
            config,
            rng: TestRng::deterministic(0x5eed_cafe_f00d_0001),
        }
    }

    /// Runs the property across `config.cases` sampled inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`TestError`] describing the first failing case.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.sample(&mut self.rng);
            let rendered = format!("{value:?}");
            if let Err(e) = test(value) {
                return Err(TestError {
                    msg: format!("case {case} with input {rendered}: {e}"),
                });
            }
        }
        Ok(())
    }
}
