//! Option strategies (`proptest::option::of`).

use crate::{Strategy, TestRng};

/// Strategy producing `Option`s (roughly 1-in-5 `None`).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(5) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `Some` values drawn from `inner`, plus occasional `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
