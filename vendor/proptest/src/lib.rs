//! Offline vendored subset of the `proptest` API.
//!
//! Provides the surface this workspace uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, numeric-range / tuple / `collection::vec` /
//! `option::of` / `any::<T>()` strategies, and
//! `test_runner::{Config, TestRunner}` — with deterministic fixed-seed
//! sampling and no shrinking. Failing cases report the failed assertion and
//! case number; since sampling is deterministic, a failure reproduces by
//! re-running the test.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

/// Deterministic splitmix64 sampling source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with a fixed seed stream.
    pub fn deterministic(stream: u64) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15 ^ stream,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for property tests (sample-only — no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                let x = lo + rng.unit_f64() * (hi - lo);
                let x = if x >= hi && lo < hi { lo } else { x };
                x as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64() & !(0x7ff0_0000_0000_0000)) // finite
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Fails the property unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the property unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Fails the property if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro used here: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items (with attributes / doc comments).
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            let __result = __runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = __result {
                panic!("property `{}` failed: {}", stringify!($name), e);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
