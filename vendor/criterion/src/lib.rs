//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Mirrors the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! workspace benches use, with a lightweight measurement loop instead of
//! criterion's statistical machinery: each benchmark runs a handful of
//! timed iterations and prints the mean. When invoked with `--test` (as
//! `cargo test` does for `harness = false` bench targets) every benchmark
//! body runs exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (API parity with criterion 0.5).
pub use std::hint::black_box;

const DEFAULT_SAMPLES: u64 = 10;

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            criterion: self,
        }
    }

    /// Prints the closing summary (no-op).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.criterion.test_mode, self.samples, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// vendored harness always runs setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times a closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F>(name: &str, test_mode: bool, samples: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    let rounds = if test_mode { 1 } else { samples };
    for _ in 0..rounds {
        f(&mut b);
    }
    if b.iters > 0 {
        let mean = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
        println!("bench {name:<40} mean {mean:>12.3?} over {} iters", b.iters);
    } else {
        println!("bench {name:<40} (no iterations)");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
