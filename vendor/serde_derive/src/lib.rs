//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Generates impls of the vendored value-tree `serde` traits. The parser is
//! hand-rolled over `proc_macro::TokenTree` (no syn/quote available offline)
//! and supports the shapes this workspace actually derives: non-generic
//! named structs, tuple structs, unit structs, and enums with unit, tuple,
//! and struct variants. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` (value-tree `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = false;
    // Find the `struct` / `enum` keyword, skipping attributes + visibility.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => {}
            None => panic!("derive input has no struct/enum keyword"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Skip generic parameters if present (none are derived in this
    // workspace, but be tolerant of `<...>`).
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            let mut prev_dash = false;
            for tt in iter.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                prev_dash = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
            }
        }
    }
    // Body: `{...}` (named/variants), `(...)` (tuple), or `;` (unit).
    // A `where` clause may precede a brace body; just scan forward.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                if is_enum {
                    break Body::Enum(parse_variants(g.stream()));
                }
                break Body::NamedStruct(parse_named_fields(g.stream()));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break Body::TupleStruct(count_segments(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Body::UnitStruct,
            Some(_) => {}
            None => {
                if is_enum {
                    panic!("enum body not found");
                }
                break Body::UnitStruct;
            }
        }
    };
    Input { name, body }
}

/// Parses `name: Type, ...` returning the field names; types are skipped
/// with angle-bracket awareness so commas inside `BTreeMap<K, V>` do not
/// split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type(&mut iter);
    }
    fields
}

/// Consumes a type up to (and including) the next top-level `,`.
fn skip_type<I: Iterator<Item = TokenTree>>(iter: &mut std::iter::Peekable<I>) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        prev_dash = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
    }
}

/// Counts top-level comma-separated segments (tuple-struct / tuple-variant
/// field count), ignoring a trailing comma.
fn count_segments(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut seg_has_tokens = false;
    let mut prev_dash = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => {
                depth -= 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if seg_has_tokens {
                    count += 1;
                }
                seg_has_tokens = false;
            }
            _ => seg_has_tokens = true,
        }
        prev_dash = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
    }
    if seg_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_segments(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator comma.
        skip_type(&mut iter);
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn str_value(s: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from(\"{s}\"))")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_value(&self.{f})),",
                        str_value(f)
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tag = str_value(vname);
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vname} => {tag},")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![({tag}, \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![({tag}, \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_value({f}),),",
                                        str_value(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![({tag}, \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__v, \"{f}\")?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                .collect();
            format!(
                "{{ let __s = __v.as_seq().ok_or_else(|| ::serde::de::Error::custom(\
                 \"expected sequence for tuple struct {name}\"))?; \
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple length for {name}\")); }} \
                 ::std::result::Result::Ok({name}({items})) }}"
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut out = String::new();
            if !unit.is_empty() {
                let arms: String = unit
                    .iter()
                    .map(|v| {
                        format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                            vn = v.name
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "if let ::serde::Value::Str(__s) = __v {{ \
                     return match __s.as_str() {{ {arms} \
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))), }}; }} "
                ));
            }
            if !data.is_empty() {
                let arms: String = data
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Tuple(1) => format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),"
                            ),
                            VariantKind::Tuple(n) => {
                                let items: String = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__s[{i}])?,")
                                    })
                                    .collect();
                                format!(
                                    "\"{vn}\" => {{ let __s = __payload.as_seq().ok_or_else(|| \
                                     ::serde::de::Error::custom(\"expected sequence for variant \
                                     {name}::{vn}\"))?; if __s.len() != {n} {{ \
                                     return ::std::result::Result::Err(::serde::de::Error::custom(\
                                     \"wrong tuple length for {name}::{vn}\")); }} \
                                     ::std::result::Result::Ok({name}::{vn}({items})) }}"
                                )
                            }
                            VariantKind::Named(fields) => {
                                let inits: String = fields
                                    .iter()
                                    .map(|f| {
                                        format!("{f}: ::serde::de::field(__payload, \"{f}\")?,")
                                    })
                                    .collect();
                                format!(
                                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                                )
                            }
                            VariantKind::Unit => unreachable!(),
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "if let ::serde::Value::Map(__m) = __v {{ if __m.len() == 1 {{ \
                     if let ::serde::Value::Str(__k) = &__m[0].0 {{ let __payload = &__m[0].1; \
                     return match __k.as_str() {{ {arms} \
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))), }}; }} }} }} "
                ));
            }
            out.push_str(&format!(
                "::std::result::Result::Err(::serde::de::Error::custom(\
                 \"invalid value for enum {name}\"))"
            ));
            out
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> \
         {{ {body} }} }}"
    )
}
