//! Offline vendored subset of the `serde_json` API.
//!
//! Serializes the vendored serde [`Value`] tree to JSON text and parses it
//! back. Output conventions match real serde_json for the derived types this
//! workspace uses: named structs as objects, transparent newtypes, externally
//! tagged enums, floats printed via `{:?}` (so `1.0` keeps its decimal
//! point), and integer map keys stringified into object keys.

#![forbid(unsafe_code)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an [`Error`] if a map key is not a scalar (JSON object keys must
/// be strings).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None)?;
    Ok(out)
}

/// Serializes a value to human-readable two-space-indented JSON.
///
/// # Errors
///
/// Returns an [`Error`] if a map key is not a scalar.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0))?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            let inner = indent.map(|d| d + 1);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                write_value(item, out, inner)?;
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            let inner = indent.map(|d| d + 1);
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                write_key(k, out)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, inner)?;
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
    Ok(())
}

/// JSON object keys must be strings; scalar keys are stringified the way
/// serde_json does for integer-keyed maps.
fn write_key(k: &Value, out: &mut String) -> Result<(), Error> {
    match k {
        Value::Str(s) => {
            write_string(s, out);
            Ok(())
        }
        Value::I64(n) => {
            write_string(&n.to_string(), out);
            Ok(())
        }
        Value::U64(n) => {
            write_string(&n.to_string(), out);
            Ok(())
        }
        Value::Bool(b) => {
            write_string(if *b { "true" } else { "false" }, out);
            Ok(())
        }
        other => Err(Error::new(format!(
            "map key must be a scalar, got {other:?}"
        ))),
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        Some(b) => {
                            let c = match b {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'/' => '/',
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'b' => '\u{0008}',
                                b'f' => '\u{000c}',
                                other => {
                                    return Err(Error::new(format!(
                                        "invalid escape `\\{}`",
                                        other as char
                                    )));
                                }
                            };
                            out.push(c);
                            self.pos += 1;
                        }
                        None => return Err(Error::new("unterminated escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads and consumes 4 hex digits.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"hi \"x\"".to_string()).unwrap(),
            "\"hi \\\"x\\\"\""
        );
        let n: f64 = from_str("2.5e3").unwrap();
        assert!((n - 2500.0).abs() < 1e-9);
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, "x".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"3\":\"x\"}");
        let back: std::collections::BTreeMap<u64, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
