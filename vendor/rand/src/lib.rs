//! Offline vendored subset of the `rand` crate API.
//!
//! The workspace builds in an air-gapped container, so the real crates.io
//! `rand` cannot be fetched. This crate provides exactly the surface the
//! workspace consumes — the [`RngCore`] trait and its [`Error`] type — with
//! the same semantics as rand 0.8. Generators themselves (xoshiro256++ etc.)
//! live in `glacsweb-sim`; this crate only defines the trait they implement.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for RNG operations (rand 0.8 compatible surface).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wraps a message as an RNG error.
    pub fn new<E: fmt::Display>(err: E) -> Self {
        Error {
            msg: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in rand 0.8.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (never fails for
    /// deterministic software generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
