//! Deserialization half of the vendored serde surface.

use std::fmt;

use crate::Value;

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message (mirrors `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can reconstruct itself from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Marker for types deserializable without borrowing from the input — with
/// the value-tree model every [`Deserialize`] qualifies, matching how the
/// workspace uses `serde::de::DeserializeOwned` purely as a bound.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Extracts and deserializes the field `name` from a struct map.
///
/// Used by derive-generated `from_value` bodies.
///
/// # Errors
///
/// Returns an [`Error`] if `v` is not a map, the field is missing, or the
/// field value has the wrong shape.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let entries = v
        .as_map()
        .ok_or_else(|| Error::custom(format!("expected map containing field `{name}`")))?;
    let value = entries
        .iter()
        .find(|(k, _)| k.as_str() == Some(name))
        .map(|(_, val)| val)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(value).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}
