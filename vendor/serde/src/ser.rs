//! Serialization half of the vendored serde surface.

use crate::Value;

/// A type that can convert itself into the self-describing [`Value`] tree.
///
/// This replaces real serde's visitor-based `Serialize`; the derive macro
/// generates `to_value` bodies that mirror serde_json's conventions (named
/// structs become maps, newtypes are transparent, enums are externally
/// tagged).
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}
