//! Offline vendored subset of the `serde` API.
//!
//! The workspace builds in an air-gapped container where crates.io is
//! unreachable, so the real `serde` cannot be fetched. This crate provides a
//! compatible *surface* (`Serialize`, `Deserialize`, `de::DeserializeOwned`,
//! `#[derive(Serialize, Deserialize)]` via the `derive` feature) backed by a
//! much simpler model: every value converts to and from a self-describing
//! [`Value`] tree instead of going through serde's visitor machinery.
//!
//! That trade is legal here because the workspace uses only derived impls
//! with no `#[serde(...)]` attributes; the JSON conventions (maps for named
//! structs, transparent newtypes, externally-tagged enums) match what real
//! serde + serde_json produce for the same types.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned};
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the intermediate representation every
/// `Serialize`/`Deserialize` impl converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value pairs (keys may be any scalar value).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the sequence if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the entries if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a map entry by string key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k.as_str() == Some(key))
            .map(|(_, v)| v)
    }

    /// Coerces to `u64` (accepts unsigned, non-negative signed, integral
    /// floats, and numeric strings — the latter lets integer map keys
    /// round-trip through JSON's string-keyed objects).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Coerces to `i64` (same conventions as [`Value::as_u64`]).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Coerces to `f64` (accepts any number, numeric strings, and `null`
    /// for the non-finite values JSON cannot express).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::Str(s) => s.parse().ok(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Coerces to `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

use de::Error;

macro_rules! de_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .$via()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64
);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, got {}",
                        $len,
                        s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
