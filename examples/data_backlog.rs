//! §VI in action: the 2-hour watchdog versus a multi-day data backlog.
//!
//! An intermittent RS-232 cable keeps dGPS files stranded on the
//! receiver's card for ten days. When it clears, there is more data than
//! one window can move: the watchdog cuts run after run, the backlog
//! drains file by file, and a special command staged from Southampton is
//! starved until the queue empties (the deployed Fig 4 ordering).
//!
//! ```text
//! cargo run --example data_backlog --release
//! ```

use glacsweb::DeploymentBuilder;
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::{Bytes, SimDuration, SimTime};
use glacsweb_station::{StationConfig, StationId};

fn main() {
    let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::ideal();
    let mut d = DeploymentBuilder::new(EnvConfig::lab())
        .seed(11)
        .start(start)
        .base(base)
        .build();

    println!("day 0: RS-232 cable goes intermittent — dGPS files strand on the receiver\n");
    d.base_mut().expect("base").inject_rs232_fault(true);
    d.run_days(10);
    d.base_mut().expect("base").inject_rs232_fault(false);
    let stranded = d.base().expect("base").dgps().pending_files().len();
    println!("day 10: cable reseated; {stranded} files stranded on the dGPS card");

    // Southampton stages a diagnostic script at the same time.
    let id = d.server_mut().desk_mut().stage_special(
        StationId::Base,
        Bytes::from_kib(4),
        SimDuration::from_mins(2),
        Bytes::from_kib(2),
    );
    println!("day 10: Southampton stages special command #{id}\n");

    let resume = d.now();
    d.run_days(12);

    println!("window-by-window drain:");
    println!("date        gps-fetched  uploaded       cut  special");
    for r in d
        .metrics()
        .reports_for(StationId::Base)
        .filter(|r| r.opened >= resume)
    {
        println!(
            "{}  {:>11}  {:>13}  {:>4}  {}",
            r.opened.date(),
            r.gps_files_fetched,
            r.upload.bytes_sent.to_string(),
            if r.cut_by_watchdog { "CUT" } else { "-" },
            match r.special_executed {
                Some(id) => format!("ran #{id}"),
                None => "starved".to_string(),
            },
        );
    }

    let s = d.summary();
    println!(
        "\n{} windows cut by the watchdog; backlog cleared file by file, as §VI describes",
        s.windows_cut
    );
}
