//! §V in action: fetching 3000 buffered readings through wet summer ice.
//!
//! Shows the no-ACK bulk stream, the ~400 missing packets, the deployed
//! firmware's individual-fetch failure, and the property that saved the
//! field season: unconfirmed readings stay on the probe, so the fixed
//! protocol (or just the next day's session) finishes the job.
//!
//! ```text
//! cargo run --example probe_retrieval --release
//! ```

use glacsweb_env::{EnvConfig, Environment};
use glacsweb_link::ProbeRadioLink;
use glacsweb_probe::{FetchSession, ProbeFirmware, ProtocolConfig};
use glacsweb_sim::{SimDuration, SimRng, SimTime};

fn main() {
    // Build a probe that has been sampling hourly since March with the
    // base station offline — ~4 months ≈ 3000 readings (§V).
    let mut rng = SimRng::seed_from(2009);
    let mut env = Environment::new(EnvConfig::vatnajokull(), 2009);
    let mut t = SimTime::from_ymd_hms(2009, 3, 1, 0, 0, 0);
    env.advance_to(t);
    let mut probe = ProbeFirmware::deploy(21, t, &mut rng);
    for _ in 0..3000 {
        t += SimDuration::from_hours(1);
        env.advance_to(t);
        probe.sample(&env, t, &mut rng);
    }
    let loss = env.probe_packet_loss();
    println!(
        "probe 21 holds {} readings; it is {} and the ice is wet (packet loss {:.1}%)\n",
        probe.stored_readings(),
        t.date(),
        loss * 100.0
    );

    let link = ProbeRadioLink::new();
    let budget = SimDuration::from_mins(110);

    // Day 1 with the deployed firmware.
    let mut deployed = FetchSession::new(21, ProtocolConfig::deployed_2008());
    let day1 = deployed.run(&mut probe, &link, loss, budget, &mut rng);
    println!("day 1 (deployed 2008 firmware):");
    println!(
        "  bulk stream missed {} packets  [paper: ~400]",
        day1.missing_after_bulk
    );
    if day1.aborted {
        println!(
            "  -> individual fetch of {} readings FAILED (§V: 'the process could fail')",
            day1.missing_after
        );
        println!(
            "  -> but the task was not marked complete: probe still holds {} readings",
            probe.stored_readings()
        );
    }

    // Subsequent days with the lessons-learnt firmware, resuming from the
    // same base-side state? The field fix was new code; here we continue
    // with a fresh session which deduplicates via its own received-set —
    // the probe-side buffer is the source of truth either way.
    let mut fixed = FetchSession::new(21, ProtocolConfig::fixed());
    let mut day = 1;
    loop {
        day += 1;
        let out = fixed.run(&mut probe, &link, loss, budget, &mut rng);
        println!(
            "day {day}: +{} readings, {} still missing, complete = {}",
            out.new_readings, out.missing_after, out.complete
        );
        if out.complete {
            break;
        }
        assert!(day < 15, "should complete within days");
    }
    let total: usize = fixed.drain_delivered().len();
    println!(
        "\nall {total} readings retrieved; probe buffer now holds {} (freed after confirm)",
        probe.stored_readings()
    );
}
