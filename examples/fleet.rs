//! Fleet quickstart: simulate ten glacier sites of a thousand stations
//! each for a simulated month, sharded across the worker pool, and show
//! what the leap kernel saved over naive per-tick stepping.
//!
//! ```text
//! cargo run --example fleet --release
//! ```

use std::time::Instant;

use glacsweb_fleet::{Fleet, FleetConfig};

fn main() {
    let config = FleetConfig::new(10, 1_000)
        .seed(2010)
        .storms(6.0, 36.0)
        .rotation_days(14);
    let mut fleet = Fleet::new(config).expect("valid fleet config");
    println!(
        "running {} sites x {} stations for 30 simulated days…\n",
        fleet.config().sites,
        fleet.config().stations_per_site
    );

    let wall = Instant::now();
    fleet.run_days(30);
    let secs = wall.elapsed().as_secs_f64();

    let summary = fleet.summary();
    let station_days = summary.stations as f64 * summary.days;
    println!(
        "{} stations, {:.0} days: {:.2} M station-days/sec ({:.3}s wall)",
        summary.stations,
        summary.days,
        station_days / secs / 1.0e6,
        secs
    );
    println!(
        "comms windows: {} ({:.1}% healthy, {} lost), deaths {}, restarts {}, overrides {}",
        summary.comms_windows(),
        summary.healthy_fraction() * 100.0,
        summary.windows_lost,
        summary.deaths,
        summary.restarts,
        summary.overrides
    );
    println!(
        "mean final state of charge: {:.1}%",
        summary.mean_soc * 100.0
    );

    let exec = fleet.exec_stats();
    let covered = exec.ticks_stepped + exec.ticks_leapt;
    println!(
        "\nkernel: {} wakes, {} leaps over {} segments covering {} ticks \
         ({:.1}% of {} total; {} stepped naively)",
        exec.wakes,
        exec.leaps,
        exec.segments,
        exec.ticks_leapt,
        100.0 * exec.ticks_leapt as f64 / covered.max(1) as f64,
        covered,
        exec.ticks_stepped
    );
    println!(
        "per wake: {:.0}ns wall, {:.1} segments per leap",
        secs * 1.0e9 / exec.wakes.max(1) as f64,
        exec.segments as f64 / exec.leaps.max(1) as f64
    );

    // The digest is the determinism handle: any two runs of this example
    // on any thread count print the same value.
    println!("\nstate digest: {:#018x}", fleet.state_digest());
}
