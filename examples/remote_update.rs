//! §VI remote maintenance: staging a verified code update from
//! Southampton and watching the checksum receipts come back.
//!
//! "In order to make sure that the code has arrived at the station without
//! corruption the code then has to have a checksum calculated … the script
//! that performs this verification uploads the MD5sum that it has
//! calculated using a HTTP GET … this enables researchers to know
//! immediately if the transfer was successful."
//!
//! ```text
//! cargo run --example remote_update --release
//! ```

use glacsweb::Scenario;
use glacsweb_station::md5::{md5, to_hex};
use glacsweb_station::StationId;

fn main() {
    let mut deployment = Scenario::lab_bringup().build();
    deployment.run_days(1);

    // The researchers test new control code in the lab, hash it, stage it.
    let new_code = b"#!/usr/bin/env python\n# v2 control loop with wider GPS window\n".to_vec();
    let staged_hash = to_hex(&md5(&new_code));
    println!("staging control.py update, md5 {staged_hash}");
    deployment
        .server_mut()
        .desk_mut()
        .stage_update(StationId::Base, "control.py", new_code);

    // Run until the station reports the update applied (the 3 % in-flight
    // corruption model occasionally forces a retry — exactly why the
    // verification script exists).
    let mut day = 1;
    loop {
        deployment.run_days(1);
        day += 1;
        let applied = deployment
            .metrics()
            .reports_for(StationId::Base)
            .any(|r| r.update_applied.as_deref() == Some("control.py"));
        let rejected = deployment
            .metrics()
            .reports_for(StationId::Base)
            .filter(|r| r.update_rejected.as_deref() == Some("control.py"))
            .count();
        if applied {
            println!("day {day}: update verified and installed ({rejected} corrupted transfer(s) rejected first)");
            break;
        }
        if rejected > 0 {
            // Restage after a rejected (corrupted) transfer.
            deployment.server_mut().desk_mut().stage_update(
                StationId::Base,
                "control.py",
                b"#!/usr/bin/env python\n# v2 control loop with wider GPS window\n".to_vec(),
            );
        }
        assert!(day < 30, "should apply within days");
    }

    println!("\nchecksum receipts at Southampton (via HTTP GET):");
    for (station, file, hex, matches) in deployment.server().desk().checksum_reports() {
        println!(
            "  {station:?} {file}: {hex} {}",
            if *matches {
                "== staged (OK)"
            } else {
                "!= staged (transfer corrupted)"
            }
        );
    }

    let status = deployment
        .base()
        .map(|b| b.status(deployment.env()))
        .expect("base station");
    println!("\nstation housekeeping after the update:\n{status:#?}");
}
