//! §IV in action: two kinds of power failure, two kinds of recovery.
//!
//! **Act 1 — the station's own recovery (RTC reset).** A base station
//! with a storm-damaged wind generator and a badly undersized battery
//! dies mid-winter. Spring sun revives it; the wake-up code notices the
//! RTC reads 1970 (before the persisted `last_run`), re-syncs from GPS,
//! rebuilds the RAM schedule in state 0, and climbs the Table II ladder
//! as the battery recovers. The *hardware* survives, but everything the
//! schedule had learned is gone — that is the paper's restart story.
//!
//! **Act 2 — the deployment's recovery (snapshot resume).** The same
//! failure mode can hit the gateway running the whole deployment: a
//! crashed process takes every buffered reading with it. Contrast a
//! cold restart (rebuild from configs; prior readings lost) with
//! `Deployment::checkpoint`/`Deployment::resume`: the snapshot restores
//! the exact simulation state, so the resumed run is **bit-identical**
//! to one that never crashed and no reading is lost.
//!
//! Output is deterministic: same seed, same text, every run.
//!
//! ```text
//! cargo run --example power_failure_recovery --release
//! ```

use glacsweb::{Deployment, DeploymentBuilder, Scenario};
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::{AmpHours, SimDuration, SimTime};
use glacsweb_station::{StationConfig, StationId};

/// Act 1: the paper's own §IV timeline — death, spring revival, RTC
/// reset, and the climb back up the Table II ladder.
fn act1_rtc_reset() {
    println!("== act 1: battery exhaustion and the §IV RTC-reset restart ==\n");
    let start = SimTime::from_ymd_hms(2008, 10, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::field();
    base.wind = None; // lost to an autumn storm (§II)
    base.battery = AmpHours(1.0);
    base.initial_soc = 0.5;
    let mut d = DeploymentBuilder::new(EnvConfig::vatnajokull())
        .seed(42)
        .start(start)
        .base(base)
        .build();

    println!("deployed {start} with a 1 Ah bank and no wind generator\n");
    d.run_until(SimTime::from_ymd_hms(2009, 8, 1, 0, 0, 0));

    // Reconstruct the §IV timeline from the window reports.
    let mut last_alive: Option<SimTime> = None;
    let mut announced_death = false;
    for r in d.metrics().reports_for(StationId::Base) {
        if r.recovered {
            if let Some(gap_start) = last_alive {
                let silent_days = r.opened.saturating_since(gap_start).as_days_f64();
                if !announced_death {
                    println!(
                        "{}: last successful window before the lights went out",
                        gap_start.date()
                    );
                    println!("…{silent_days:.0} days of silence (battery flat, RTC lost)…");
                    announced_death = true;
                }
            }
            println!(
                "{}: WOKE UP — RTC read 1970, re-synced from GPS, schedule reset to state {}",
                r.opened.date(),
                r.applied_state.level()
            );
        }
        last_alive = Some(r.opened);
    }

    // The climb back up the ladder.
    println!("\nstate applied by each window after recovery:");
    let mut after_recovery = false;
    for r in d.metrics().reports_for(StationId::Base) {
        if r.recovered {
            after_recovery = true;
        }
        if after_recovery {
            println!("  {} -> state {}", r.opened.date(), r.applied_state.level());
        }
    }

    let s = d.summary();
    println!(
        "\ntotals: {} power losses, {} recoveries, {} windows",
        s.power_losses, s.recoveries, s.windows_run
    );
    assert!(
        s.power_losses >= 1 && s.recoveries >= 1,
        "the demo scenario must die and recover"
    );
}

/// Deployment horizon for act 2, sim-days.
const HORIZON_DAYS: u64 = 30;

/// The gateway "crashes" this many days in.
const CRASH_DAY: u64 = 18;

/// Checkpoint cadence, sim-days; the last checkpoint before the crash
/// lands on day 14.
const CHECKPOINT_EVERY: u64 = 7;

/// The Iceland 2008 deployment act 2 replays three ways.
fn iceland(seed: u64) -> Deployment {
    Scenario::iceland_2008().seed(seed).build()
}

/// Act 2: a gateway process crash, recovered two ways.
fn act2_snapshot_resume() {
    println!("\n== act 2: gateway crash — cold restart vs snapshot resume ==\n");
    let seed = 42;

    // The run that never crashes: the yardstick both recoveries chase.
    let mut straight = iceland(seed);
    straight.run_days(HORIZON_DAYS);
    let want = straight.summary();
    println!(
        "uninterrupted {HORIZON_DAYS}-day run: {} probe readings, {} windows, {} uploaded",
        want.probe_readings_received, want.windows_run, want.data_uploaded
    );

    // The doomed process: checkpoints every CHECKPOINT_EVERY days, then
    // crashes on day CRASH_DAY. Drop() plays the part of SIGKILL.
    let snap = std::env::temp_dir().join(format!(
        "glacsweb-power-failure-recovery-{}.snap",
        std::process::id()
    ));
    {
        let mut doomed = iceland(seed);
        let start = doomed.start();
        let mut day = 0;
        while day + CHECKPOINT_EVERY <= CRASH_DAY {
            day += CHECKPOINT_EVERY;
            doomed.run_until(start + SimDuration::from_days(day));
            doomed.checkpoint(&snap).expect("checkpoint the deployment");
        }
        doomed.run_until(start + SimDuration::from_days(CRASH_DAY));
        let held = doomed.summary();
        println!(
            "\nday {CRASH_DAY}: gateway process crashes holding {} probe readings",
            held.probe_readings_received
        );
    }

    // Recovery A — the paper's only option: cold restart from configs.
    // Everything the crashed process held is gone; the replacement only
    // sees the remaining days.
    let mut cold = iceland(seed);
    cold.run_days(HORIZON_DAYS - CRASH_DAY);
    let cold_summary = cold.summary();
    let lost = want
        .probe_readings_received
        .saturating_sub(cold_summary.probe_readings_received);
    println!(
        "cold restart (no snapshot): {} probe readings survive — {lost} LOST",
        cold_summary.probe_readings_received
    );

    // Recovery B — resume from the last checkpoint (day 14). The
    // snapshot carries the full deployment state, so replaying to the
    // horizon reproduces the uninterrupted run bit for bit.
    let mut resumed = Deployment::resume(&snap).expect("resume from the last checkpoint");
    resumed.run_until(resumed.start() + SimDuration::from_days(HORIZON_DAYS));
    let got = resumed.summary();
    println!(
        "snapshot resume (from day {}): {} probe readings — 0 lost",
        CRASH_DAY / CHECKPOINT_EVERY * CHECKPOINT_EVERY,
        got.probe_readings_received
    );

    let identical = got == want;
    println!(
        "resumed run vs uninterrupted run: {}",
        if identical {
            "BIT-IDENTICAL"
        } else {
            "DIVERGED"
        }
    );
    assert!(identical, "snapshot resume must reproduce the straight run");
    assert!(
        lost > 0,
        "the cold restart must actually lose readings for the contrast to mean anything"
    );
    let _ = std::fs::remove_file(&snap);

    println!("\nthe §IV ladder heals the station; the snapshot heals the deployment.");
}

fn main() {
    act1_rtc_reset();
    act2_snapshot_resume();
}
