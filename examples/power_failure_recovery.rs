//! §IV in action: total battery exhaustion and automatic schedule reset.
//!
//! A base station with a storm-damaged wind generator and a badly
//! undersized battery dies mid-winter. Spring sun revives it; the wake-up
//! code notices the RTC reads 1970 (before the persisted `last_run`),
//! re-syncs from GPS, rebuilds the RAM schedule in state 0, and climbs the
//! Table II ladder as the battery recovers.
//!
//! ```text
//! cargo run --example power_failure_recovery --release
//! ```

use glacsweb::DeploymentBuilder;
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::{AmpHours, SimTime};
use glacsweb_station::{StationConfig, StationId};

fn main() {
    let start = SimTime::from_ymd_hms(2008, 10, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::field();
    base.wind = None; // lost to an autumn storm (§II)
    base.battery = AmpHours(1.0);
    base.initial_soc = 0.5;
    let mut d = DeploymentBuilder::new(EnvConfig::vatnajokull())
        .seed(42)
        .start(start)
        .base(base)
        .build();

    println!("deployed {start} with a 1 Ah bank and no wind generator\n");
    d.run_until(SimTime::from_ymd_hms(2009, 8, 1, 0, 0, 0));

    // Reconstruct the §IV timeline from the window reports.
    let mut last_alive: Option<SimTime> = None;
    let mut announced_death = false;
    for r in d.metrics().reports_for(StationId::Base) {
        if r.recovered {
            if let Some(gap_start) = last_alive {
                let silent_days = r.opened.saturating_since(gap_start).as_days_f64();
                if !announced_death {
                    println!(
                        "{}: last successful window before the lights went out",
                        gap_start.date()
                    );
                    println!("…{silent_days:.0} days of silence (battery flat, RTC lost)…");
                    announced_death = true;
                }
            }
            println!(
                "{}: WOKE UP — RTC read 1970, re-synced from GPS, schedule reset to state {}",
                r.opened.date(),
                r.applied_state.level()
            );
        }
        last_alive = Some(r.opened);
    }

    // The climb back up the ladder.
    println!("\nstate applied by each window after recovery:");
    let mut after_recovery = false;
    for r in d.metrics().reports_for(StationId::Base) {
        if r.recovered {
            after_recovery = true;
        }
        if after_recovery {
            println!("  {} -> state {}", r.opened.date(), r.applied_state.level());
        }
    }

    let s = d.summary();
    println!(
        "\ntotals: {} power losses, {} recoveries, {} windows",
        s.power_losses, s.recoveries, s.windows_run
    );
    assert!(
        s.power_losses >= 1 && s.recoveries >= 1,
        "the demo scenario must die and recover"
    );
}
