//! The paper's deployment: Vatnajökull, August 2008 onwards.
//!
//! Runs the field scenario — two Gumsense stations, seven subglacial
//! probes with the §V mortality model, field-grade GPRS, the deployed-2008
//! software with its documented pitfalls — for a configurable number of
//! days (default 180, i.e. into the depths of winter).
//!
//! ```text
//! cargo run --example iceland_deployment --release -- 365
//! ```

use glacsweb::Scenario;
use glacsweb_sim::SimDuration;
use glacsweb_station::StationId;

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("days must be a number"))
        .unwrap_or(180);

    let mut deployment = Scenario::iceland_2008().build();
    let start = deployment.now();
    println!("deploying on Vatnajökull at {start}; simulating {days} days…\n");

    // Run month by month, printing a postcard home each time.
    let mut elapsed = 0u64;
    while elapsed < days {
        let step = 30.min(days - elapsed);
        deployment.run_days(step);
        elapsed += step;
        let s = deployment.summary();
        let date = (start + SimDuration::from_days(elapsed)).date();
        println!(
            "{date}: {} probes alive, {} readings home, {} uploaded, battery soc {:.2}, melt index {:.2}, snow {:.2} m",
            s.probes_alive,
            s.probe_readings_received,
            s.data_uploaded,
            deployment
                .base()
                .map(|b| b.rail().battery().state_of_charge())
                .unwrap_or(0.0),
            deployment.env().melt_index(),
            deployment.env().snow_depth_m(),
        );
    }

    println!("\n=== end of run ===\n{}", deployment.summary());

    // The §V survival record and the §III synchronisation yield.
    let s = deployment.summary();
    println!("\nprobe survival: {}/{}", s.probes_alive, s.probes_deployed);
    println!("dGPS pairing yield: {:.0}%", s.dgps_pairing_yield * 100.0);

    println!("\n{}", deployment.server().dashboard());

    let cuts: Vec<_> = deployment
        .metrics()
        .reports_for(StationId::Base)
        .filter(|r| r.cut_by_watchdog)
        .map(|r| r.opened.date().to_string())
        .collect();
    if cuts.is_empty() {
        println!("no watchdog cuts");
    } else {
        println!("watchdog cuts on: {}", cuts.join(", "));
    }
}
