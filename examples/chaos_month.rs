//! A month on the glacier under the full §VI failure catalogue, replayed
//! as a deterministic chaos schedule.
//!
//! One [`FaultPlan`] strings together the paper's real incidents — a wet
//! spell wrecking GPRS attaches, the intermittent dGPS serial cable, hung
//! SCP transfers, a card corruption, and the week the Southampton server
//! was unreachable — then the run reports what the retry/backoff and
//! watchdog machinery salvaged: per-fault time to recovery, degraded and
//! lost windows, and the data that still made it home.
//!
//! ```text
//! cargo run --example chaos_month --release
//! ```

use glacsweb::{DeploymentBuilder, Fault, FaultPlan, FaultSpec, FaultTarget};
use glacsweb_env::EnvConfig;
use glacsweb_link::GprsConfig;
use glacsweb_sim::{SimDuration, SimTime};
use glacsweb_station::StationConfig;

fn main() {
    let d = SimDuration::from_days;
    let plan = FaultPlan::new()
        // Week one: a wet spell multiplies attach failures 6×.
        .with(FaultSpec::new(
            Fault::GprsDegradation { severity: 6.0 },
            FaultTarget::Base,
            d(3),
            d(4),
        ))
        // Week two: the dGPS serial cable starts dropping characters.
        .with(FaultSpec::new(
            Fault::Rs232Fault,
            FaultTarget::Base,
            d(8),
            d(3),
        ))
        // Hung SCP transfers, every few days, until the watchdog cuts.
        .with(FaultSpec::new(Fault::StuckTransfer, FaultTarget::Base, d(6), d(1)).recurring(d(7)))
        // Week three: Southampton goes dark for the §VI week.
        .with(FaultSpec::new(
            Fault::ServerUnreachable,
            FaultTarget::Server,
            d(14),
            d(7),
        ))
        // Week four: a card corruption eats the staging area.
        .with(FaultSpec::new(
            Fault::SdCorruption,
            FaultTarget::Base,
            d(24),
            SimDuration::ZERO,
        ));

    let start = SimTime::from_ymd_hms(2009, 6, 1, 0, 0, 0);
    let mut base = StationConfig::base_2008();
    base.gprs = GprsConfig::field();
    let mut deployment = DeploymentBuilder::new(EnvConfig::vatnajokull())
        .seed(2009)
        .start(start)
        .base(base)
        .reference(StationConfig::reference_2008())
        .probes(4)
        .fault_plan(plan)
        .build();

    println!(
        "deployed {start}; {} faults scheduled\n",
        deployment.fault_plan().len()
    );
    deployment.run_days(30);

    println!("fault log:");
    for r in deployment.metrics().fault_records() {
        let cleared = match r.cleared {
            Some(t) => format!("cleared {}", t.date()),
            None => "still active".to_string(),
        };
        let mttr = match r.mttr() {
            Some(m) => format!("recovered in {:.1} h", m.as_hours_f64()),
            None => "no healthy window yet".to_string(),
        };
        println!(
            "  {} on {:?}: on {} — {}, {} ({} degraded, {} lost windows)",
            r.label,
            r.target,
            r.activated.date(),
            cleared,
            mttr,
            r.windows_degraded,
            r.windows_lost,
        );
    }

    let s = deployment.summary();
    println!("\n{s}");
    assert!(s.faults_injected >= 5, "the schedule fired");
    assert!(s.data_uploaded.value() > 0, "data still made it home");
}
