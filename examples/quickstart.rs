//! Quickstart: build a two-station Glacsweb deployment, run two simulated
//! weeks, and inspect what reached Southampton.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use glacsweb::Scenario;
use glacsweb_station::StationId;

fn main() {
    // A benign lab bring-up: both stations on the bench, ideal GPRS,
    // three probes, no mortality — the configuration used for pre-field
    // verification (§VI of the paper).
    let mut deployment = Scenario::lab_bringup().build();
    println!("running 14 simulated days from {}…\n", deployment.now());
    deployment.run_days(14);

    println!("{}\n", deployment.summary());

    println!("daily windows (base station):");
    println!("day  state  probes  readings  gps  uploaded        drained");
    for report in deployment.metrics().reports_for(StationId::Base) {
        println!(
            "{}  {:>5}  {:>6}  {:>8}  {:>3}  {:>14}  {}",
            report.opened.date(),
            report.applied_state.level(),
            report.probes_contacted,
            report.probe_readings,
            report.gps_files_fetched,
            report.upload.bytes_sent.to_string(),
            report.upload.drained,
        );
    }

    let warehouse = deployment.server().warehouse();
    println!(
        "\ndifferential dGPS fixes produced: {}",
        warehouse.differential_fixes().len()
    );
    for probe in warehouse.probes_reporting() {
        let series = warehouse.conductivity_series(probe);
        if let Some((t, v)) = series.last() {
            println!(
                "probe {probe}: {} readings, latest conductivity {v:.2} µS at {t}",
                series.len()
            );
        }
    }
}
