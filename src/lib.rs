//! Facade crate for the Glacsweb reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so that the root `examples/`
//! and `tests/` can exercise the whole system, and so that a downstream
//! user can depend on a single crate.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use glacsweb as core;
pub use glacsweb_env as env;
pub use glacsweb_hw as hw;
pub use glacsweb_link as link;
pub use glacsweb_power as power;
pub use glacsweb_probe as probe;
pub use glacsweb_server as server;
pub use glacsweb_sim as sim;
pub use glacsweb_station as station;
